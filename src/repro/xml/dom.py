"""Tree data model for parsed XML documents.

The model follows the XPath 1.0 data model rather than DOM Level 2: a
document owns a tree of element/text/comment/processing-instruction nodes;
attributes are nodes with an owning element but are not children; every node
has an identity (Python object identity) and a position in *document order*.

Document order is materialized on demand: :meth:`Document.assign_order`
performs one pre-order traversal and stamps every node (attributes
immediately after their owner element, in attribute order, before the
element's children — exactly the XPath ordering).  Mutating the tree marks
the ordering dirty; comparisons re-stamp lazily.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator

from repro.errors import XmlRelError
from repro.xml.chars import is_valid_name, is_whitespace


class NodeKind(enum.IntEnum):
    """Kinds of nodes in the XPath data model (namespace nodes omitted)."""

    DOCUMENT = 1
    ELEMENT = 2
    ATTRIBUTE = 3
    TEXT = 4
    COMMENT = 5
    PROCESSING_INSTRUCTION = 6


class Node:
    """Base class of all tree nodes."""

    kind: NodeKind
    __slots__ = ("parent", "_pre")

    def __init__(self) -> None:
        self.parent: _Container | None = None
        # Document-order stamp; maintained by Document.assign_order().
        self._pre: int = -1

    # -- tree navigation ---------------------------------------------------

    @property
    def document(self) -> Document | None:
        """The owning document, or None for detached subtrees."""
        node: Node | None = self
        while node is not None:
            if isinstance(node, Document):
                return node
            node = node.parent
        return None

    @property
    def root(self) -> Node:
        """The topmost node of the (possibly detached) tree."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator[_Container]:
        """Yield parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: Node) -> bool:
        """Return True if *self* is a proper ancestor of *other*."""
        return any(anc is self for anc in other.ancestors())

    @property
    def depth(self) -> int:
        """Number of ancestors (document root has depth 0)."""
        return sum(1 for _ in self.ancestors())

    # -- document order ----------------------------------------------------

    @property
    def order_key(self) -> int:
        """Position of this node in document order (0-based).

        Only meaningful for attached nodes; stamps are refreshed lazily.
        """
        doc = self.document
        if doc is None:
            raise XmlRelError("document order undefined for detached nodes")
        doc.ensure_order()
        return self._pre

    def precedes(self, other: Node) -> bool:
        """True if *self* comes before *other* in document order."""
        return self.order_key < other.order_key

    # -- content -----------------------------------------------------------

    @property
    def string_value(self) -> str:
        """The XPath string-value of the node."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class _Container(Node):
    """Shared behaviour of nodes that have children (document, element)."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    # -- mutation ----------------------------------------------------------

    def append_child(self, child: Node) -> Node:
        """Attach *child* as the last child and return it."""
        return self.insert_child(len(self.children), child)

    def insert_child(self, index: int, child: Node) -> Node:
        """Attach *child* at *index* among the children and return it."""
        if isinstance(child, (Document, Attribute)):
            raise XmlRelError(f"cannot insert {type(child).__name__} as child")
        if child.parent is not None:
            raise XmlRelError("node already has a parent; detach it first")
        if child is self or child.is_ancestor_of(self):
            raise XmlRelError("cannot insert a node under itself")
        self.children.insert(index, child)
        child.parent = self
        self._invalidate_order()
        return child

    def remove_child(self, child: Node) -> Node:
        """Detach *child* from this node and return it."""
        for i, existing in enumerate(self.children):
            if existing is child:
                del self.children[i]
                child.parent = None
                self._invalidate_order()
                return child
        raise XmlRelError("node is not a child of this container")

    def _invalidate_order(self) -> None:
        doc = self.document
        if doc is not None:
            doc._order_dirty = True

    # -- traversal ---------------------------------------------------------

    def iter(self) -> Iterator[Node]:
        """Yield this node and all descendants in document order.

        Attributes are *not* included (matching ElementTree's ``iter``); use
        :meth:`Document.iter_with_attributes` when attribute nodes matter.
        """
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _Container):
                stack.extend(reversed(node.children))

    def descendants(self) -> Iterator[Node]:
        """Yield all descendants (excluding self) in document order."""
        it = self.iter()
        next(it)  # skip self
        yield from it

    def iter_elements(self, tag: str | None = None) -> Iterator[Element]:
        """Yield descendant-or-self elements, optionally filtered by tag."""
        for node in self.iter():
            if isinstance(node, Element) and (tag is None or node.tag == tag):
                yield node

    def child_elements(self) -> list[Element]:
        """The element children, in order."""
        return [c for c in self.children if isinstance(c, Element)]

    @property
    def string_value(self) -> str:
        return "".join(
            node.data for node in self.iter() if isinstance(node, Text)
        )


class Document(_Container):
    """The root of a parsed XML document.

    Children may be comments/PIs plus exactly one element in well-formed
    documents; the model itself does not enforce the single-element rule so
    that intermediate states during construction are representable.
    """

    kind = NodeKind.DOCUMENT
    __slots__ = ("_order_dirty", "_order_size", "doctype_name", "dtd")

    def __init__(self) -> None:
        super().__init__()
        self._order_dirty = True
        self._order_size = 0
        # Raw doctype name and parsed DTD (set by the parser when present).
        self.doctype_name: str | None = None
        self.dtd = None  # type: ignore[assignment]  # repro.xml.dtd.Dtd

    @property
    def root_element(self) -> Element:
        """The single element child (the document element)."""
        elements = self.child_elements()
        if len(elements) != 1:
            raise XmlRelError(
                f"document has {len(elements)} element children, expected 1"
            )
        return elements[0]

    # -- document order ----------------------------------------------------

    def ensure_order(self) -> None:
        """Re-stamp document order if the tree changed since the last stamp."""
        if self._order_dirty:
            self.assign_order()

    def assign_order(self) -> int:
        """Stamp every node's document-order position; return node count."""
        counter = 0
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            node._pre = counter
            counter += 1
            if isinstance(node, Element):
                for attr in node.attributes:
                    attr._pre = counter
                    counter += 1
            if isinstance(node, _Container):
                stack.extend(reversed(node.children))
        self._order_dirty = False
        self._order_size = counter
        return counter

    def iter_with_attributes(self) -> Iterator[Node]:
        """Yield every node including attribute nodes, in document order."""
        for node in self.iter():
            yield node
            if isinstance(node, Element):
                yield from node.attributes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            return f"<Document root={self.root_element.tag!r}>"
        except XmlRelError:
            return "<Document (no root element)>"


class Element(_Container):
    """An element node with ordered attributes and children."""

    kind = NodeKind.ELEMENT
    __slots__ = ("tag", "attributes")

    def __init__(
        self,
        tag: str,
        attributes: Iterable[tuple[str, str]] | None = None,
        validate: bool = True,
    ) -> None:
        if validate and not is_valid_name(tag):
            raise XmlRelError(f"invalid element name: {tag!r}")
        super().__init__()
        self.tag = tag
        self.attributes: list[Attribute] = []
        if attributes:
            for name, value in attributes:
                self.set_attribute(name, value)

    # -- attributes ----------------------------------------------------------

    def get_attribute(self, name: str, default: str | None = None) -> str | None:
        """Return the value of attribute *name*, or *default*."""
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return default

    def get_attribute_node(self, name: str) -> Attribute | None:
        """Return the attribute node named *name*, or None."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def set_attribute(self, name: str, value: str) -> Attribute:
        """Create or overwrite attribute *name* and return its node."""
        existing = self.get_attribute_node(name)
        if existing is not None:
            existing.value = value
            return existing
        attr = Attribute(name, value)
        attr.parent = self
        self.attributes.append(attr)
        self._invalidate_order()
        return attr

    def remove_attribute(self, name: str) -> None:
        """Delete attribute *name* (no error if absent)."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                attr.parent = None
                del self.attributes[i]
                self._invalidate_order()
                return

    @property
    def attribute_map(self) -> dict[str, str]:
        """Attributes as a name→value dict (order preserved)."""
        return {attr.name: attr.value for attr in self.attributes}

    # -- convenience ---------------------------------------------------------

    @property
    def text(self) -> str:
        """Concatenation of the *direct* text children."""
        return "".join(
            c.data for c in self.children if isinstance(c, Text)
        )

    def append_text(self, data: str) -> Text:
        """Append a text child (merging into a trailing text node)."""
        if self.children and isinstance(self.children[-1], Text):
            last = self.children[-1]
            last.data += data
            return last
        text = Text(data)
        return self.append_child(text)  # type: ignore[return-value]

    def find(self, tag: str) -> Element | None:
        """First child element with the given tag, or None."""
        for child in self.children:
            if isinstance(child, Element) and child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list[Element]:
        """All child elements with the given tag, in order."""
        return [
            c for c in self.children
            if isinstance(c, Element) and c.tag == tag
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag!r} children={len(self.children)}>"


class Attribute(Node):
    """An attribute node; ``parent`` is the owning element."""

    kind = NodeKind.ATTRIBUTE
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str, validate: bool = True) -> None:
        if validate and not is_valid_name(name):
            raise XmlRelError(f"invalid attribute name: {name!r}")
        super().__init__()
        self.name = name
        self.value = value

    @property
    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Attribute {self.name}={self.value!r}>"


class Text(Node):
    """A text node."""

    kind = NodeKind.TEXT
    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    @property
    def string_value(self) -> str:
        return self.data

    @property
    def is_whitespace(self) -> bool:
        """True if the node contains XML whitespace only."""
        return is_whitespace(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"<Text {preview!r}>"


class Comment(Node):
    """A comment node."""

    kind = NodeKind.COMMENT
    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        super().__init__()
        self.data = data

    @property
    def string_value(self) -> str:
        return self.data


class ProcessingInstruction(Node):
    """A processing-instruction node (``<?target data?>``)."""

    kind = NodeKind.PROCESSING_INSTRUCTION
    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = "") -> None:
        if not is_valid_name(target):
            raise XmlRelError(f"invalid PI target: {target!r}")
        super().__init__()
        self.target = target
        self.data = data

    @property
    def string_value(self) -> str:
        return self.data


def deep_equal(a: Node, b: Node, ignore_ws_text: bool = False) -> bool:
    """Structural equality of two trees (identity-free).

    Compares kind, names, values, attribute lists (order-sensitive, as
    attribute order is preserved end-to-end in this library) and children
    recursively.  With *ignore_ws_text*, whitespace-only text nodes are
    skipped on both sides — useful when comparing pretty-printed output.
    """
    if a.kind != b.kind:
        return False
    if isinstance(a, Element) and isinstance(b, Element):
        if a.tag != b.tag:
            return False
        if [(x.name, x.value) for x in a.attributes] != [
            (y.name, y.value) for y in b.attributes
        ]:
            return False
    elif isinstance(a, Attribute) and isinstance(b, Attribute):
        return a.name == b.name and a.value == b.value
    elif isinstance(a, Text) and isinstance(b, Text):
        return a.data == b.data
    elif isinstance(a, Comment) and isinstance(b, Comment):
        return a.data == b.data
    elif isinstance(a, ProcessingInstruction) and isinstance(
        b, ProcessingInstruction
    ):
        return a.target == b.target and a.data == b.data

    if isinstance(a, _Container) and isinstance(b, _Container):
        a_children: list[Node] = a.children
        b_children: list[Node] = b.children
        if ignore_ws_text:
            a_children = [
                c for c in a_children
                if not (isinstance(c, Text) and c.is_whitespace)
            ]
            b_children = [
                c for c in b_children
                if not (isinstance(c, Text) and c.is_whitespace)
            ]
        if len(a_children) != len(b_children):
            return False
        return all(
            deep_equal(ca, cb, ignore_ws_text)
            for ca, cb in zip(a_children, b_children)
        )
    return True
