"""Streaming (iterparse-style) XML tokenizer with O(depth) memory.

:func:`iter_events` turns an XML source — a text string, a file object,
or anything with ``read(n)`` — into the same
:class:`~repro.xml.events.Event` stream :func:`~repro.xml.events.stream_events`
produces from a parsed tree, *without materializing the tree*.  The
working set is the open-element stack plus one ~64 KiB read buffer, so
documents far larger than memory shred fine; this is what
:meth:`~repro.core.store.XmlRelStore.store_stream` and the sharded
corpus loader are built on.

Two pieces:

* :class:`ChunkedScanner` — a :class:`~repro.xml.lexer.Scanner` whose
  buffer refills from a reader on demand and compacts consumed text,
  so every scanning primitive (``peek``/``looking_at``/``read_name``/
  ``read_until``/…) works across chunk boundaries.  Line/column error
  positions stay exact across compaction.
* :class:`_StreamingParser` — reuses the recursive-descent parser's
  prolog/DOCTYPE/attribute/entity machinery
  (:class:`~repro.xml.parser._XmlParser`) but replaces the recursive
  element builder with an explicit-stack loop that *yields* events as
  tags open and close.  Adjacent character data, CDATA sections and
  entity expansions merge into one TEXT event, exactly as the DOM
  parser merges them into one text node, so the streamed event
  sequence is byte-for-byte the DOM parse's ``stream_events`` output.
"""

from __future__ import annotations

import os
import re
from collections.abc import Iterator

from repro.errors import XmlSyntaxError
from repro.xml.chars import (
    WHITESPACE,
    is_name_char,
    is_name_start_char,
    is_whitespace,
)
from repro.xml.dom import Document, Element
from repro.xml.events import Event, EventKind
from repro.xml.lexer import Scanner
from repro.xml.parser import MAX_ELEMENT_DEPTH, ParseOptions, _XmlParser

#: Bytes of source text pulled per refill.
CHUNK_SIZE = 64 * 1024

#: Consumed prefix beyond which the buffer is compacted on refill.
COMPACT_THRESHOLD = 64 * 1024

#: Buffered lookahead guaranteed before trying a fast-path tag match.
_FAST_LOOKAHEAD = 4096

# C-speed fast paths for the two hottest productions.  The character
# classes are the ASCII subsets of NameStartChar/NameChar; attribute
# values additionally exclude ``&`` (entities), ``<`` (illegal), and
# tab/newline (attribute-value normalization) — any tag these regexes
# cannot match falls back to the general scanner-primitive path, so
# they are pure accelerators, never semantics.
_ASCII_NAME = r"[A-Za-z_:][A-Za-z0-9_:.\-]*"
_FAST_START_TAG = re.compile(
    "<(" + _ASCII_NAME + ")"
    "((?:[ \t\r\n]+" + _ASCII_NAME + "[ \t\r\n]*=[ \t\r\n]*"
    "(?:\"[^\"&<\t\r\n]*\"|'[^'&<\t\r\n]*'))*)"
    "[ \t\r\n]*(/?)>"
)
_FAST_ATTR = re.compile(
    "(" + _ASCII_NAME + ")[ \t\r\n]*=[ \t\r\n]*"
    "(?:\"([^\"&<\t\r\n]*)\"|'([^'&<\t\r\n]*)')"
)
_FAST_END_TAG = re.compile("</(" + _ASCII_NAME + ")[ \t\r\n]*>")
# A whole leaf element — ``<tag a="v">plain text</tag>`` — in one match.
# The backreference pins the end tag to the start tag; the text may not
# contain markup or entities.  Data-oriented XML is mostly such leaves,
# so this skips the per-element content loop for the common case.
_FAST_LEAF = re.compile(
    "<(" + _ASCII_NAME + ")"
    "((?:[ \t\r\n]+" + _ASCII_NAME + "[ \t\r\n]*=[ \t\r\n]*"
    "(?:\"[^\"&<\t\r\n]*\"|'[^'&<\t\r\n]*'))*)"
    "[ \t\r\n]*>"
    "([^<&]*)"
    "</\\1[ \t\r\n]*>"
)


class ChunkedScanner(Scanner):
    """A :class:`Scanner` over an incrementally-read source.

    The buffer holds a sliding window of the source; ``_refill`` appends
    the next chunk and drops the consumed prefix once it exceeds
    :data:`COMPACT_THRESHOLD` (tracking how many characters and newlines
    were trimmed, so :meth:`line_column` stays exact).  All multi-
    character reads accumulate parts across refills instead of slicing
    the buffer afterwards — a refill may move ``pos``.
    """

    __slots__ = ("_read", "_eof", "_trimmed", "_trimmed_lines",
                 "_last_nl_abs")

    def __init__(self, read) -> None:
        super().__init__("")
        self._read = read
        self._eof = False
        self._trimmed = 0          # chars dropped before source[0]
        self._trimmed_lines = 0    # newlines among them
        self._last_nl_abs = -1     # absolute offset of last trimmed '\n'

    # -- buffer management ----------------------------------------------------

    def _refill(self) -> bool:
        """Append one chunk; returns False at end of input."""
        if self._eof:
            return False
        chunk = self._read(CHUNK_SIZE)
        if not chunk:
            self._eof = True
            return False
        if self.pos > COMPACT_THRESHOLD:
            dropped = self.source[: self.pos]
            self._trimmed += self.pos
            newlines = dropped.count("\n")
            if newlines:
                self._trimmed_lines += newlines
                self._last_nl_abs = (
                    self._trimmed - (len(dropped) - dropped.rfind("\n"))
                )
            self.source = self.source[self.pos:] + chunk
            self.pos = 0
        else:
            self.source = self.source + chunk
        self.length = len(self.source)
        return True

    def _ensure(self, count: int) -> None:
        """Buffer at least *count* chars past the cursor (or hit EOF)."""
        while self.length - self.pos < count:
            if not self._refill():
                return

    # -- refill-aware primitives ----------------------------------------------

    @property
    def at_end(self) -> bool:
        if self.pos < self.length:
            return False
        return not self._refill()

    def peek(self, offset: int = 0) -> str:
        if self.pos + offset >= self.length:
            self._ensure(offset + 1)
        i = self.pos + offset
        return self.source[i] if i < self.length else ""

    def looking_at(self, literal: str) -> bool:
        if self.pos + len(literal) > self.length:
            self._ensure(len(literal))
        return self.source.startswith(literal, self.pos)

    def skip_whitespace(self) -> bool:
        skipped = False
        while True:
            src, n = self.source, self.length
            pos = self.pos
            while pos < n and src[pos] in WHITESPACE:
                pos += 1
            if pos > self.pos:
                skipped = True
                self.pos = pos
            if pos < n or not self._refill():
                return skipped

    def read_name(self, context: str = "name") -> str:
        ch = self.peek()
        if not ch or not is_name_start_char(ch):
            self.error(f"expected {context}, found {ch or '<end of input>'!r}")
        parts: list[str] = []
        self.pos += 1
        parts.append(ch)
        while True:
            src, n = self.source, self.length
            start = self.pos
            pos = start
            while pos < n and is_name_char(src[pos]):
                pos += 1
            if pos > start:
                parts.append(src[start:pos])
                self.pos = pos
            if pos < n or not self._refill():
                return "".join(parts)

    def read_until(self, terminator: str, context: str) -> str:
        # The in-memory scanner reports "unterminated" at the start of
        # the data (its cursor never moves on failure); remember that
        # position so the streamed error lands on the same column.
        start_line, start_column = self.line_column()
        parts: list[str] = []
        keep = len(terminator) - 1
        while True:
            end = self.source.find(terminator, self.pos)
            if end >= 0:
                parts.append(self.source[self.pos:end])
                self.pos = end + len(terminator)
                return "".join(parts)
            # Keep the last len-1 chars: the terminator may straddle
            # the chunk boundary.
            cut = max(self.pos, self.length - keep)
            if cut > self.pos:
                parts.append(self.source[self.pos:cut])
                self.pos = cut
            if not self._refill():
                raise XmlSyntaxError(
                    f"unterminated {context}: missing {terminator!r}",
                    start_line, start_column,
                )

    # -- positions -------------------------------------------------------------

    def line_column(self, pos: int | None = None) -> tuple[int, int]:
        if pos is None:
            pos = self.pos
        pos = min(pos, self.length)
        line = self._trimmed_lines + self.source.count("\n", 0, pos) + 1
        last_nl = self.source.rfind("\n", 0, pos)
        if last_nl >= 0:
            column = pos - last_nl
        else:
            column = self._trimmed + pos - self._last_nl_abs
        return line, column


class _StreamingParser(_XmlParser):
    """Event-yielding parser sharing the DOM parser's machinery.

    The prolog, DOCTYPE (internal DTD → entity table), attributes,
    entity expansion, comments and PIs are the inherited methods; only
    element structure is re-implemented as an explicit-stack loop so
    nothing above the current path is retained.
    """

    def __init__(self, read, options: ParseOptions) -> None:
        # Deliberately skips _XmlParser.__init__: the source is a
        # reader, not a string (BOM handling moves to the first chunk).
        first = read(CHUNK_SIZE)
        if first.startswith("﻿"):
            first = first[1:]
        pending = [first]

        def reader(count: int) -> str:
            if pending:
                return pending.pop()
            return read(count)

        self.scanner = ChunkedScanner(reader)
        self.options = options
        self.document = Document()  # DOCTYPE side-effects land here
        self.entities: dict[str, str] = {}
        self._depth = 0

    # -- event generation -------------------------------------------------------

    def events(self) -> Iterator[Event]:
        s = self.scanner
        yield Event(EventKind.START_DOCUMENT)
        self._parse_xml_declaration()
        yield from self._misc_events(allow_doctype=True)
        if s.at_end or not s.looking_at("<"):
            s.error("expected root element")
        yield from self._element_events()
        yield from self._misc_events(allow_doctype=False)
        if not s.at_end:
            s.error("unexpected content after root element")
        yield Event(EventKind.END_DOCUMENT)

    def _misc_events(self, allow_doctype: bool) -> Iterator[Event]:
        s = self.scanner
        while True:
            s.skip_whitespace()
            if s.looking_at("<!--"):
                comment = self._parse_comment()
                yield Event(EventKind.COMMENT, value=comment.data)
            elif s.looking_at("<?"):
                pi = self._parse_pi()
                yield Event(
                    EventKind.PROCESSING_INSTRUCTION,
                    name=pi.target,
                    value=pi.data,
                )
            elif allow_doctype and s.looking_at("<!DOCTYPE"):
                self._parse_doctype()
                allow_doctype = False
            else:
                return

    def _read_internal_subset(self) -> str:
        # Parts-accumulating override: the base method slices the buffer
        # across what may be several refills (which can compact it).
        s = self.scanner
        parts: list[str] = []
        while True:
            src, n = s.source, s.length
            pos = s.pos
            start = pos
            stopped = ""
            while pos < n:
                ch = src[pos]
                if ch in ("]", "'", '"', "<"):
                    stopped = ch
                    break
                pos += 1
            parts.append(src[start:pos])
            s.pos = pos
            if not stopped:
                if not s._refill():
                    s.error("unterminated internal DTD subset")
                continue
            if stopped == "]":
                s.advance()
                return "".join(parts)
            if stopped in ("'", '"'):
                s.advance()
                literal = s.read_until(stopped, "quoted literal in DTD")
                parts.append(stopped + literal + stopped)
            elif s.looking_at("<!--"):
                s.advance(4)
                body = s.read_until("-->", "comment in DTD")
                parts.append("<!--" + body + "-->")
            else:
                parts.append("<")
                s.advance()

    def _element_events(self) -> Iterator[Event]:
        s = self.scanner
        keep_ws = self.options.keep_whitespace
        stack: list[str] = []
        text_parts: list[str] = []
        ensure = s._ensure
        start_match = _FAST_START_TAG.match
        end_match = _FAST_END_TAG.match
        leaf_match = _FAST_LEAF.match
        attr_findall = _FAST_ATTR.findall
        kind_start = EventKind.START_ELEMENT
        kind_attr = EventKind.ATTRIBUTE
        kind_end = EventKind.END_ELEMENT
        kind_text = EventKind.TEXT
        # Build events via tuple.__new__: Event is a NamedTuple, so this
        # is the generated __new__ minus its Python frame — noticeable
        # at one call per token.
        event_new = tuple.__new__

        def flush_text() -> Event | None:
            if not text_parts:
                return None
            data = "".join(text_parts)
            text_parts.clear()
            if not data:
                return None
            if not keep_ws and is_whitespace(data):
                # Same predicate the DOM parser's close-time whitespace
                # sweep applies to each merged text node.
                return None
            return event_new(Event, (kind_text, None, data))

        def _duplicate(attrs) -> bool:
            if len(attrs) < 2:
                return False
            seen = set()
            for name, _, _ in attrs:
                if name in seen:
                    return True
                seen.add(name)
            return False

        while True:
            # -- one start tag (cursor is at '<') -------------------------
            ensure(_FAST_LOOKAHEAD)
            # Leaf fast path: a whole ``<tag a="v">text</tag>`` element
            # in one C-level match — no content loop at all.  Any
            # disqualifier (markup/entities in the text, depth at the
            # limit, duplicate attributes, truncation at the buffer
            # edge) falls through to the tag-at-a-time paths below.
            leaf_done = False
            m = leaf_match(s.source, s.pos)
            if (m is not None and m.end() < s.length
                    and len(stack) < MAX_ELEMENT_DEPTH
                    and "]]>" not in m.group(3)):
                tag, attr_blob, text = m.group(1, 2, 3)
                attrs = attr_findall(attr_blob) if attr_blob else ()
                if not _duplicate(attrs):
                    s.pos = m.end()
                    yield event_new(Event, (kind_start, tag, None))
                    for name, dquoted, squoted in attrs:
                        yield event_new(
                            Event,
                            (kind_attr, name,
                             dquoted if dquoted else squoted),
                        )
                    if text and (keep_ws or not is_whitespace(text)):
                        yield event_new(Event, (kind_text, None, text))
                    yield event_new(Event, (kind_end, tag, None))
                    if not stack:
                        return
                    # Leaf consumed: resume the parent's content loop.
                    leaf_done = True
            if not leaf_done:
                # Fast path: a complete plain-ASCII start tag inside the
                # buffer, matched in one C call.  (The end() < length
                # guard rules out a tag artificially truncated by the
                # buffer edge — that case re-parses the general way.)
                m = start_match(s.source, s.pos)
                attrs = ()
                if m is not None and m.end() < s.length:
                    tag, attr_blob, closed = m.group(1, 2, 3)
                    if attr_blob:
                        attrs = attr_findall(attr_blob)
                        if _duplicate(attrs):
                            # Duplicate: re-parse slowly so the error
                            # lands on the DOM parser's column.
                            m = None
                if m is not None and m.end() < s.length:
                    s.pos = m.end()
                    yield event_new(Event, (kind_start, tag, None))
                    for name, dquoted, squoted in attrs:
                        yield event_new(
                            Event,
                            (kind_attr, name,
                             dquoted if dquoted else squoted),
                        )
                else:
                    # General path: non-ASCII names, entity references
                    # in attribute values, oversized tags, or a syntax
                    # error.
                    s.expect("<", "element start tag")
                    tag = s.read_name("element name")
                    holder = Element(tag, validate=False)
                    self._parse_attributes(holder)
                    yield Event(kind_start, name=tag)
                    for attr in holder.attributes:
                        yield Event(
                            kind_attr, name=attr.name, value=attr.value
                        )
                    if s.match("/>"):
                        closed = "/"
                    else:
                        s.expect(">", f"start tag of <{tag}>")
                        closed = ""
                if closed:
                    yield event_new(Event, (kind_end, tag, None))
                    if not stack:
                        return
                else:
                    stack.append(tag)
                    if len(stack) > MAX_ELEMENT_DEPTH:
                        s.error(
                            f"element nesting exceeds "
                            f"{MAX_ELEMENT_DEPTH} levels"
                        )

            # -- content until the next child start tag -------------------
            while stack:
                ensure(2)
                src, pos, n = s.source, s.pos, s.length
                if pos >= n:
                    s.error(f"unterminated element <{stack[-1]}>")
                if src[pos] != "<":
                    self._stream_char_data(text_parts)
                    continue
                nxt = src[pos + 1] if pos + 1 < n else ""
                if nxt == "/":
                    text = flush_text()
                    if text:
                        yield text
                    ensure(_FAST_LOOKAHEAD)
                    tag = stack.pop()
                    m = end_match(s.source, s.pos)
                    if (m is not None and m.end() < s.length
                            and m.group(1) == tag):
                        s.pos = m.end()
                    else:
                        # Mismatches fall through too: the re-parse
                        # reports the error at the DOM parser's column.
                        s.advance(2)
                        end_tag = s.read_name("end tag name")
                        if end_tag != tag:
                            s.error(
                                f"mismatched end tag: expected </{tag}>, "
                                f"got </{end_tag}>"
                            )
                        s.skip_whitespace()
                        s.expect(">", f"end tag of <{tag}>")
                    yield event_new(Event, (kind_end, tag, None))
                elif nxt == "!":
                    if s.looking_at("<!--"):
                        text = flush_text()
                        if text:
                            yield text
                        comment = self._parse_comment()
                        yield Event(EventKind.COMMENT, value=comment.data)
                    elif s.looking_at("<![CDATA["):
                        s.advance(9)
                        data = s.read_until("]]>", "CDATA section")
                        if data:
                            text_parts.append(data)
                    else:
                        s.error("markup declarations not allowed in content")
                elif nxt == "?":
                    text = flush_text()
                    if text:
                        yield text
                    pi = self._parse_pi()
                    yield Event(
                        EventKind.PROCESSING_INSTRUCTION,
                        name=pi.target,
                        value=pi.data,
                    )
                else:
                    text = flush_text()
                    if text:
                        yield text
                    break  # child start tag: outer loop parses it
            if not stack:
                return

    def _stream_char_data(self, parts: list[str]) -> None:
        """One maximal run of character data into *parts*.

        Scans with ``str.find`` (C speed, unlike the DOM parser's
        per-character loop) and carries the last two characters across
        refills so a ``]]>`` straddling a chunk boundary is still
        rejected.  Entity/char references are expanded in place, ending
        the literal run for the ``]]>`` check exactly as the DOM parser
        does (``]]&gt;`` is legal).
        """
        s = self.scanner
        carry = ""
        while True:
            src, n = s.source, s.length
            lt = src.find("<", s.pos)
            amp = src.find("&", s.pos)
            if lt < 0:
                end = amp if amp >= 0 else n
            elif amp < 0:
                end = lt
            else:
                end = min(lt, amp)
            raw = src[s.pos:end]
            s.pos = end
            if raw:
                if "]]>" in (carry + raw if carry else raw):
                    s.error("']]>' not allowed in character data")
                parts.append(raw)
                carry = raw[-2:] if len(raw) >= 2 else (carry + raw)[-2:]
            if end >= n:
                if s._refill():
                    continue
                return  # EOF; the content loop reports the open element
            if src[end] == "&":
                expanded = self._parse_entity_reference()
                if expanded:
                    parts.append(expanded)
                carry = ""
                continue
            return  # '<'


def _reader_for(source) -> tuple:
    """(read, close) for *source*: XML text, file object, or path."""
    if isinstance(source, str):
        scanner = {"pos": 0}

        def read(count: int) -> str:
            start = scanner["pos"]
            scanner["pos"] = start + count
            return source[start:start + count]

        return read, None
    if hasattr(source, "read"):
        return source.read, None
    # os.PathLike
    handle = open(os.fspath(source), encoding="utf-8")
    return handle.read, handle.close


def iter_events(
    source, options: ParseOptions | None = None
) -> Iterator[Event]:
    """Stream the token sequence of *source* with O(depth) memory.

    *source* may be XML text (``str``), an open text-mode file object,
    or a path (:class:`os.PathLike`).  The events are exactly what
    ``stream_events(parse_document(text))`` would yield, but the tree is
    never built: memory is the open-element stack plus one read buffer.
    """
    read, close = _reader_for(source)
    parser = _StreamingParser(read, options or ParseOptions())
    if close is None:
        # Caller-owned source: hand back the event generator with no
        # wrapper frame (one fewer generator hop per event).
        return parser.events()
    return _events_then_close(parser, close)


def _events_then_close(parser, close) -> Iterator[Event]:
    try:
        yield from parser.events()
    finally:
        if close is not None:
            close()
