"""Serialization of the tree model back to XML text.

Two entry points:

* :func:`serialize` — exact serialization, preserving text verbatim (so
  ``parse -> serialize -> parse`` is an identity on the tree, a property
  the test suite checks);
* :func:`serialize_pretty` — indented output for human inspection; inserts
  whitespace, so it is only structurally (not textually) equivalent.
"""

from __future__ import annotations

from io import StringIO
from typing import TextIO

from repro.errors import XmlRelError
from repro.xml.dom import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)


def escape_text(data: str) -> str:
    """Escape character data for element content."""
    return (
        data.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def escape_attribute(data: str) -> str:
    """Escape an attribute value for inclusion in double quotes."""
    return (
        data.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\t", "&#9;")
        .replace("\n", "&#10;")
        .replace("\r", "&#13;")
    )


def serialize(node: Node, xml_declaration: bool = False) -> str:
    """Serialize *node* (document, element, or leaf) to XML text."""
    out = StringIO()
    if xml_declaration:
        out.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    _write(node, out)
    return out.getvalue()


def serialize_pretty(node: Node, indent: str = "  ") -> str:
    """Serialize with indentation (structure-preserving, not text-exact).

    Elements with *mixed* content (any non-whitespace text child) are
    emitted inline so significant text is never distorted.
    """
    out = StringIO()
    _write_pretty(node, out, indent, 0)
    return out.getvalue()


def _write(node: Node, out: TextIO) -> None:
    if isinstance(node, Document):
        for child in node.children:
            _write(child, out)
    elif isinstance(node, Element):
        out.write(f"<{node.tag}")
        for attr in node.attributes:
            out.write(f' {attr.name}="{escape_attribute(attr.value)}"')
        if not node.children:
            out.write("/>")
            return
        out.write(">")
        for child in node.children:
            _write(child, out)
        out.write(f"</{node.tag}>")
    elif isinstance(node, Text):
        out.write(escape_text(node.data))
    elif isinstance(node, Comment):
        out.write(f"<!--{node.data}-->")
    elif isinstance(node, ProcessingInstruction):
        if node.data:
            out.write(f"<?{node.target} {node.data}?>")
        else:
            out.write(f"<?{node.target}?>")
    elif isinstance(node, Attribute):
        out.write(f'{node.name}="{escape_attribute(node.value)}"')
    else:
        raise XmlRelError(f"cannot serialize node kind {node.kind!r}")


def _has_significant_text(element: Element) -> bool:
    return any(
        isinstance(c, Text) and not c.is_whitespace for c in element.children
    )


def _write_pretty(node: Node, out: TextIO, indent: str, level: int) -> None:
    pad = indent * level
    if isinstance(node, Document):
        for child in node.children:
            _write_pretty(child, out, indent, level)
        return
    if isinstance(node, Element):
        out.write(pad)
        if _has_significant_text(node) or not node.children:
            _write(node, out)
            out.write("\n")
            return
        out.write(f"<{node.tag}")
        for attr in node.attributes:
            out.write(f' {attr.name}="{escape_attribute(attr.value)}"')
        out.write(">\n")
        for child in node.children:
            if isinstance(child, Text) and child.is_whitespace:
                continue
            _write_pretty(child, out, indent, level + 1)
        out.write(f"{pad}</{node.tag}>\n")
        return
    if isinstance(node, Text):
        if not node.is_whitespace:
            out.write(pad + escape_text(node.data) + "\n")
        return
    out.write(pad)
    _write(node, out)
    out.write("\n")
