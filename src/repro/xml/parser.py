"""XML 1.0 document parser (non-validating, DTD-aware).

Implements a single-pass recursive-descent parser over the source string:

* prolog: XML declaration, comments, PIs, one DOCTYPE with an internal
  subset (handed to :mod:`repro.xml.dtd`),
* element structure with attributes (duplicate attribute names rejected),
* character data with entity expansion: the five predefined entities,
  decimal/hex character references, and internal general entities declared
  in the DTD (with a recursion guard),
* CDATA sections, comments (``--`` inside rejected) and PIs,
* well-formedness: matching end tags, single root element, no content after
  the root.

Parsing options mirror what the storage layer needs: whitespace-only text
between elements can be kept (default) or dropped, and adjacent text runs
are always merged into one text node, matching the XPath data model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XmlSyntaxError
from repro.xml import dtd as dtd_module
from repro.xml.chars import is_name_char, is_name_start_char, is_xml_char
from repro.xml.dom import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
)
from repro.xml.lexer import Scanner

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_MAX_ENTITY_DEPTH = 32

# Element nesting bound: the parser (like the numbering and
# serialization passes) is recursive at ~3 Python frames per level, so
# unbounded depth would surface as an opaque RecursionError mid-parse;
# reject early with a clear message instead.  200 is far beyond any
# data-centric document and safely inside Python's default stack.
MAX_ELEMENT_DEPTH = 200


@dataclass(frozen=True)
class ParseOptions:
    """Knobs controlling document parsing.

    ``keep_whitespace``
        Keep whitespace-only text nodes between elements (default True;
        the storage schemes can be exercised either way).
    ``resolve_entities``
        Expand internal general entities declared in the DTD.  When False,
        an undeclared/unresolvable entity reference is a syntax error
        anyway, since this parser has no "skip" representation.
    """

    keep_whitespace: bool = True
    resolve_entities: bool = True


def parse_document(
    source: str, options: ParseOptions | None = None
) -> Document:
    """Parse a complete XML document and return its :class:`Document`."""
    parser = _XmlParser(source, options or ParseOptions())
    return parser.parse_document()


def parse_fragment(
    source: str, options: ParseOptions | None = None
) -> Element:
    """Parse a single element (fragment) and return it, detached.

    Convenience for tests and update payloads: the fragment must consist of
    exactly one element, optionally surrounded by whitespace.
    """
    document = parse_document(source, options)
    root = document.root_element
    document.remove_child(root)
    return root


class _XmlParser:
    def __init__(self, source: str, options: ParseOptions) -> None:
        if source.startswith("﻿"):
            source = source[1:]
        self.scanner = Scanner(source)
        self.options = options
        self.document = Document()
        self.entities: dict[str, str] = {}
        self._depth = 0

    # -- top level -------------------------------------------------------------

    def parse_document(self) -> Document:
        s = self.scanner
        self._parse_xml_declaration()
        self._parse_misc(allow_doctype=True)
        if s.at_end or not s.looking_at("<"):
            s.error("expected root element")
        root = self._parse_element()
        self.document.append_child(root)
        self._parse_misc(allow_doctype=False)
        if not s.at_end:
            s.error("unexpected content after root element")
        return self.document

    def _parse_xml_declaration(self) -> None:
        s = self.scanner
        if not s.looking_at("<?xml") or is_name_char(s.peek(5)):
            return
        s.advance(5)
        body = s.read_until("?>", "XML declaration")
        # Loose validation: version must be present and 1.x.
        if "version" not in body:
            s.error("XML declaration missing version")

    def _parse_misc(self, allow_doctype: bool) -> None:
        """Parse comments/PIs/whitespace (and at most one DOCTYPE)."""
        s = self.scanner
        while True:
            s.skip_whitespace()
            if s.looking_at("<!--"):
                self.document.append_child(self._parse_comment())
            elif s.looking_at("<?"):
                self.document.append_child(self._parse_pi())
            elif allow_doctype and s.looking_at("<!DOCTYPE"):
                self._parse_doctype()
                allow_doctype = False
            else:
                return

    def _parse_doctype(self) -> None:
        s = self.scanner
        s.advance(len("<!DOCTYPE"))
        s.require_whitespace("DOCTYPE declaration")
        self.document.doctype_name = s.read_name("doctype name")
        s.skip_whitespace()
        if s.looking_at("SYSTEM") or s.looking_at("PUBLIC"):
            # External identifier: parsed for well-formedness, not fetched.
            if s.match("SYSTEM"):
                s.require_whitespace("SYSTEM identifier")
                s.read_quoted("system literal")
            else:
                s.match("PUBLIC")
                s.require_whitespace("PUBLIC identifier")
                s.read_quoted("public literal")
                s.require_whitespace("PUBLIC identifier")
                s.read_quoted("system literal")
            s.skip_whitespace()
        if s.match("["):
            subset = self._read_internal_subset()
            self.document.dtd = dtd_module.parse_dtd(
                subset, root_name=self.document.doctype_name
            )
            for decl in self.document.dtd.general_entities.values():
                if decl.is_internal:
                    assert decl.value is not None
                    self.entities[decl.name] = decl.value
            s.skip_whitespace()
        s.expect(">", "DOCTYPE declaration")

    def _read_internal_subset(self) -> str:
        """Read the internal subset text up to the matching ']'.

        Quoted literals and comments may contain ']' so they are skipped
        atomically rather than scanning for a bare bracket.
        """
        s = self.scanner
        start = s.pos
        while True:
            ch = s.peek()
            if not ch:
                s.error("unterminated internal DTD subset")
            if ch == "]":
                subset = s.source[start:s.pos]
                s.advance()
                return subset
            if ch in ("'", '"'):
                s.advance()
                s.read_until(ch, "quoted literal in DTD")
            elif s.looking_at("<!--"):
                s.advance(4)
                s.read_until("-->", "comment in DTD")
            else:
                s.advance()

    # -- elements -------------------------------------------------------------

    def _parse_element(self) -> Element:
        s = self.scanner
        self._depth += 1
        if self._depth > MAX_ELEMENT_DEPTH:
            s.error(
                f"element nesting exceeds {MAX_ELEMENT_DEPTH} levels"
            )
        try:
            return self._parse_element_body()
        finally:
            self._depth -= 1

    def _parse_element_body(self) -> Element:
        s = self.scanner
        s.expect("<", "element start tag")
        tag = s.read_name("element name")
        element = Element(tag, validate=False)
        self._parse_attributes(element)
        if s.match("/>"):
            return element
        s.expect(">", f"start tag of <{tag}>")
        self._parse_content(element)
        # _parse_content consumed "</"; match the closing name.
        end_tag = s.read_name("end tag name")
        if end_tag != tag:
            s.error(f"mismatched end tag: expected </{tag}>, got </{end_tag}>")
        s.skip_whitespace()
        s.expect(">", f"end tag of <{tag}>")
        return element

    def _parse_attributes(self, element: Element) -> None:
        s = self.scanner
        while True:
            had_ws = s.skip_whitespace()
            ch = s.peek()
            if ch in (">", "/") or not ch:
                return
            if not had_ws:
                s.error("expected whitespace before attribute")
            name = s.read_name("attribute name")
            s.skip_whitespace()
            s.expect("=", f"attribute {name}")
            s.skip_whitespace()
            quote = s.peek()
            if quote not in ("'", '"'):
                s.error(f"attribute {name} value must be quoted")
            s.advance()
            raw = s.read_until(quote, f"attribute {name} value")
            if "<" in raw:
                s.error(f"'<' not allowed in attribute value of {name}")
            value = self._expand_entities(raw, normalize_ws=True)
            if element.get_attribute_node(name) is not None:
                s.error(f"duplicate attribute: {name}")
            element.set_attribute(name, value)

    def _parse_content(self, element: Element) -> None:
        """Parse element content until the matching ``</`` is consumed."""
        s = self.scanner
        while True:
            if s.at_end:
                s.error(f"unterminated element <{element.tag}>")
            if s.looking_at("</"):
                s.advance(2)
                if not self.options.keep_whitespace:
                    self._drop_whitespace_children(element)
                return
            if s.looking_at("<!--"):
                element.append_child(self._parse_comment())
            elif s.looking_at("<![CDATA["):
                s.advance(9)
                data = s.read_until("]]>", "CDATA section")
                self._append_text(element, data)
            elif s.looking_at("<?"):
                element.append_child(self._parse_pi())
            elif s.looking_at("<!"):
                s.error("markup declarations not allowed in content")
            elif s.peek() == "<":
                element.append_child(self._parse_element())
            else:
                self._parse_char_data(element)

    def _parse_char_data(self, element: Element) -> None:
        s = self.scanner
        start = s.pos
        src, n = s.source, s.length
        pos = s.pos
        while pos < n and src[pos] not in ("<", "&"):
            pos += 1
        raw = src[start:pos]
        s.pos = pos
        if "]]>" in raw:
            s.error("']]>' not allowed in character data")
        if s.peek() == "&":
            raw += self._parse_entity_reference()
        if raw:
            self._append_text(element, raw)

    def _append_text(self, element: Element, data: str) -> None:
        if not data:
            return
        element.append_text(data)

    @staticmethod
    def _drop_whitespace_children(element: Element) -> None:
        """Remove whitespace-only text children (keep_whitespace=False)."""
        kept = []
        for child in element.children:
            if isinstance(child, Text) and child.is_whitespace:
                child.parent = None
            else:
                kept.append(child)
        element.children = kept

    # -- entities ---------------------------------------------------------------

    def _parse_entity_reference(self) -> str:
        s = self.scanner
        s.expect("&", "entity reference")
        if s.match("#"):
            return self._parse_char_reference()
        name = s.read_name("entity name")
        s.expect(";", f"entity reference &{name}")
        return self._resolve_entity(name, depth=0)

    def _parse_char_reference(self) -> str:
        s = self.scanner
        if s.match("x"):
            digits = ""
            while s.peek() in "0123456789abcdefABCDEF":
                digits += s.peek()
                s.advance()
            base = 16
        else:
            digits = ""
            while s.peek().isdigit():
                digits += s.peek()
                s.advance()
            base = 10
        s.expect(";", "character reference")
        if not digits:
            s.error("empty character reference")
        ch = chr(int(digits, base))
        if not is_xml_char(ch):
            s.error(f"character reference to illegal character U+{ord(ch):04X}")
        return ch

    def _resolve_entity(self, name: str, depth: int) -> str:
        if depth > _MAX_ENTITY_DEPTH:
            raise XmlSyntaxError(f"entity expansion too deep at &{name};")
        if name in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[name]
        if self.options.resolve_entities and name in self.entities:
            return self._expand_entities(
                self.entities[name], normalize_ws=False, depth=depth + 1
            )
        self.scanner.error(f"undefined entity: &{name};")
        raise AssertionError  # unreachable

    def _expand_entities(
        self, raw: str, normalize_ws: bool, depth: int = 0
    ) -> str:
        """Expand entity/char references in *raw* (attribute values, entity
        replacement text).  With *normalize_ws*, tab/newline become spaces
        (XML attribute-value normalization for CDATA attributes)."""
        if depth > _MAX_ENTITY_DEPTH:
            raise XmlSyntaxError("entity expansion too deep")
        if normalize_ws:
            raw = raw.replace("\t", " ").replace("\n", " ").replace("\r", " ")
        if "&" not in raw:
            return raw
        out: list[str] = []
        inner = Scanner(raw)
        while not inner.at_end:
            ch = inner.peek()
            if ch != "&":
                start = inner.pos
                while not inner.at_end and inner.peek() != "&":
                    inner.advance()
                out.append(inner.source[start:inner.pos])
                continue
            inner.advance()
            if inner.match("#"):
                saved = self.scanner
                self.scanner = inner
                try:
                    out.append(self._parse_char_reference())
                finally:
                    self.scanner = saved
            else:
                name = inner.read_name("entity name")
                inner.expect(";", f"entity reference &{name}")
                if name in _PREDEFINED_ENTITIES:
                    out.append(_PREDEFINED_ENTITIES[name])
                elif self.options.resolve_entities and name in self.entities:
                    out.append(
                        self._expand_entities(
                            self.entities[name],
                            normalize_ws=normalize_ws,
                            depth=depth + 1,
                        )
                    )
                else:
                    inner.error(f"undefined entity: &{name};")
        return "".join(out)

    # -- comments and PIs --------------------------------------------------------

    def _parse_comment(self) -> Comment:
        s = self.scanner
        s.advance(4)  # "<!--"
        data = s.read_until("-->", "comment")
        if "--" in data:
            s.error("'--' not allowed inside comment")
        return Comment(data)

    def _parse_pi(self) -> ProcessingInstruction:
        s = self.scanner
        s.advance(2)  # "<?"
        target = s.read_name("PI target")
        if target.lower() == "xml":
            s.error("PI target 'xml' is reserved")
        data = ""
        if s.skip_whitespace():
            data = s.read_until("?>", "processing instruction")
        else:
            s.expect("?>", "processing instruction")
        return ProcessingInstruction(target, data)


def _is_name(text: str) -> bool:
    return bool(text) and is_name_start_char(text[0]) and all(
        is_name_char(c) for c in text[1:]
    )
