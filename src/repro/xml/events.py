"""Token/event stream representation of XML trees.

The tutorial contrasts *tree* storage with *token stream* storage: a linear
pre-order sequence of events, each carrying the data-model information of
one node boundary.  This module provides that second representation and the
conversions in both directions:

* :func:`stream_events` — DOM tree → event iterator (lazy),
* :func:`build_tree` — event iterator → DOM tree,
* :func:`parse_events` — XML text/file → events through the streaming
  pull parser (:mod:`repro.xml.stream`): the tree is never built, so
  memory stays O(depth) however large the document.

Shredders consume events so that every storage scheme is implementable in
one pass over the stream — this keeps shredding O(n) and mirrors how a
production loader would ingest documents too large for memory.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from typing import NamedTuple

from repro.errors import XmlRelError
from repro.xml.dom import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    _Container,
)


class EventKind(enum.Enum):
    """Kinds of events in the token stream."""

    START_DOCUMENT = "start-document"
    END_DOCUMENT = "end-document"
    START_ELEMENT = "start-element"
    END_ELEMENT = "end-element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"


class Event(NamedTuple):
    """One token in the stream.

    ``name`` is the element tag, attribute name, or PI target; ``value`` is
    the attribute value, text data, comment data, or PI data.  Structural
    events (start/end document, end element) carry neither.

    A named tuple rather than a dataclass: streaming shredders build one
    Event per token, so construction cost is on the ingest hot path and
    tuple construction is several times cheaper.
    """

    kind: EventKind
    name: str | None = None
    value: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.kind.value]
        if self.name is not None:
            parts.append(self.name)
        if self.value is not None:
            preview = (
                self.value if len(self.value) <= 20 else self.value[:17] + "..."
            )
            parts.append(repr(preview))
        return f"<Event {' '.join(parts)}>"


def stream_events(node: Node) -> Iterator[Event]:
    """Yield the token stream of *node* (document or subtree) lazily.

    Attribute events immediately follow their element's START_ELEMENT, in
    attribute order — the same position they occupy in document order.
    """
    if isinstance(node, Document):
        yield Event(EventKind.START_DOCUMENT)
        for child in node.children:
            yield from _stream_node(child)
        yield Event(EventKind.END_DOCUMENT)
    else:
        yield from _stream_node(node)


def _stream_node(node: Node) -> Iterator[Event]:
    if isinstance(node, Element):
        yield Event(EventKind.START_ELEMENT, name=node.tag)
        for attr in node.attributes:
            yield Event(EventKind.ATTRIBUTE, name=attr.name, value=attr.value)
        for child in node.children:
            yield from _stream_node(child)
        yield Event(EventKind.END_ELEMENT, name=node.tag)
    elif isinstance(node, Text):
        yield Event(EventKind.TEXT, value=node.data)
    elif isinstance(node, Comment):
        yield Event(EventKind.COMMENT, value=node.data)
    elif isinstance(node, ProcessingInstruction):
        yield Event(
            EventKind.PROCESSING_INSTRUCTION, name=node.target, value=node.data
        )
    else:
        raise XmlRelError(f"cannot stream node kind {node.kind!r}")


def build_tree(events: Iterable[Event]) -> Document:
    """Rebuild a :class:`Document` from a token stream.

    The inverse of :func:`stream_events`; raises on malformed streams
    (attribute outside a start tag, unbalanced end element, ...).
    """
    document = Document()
    stack: list[_Container] = [document]
    last_started: Element | None = None
    saw_start = False
    for event in events:
        kind = event.kind
        if kind is EventKind.START_DOCUMENT:
            if saw_start:
                raise XmlRelError("nested START_DOCUMENT in event stream")
            saw_start = True
        elif kind is EventKind.END_DOCUMENT:
            if len(stack) != 1:
                raise XmlRelError("END_DOCUMENT with open elements")
        elif kind is EventKind.START_ELEMENT:
            if event.name is None:
                raise XmlRelError("START_ELEMENT without a name")
            element = Element(event.name, validate=False)
            stack[-1].append_child(element)
            stack.append(element)
            last_started = element
        elif kind is EventKind.END_ELEMENT:
            if len(stack) <= 1:
                raise XmlRelError("END_ELEMENT without matching start")
            closing = stack.pop()
            if (
                event.name is not None
                and isinstance(closing, Element)
                and closing.tag != event.name
            ):
                raise XmlRelError(
                    f"END_ELEMENT {event.name!r} does not match "
                    f"open element {closing.tag!r}"
                )
            last_started = None
        elif kind is EventKind.ATTRIBUTE:
            if last_started is None or stack[-1] is not last_started:
                raise XmlRelError("ATTRIBUTE event outside a start tag")
            if event.name is None:
                raise XmlRelError("ATTRIBUTE event without a name")
            last_started.set_attribute(event.name, event.value or "")
        elif kind is EventKind.TEXT:
            parent = stack[-1]
            if not isinstance(parent, Element):
                raise XmlRelError("TEXT event at document level")
            parent.append_text(event.value or "")
            last_started = None
        elif kind is EventKind.COMMENT:
            stack[-1].append_child(Comment(event.value or ""))
            last_started = None
        elif kind is EventKind.PROCESSING_INSTRUCTION:
            if event.name is None:
                raise XmlRelError("PI event without a target")
            stack[-1].append_child(
                ProcessingInstruction(event.name, event.value or "")
            )
            last_started = None
        else:  # pragma: no cover - enum is closed
            raise XmlRelError(f"unknown event kind: {kind!r}")
    if len(stack) != 1:
        raise XmlRelError("event stream ended with open elements")
    return document


def parse_events(source, options=None) -> Iterator[Event]:
    """Token stream of an XML source — *without* building a tree.

    *source* may be XML text, an open text-mode file object, or a path
    (:class:`os.PathLike`); *options* a
    :class:`~repro.xml.parser.ParseOptions`.  Since PR 8 this is a true
    pull parser (:mod:`repro.xml.stream`): memory is O(depth), so the
    stream works for documents far larger than RAM.  The events are
    exactly ``stream_events(parse_document(text))``.
    """
    from repro.xml.stream import iter_events

    return iter_events(source, options)


def count_events(events: Iterable[Event]) -> dict[EventKind, int]:
    """Histogram of event kinds — handy for size accounting in benches."""
    counts: dict[EventKind, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts
