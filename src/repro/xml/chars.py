"""Character classes from the XML 1.0 specification.

Only the subsets needed by the parser are implemented.  Name characters
follow the XML 1.0 (Fifth Edition) productions [4] NameStartChar and
[4a] NameChar, restricted to the Basic Multilingual Plane plus the
supplementary range, which covers all practical documents.
"""

from __future__ import annotations

_NAME_START_RANGES = (
    (ord(":"), ord(":")),
    (ord("A"), ord("Z")),
    (ord("_"), ord("_")),
    (ord("a"), ord("z")),
    (0xC0, 0xD6),
    (0xD8, 0xF6),
    (0xF8, 0x2FF),
    (0x370, 0x37D),
    (0x37F, 0x1FFF),
    (0x200C, 0x200D),
    (0x2070, 0x218F),
    (0x2C00, 0x2FEF),
    (0x3001, 0xD7FF),
    (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD),
    (0x10000, 0xEFFFF),
)

_NAME_EXTRA_RANGES = (
    (ord("-"), ord("-")),
    (ord("."), ord(".")),
    (ord("0"), ord("9")),
    (0xB7, 0xB7),
    (0x300, 0x36F),
    (0x203F, 0x2040),
)

# ASCII fast paths: frozensets are much faster than range scans for the
# characters that make up virtually all real element/attribute names.
_ASCII_NAME_START = frozenset(
    ":_" + "".join(chr(c) for c in range(ord("A"), ord("Z") + 1))
    + "".join(chr(c) for c in range(ord("a"), ord("z") + 1))
)
_ASCII_NAME_CHAR = _ASCII_NAME_START | frozenset("-.0123456789")

WHITESPACE = frozenset(" \t\r\n")


def _in_ranges(code: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    for lo, hi in ranges:
        if lo <= code <= hi:
            return True
    return False


def is_name_start_char(ch: str) -> bool:
    """Return True if *ch* may start an XML name."""
    if ch in _ASCII_NAME_START:
        return True
    code = ord(ch)
    return code > 0x7F and _in_ranges(code, _NAME_START_RANGES)


def is_name_char(ch: str) -> bool:
    """Return True if *ch* may appear inside an XML name."""
    if ch in _ASCII_NAME_CHAR:
        return True
    code = ord(ch)
    if code <= 0x7F:
        return False
    return _in_ranges(code, _NAME_START_RANGES) or _in_ranges(
        code, _NAME_EXTRA_RANGES
    )


def is_xml_char(ch: str) -> bool:
    """Return True if *ch* is a legal XML 1.0 document character."""
    code = ord(ch)
    return (
        code in (0x9, 0xA, 0xD)
        or 0x20 <= code <= 0xD7FF
        or 0xE000 <= code <= 0xFFFD
        or 0x10000 <= code <= 0x10FFFF
    )


def is_valid_name(name: str) -> bool:
    """Return True if *name* is a well-formed XML name."""
    if not name:
        return False
    if not is_name_start_char(name[0]):
        return False
    return all(is_name_char(ch) for ch in name[1:])


def is_whitespace(text: str) -> bool:
    """Return True if *text* is non-empty XML whitespace only."""
    return bool(text) and all(ch in WHITESPACE for ch in text)
