"""DTD (document type definition) parsing.

Parses the declaration syntax needed by the schema-aware relational mapping:

* ``<!ELEMENT name model>`` with EMPTY / ANY / mixed / children models,
* ``<!ATTLIST name (attname type default)*>``,
* ``<!ENTITY name "value">`` internal general entities (used by the
  document parser for ``&name;`` expansion) and internal parameter
  entities (``<!ENTITY % name "value">``, expanded textually within the
  DTD itself),
* ``<!NOTATION ...>`` declarations (parsed and recorded, not interpreted).

External identifiers (SYSTEM/PUBLIC) are parsed and recorded but never
dereferenced: this library runs offline and treats external subsets as
unavailable, matching a non-validating processor's options under the XML
spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DtdSyntaxError
from repro.xml.chars import WHITESPACE
from repro.xml.contentmodel import (
    ChoiceParticle,
    ContentModel,
    NameParticle,
    ONE,
    OPTIONAL,
    Particle,
    PLUS,
    STAR,
    SequenceParticle,
    simplify,
)
from repro.xml.lexer import Scanner

# Attribute types from the ATTLIST production.
ATTR_CDATA = "CDATA"
ATTR_ID = "ID"
ATTR_IDREF = "IDREF"
ATTR_IDREFS = "IDREFS"
ATTR_ENTITY = "ENTITY"
ATTR_ENTITIES = "ENTITIES"
ATTR_NMTOKEN = "NMTOKEN"
ATTR_NMTOKENS = "NMTOKENS"
ATTR_ENUMERATION = "ENUMERATION"
ATTR_NOTATION = "NOTATION"

_TOKENIZED_TYPES = (
    ATTR_ID,
    ATTR_IDREF,
    ATTR_IDREFS,
    ATTR_ENTITY,
    ATTR_ENTITIES,
    ATTR_NMTOKENS,
    ATTR_NMTOKEN,
)

# Attribute defaults.
DEFAULT_REQUIRED = "#REQUIRED"
DEFAULT_IMPLIED = "#IMPLIED"
DEFAULT_FIXED = "#FIXED"
DEFAULT_VALUE = "#DEFAULT"


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute definition from an ATTLIST declaration."""

    element: str
    name: str
    attr_type: str
    default_kind: str
    default_value: str | None = None
    enumeration: tuple[str, ...] = ()

    @property
    def is_required(self) -> bool:
        return self.default_kind == DEFAULT_REQUIRED


@dataclass(frozen=True)
class ElementDecl:
    """One ``<!ELEMENT>`` declaration."""

    name: str
    model: ContentModel

    def simplified(self) -> list[tuple[str, str]]:
        """The inlining-normalized field list of the content model."""
        return simplify(self.model)


@dataclass(frozen=True)
class EntityDecl:
    """One ``<!ENTITY>`` declaration (general or parameter)."""

    name: str
    value: str | None
    is_parameter: bool = False
    system_id: str | None = None
    public_id: str | None = None
    notation: str | None = None

    @property
    def is_internal(self) -> bool:
        return self.value is not None


@dataclass
class Dtd:
    """A parsed DTD: element, attribute, entity and notation declarations."""

    elements: dict[str, ElementDecl] = field(default_factory=dict)
    attributes: dict[str, list[AttributeDecl]] = field(default_factory=dict)
    general_entities: dict[str, EntityDecl] = field(default_factory=dict)
    parameter_entities: dict[str, EntityDecl] = field(default_factory=dict)
    notations: dict[str, tuple[str | None, str | None]] = field(
        default_factory=dict
    )
    root_name: str | None = None

    def attributes_of(self, element: str) -> list[AttributeDecl]:
        """The declared attributes of *element* (possibly empty)."""
        return self.attributes.get(element, [])

    def id_attribute_of(self, element: str) -> AttributeDecl | None:
        """The ID-typed attribute of *element*, if one is declared."""
        for attr in self.attributes_of(element):
            if attr.attr_type == ATTR_ID:
                return attr
        return None

    def element_names(self) -> list[str]:
        """Declared element names, in declaration order."""
        return list(self.elements)

    def referenced_names(self) -> set[str]:
        """Every element name mentioned in any content model."""
        names: set[str] = set()
        for decl in self.elements.values():
            names |= decl.model.element_names()
        return names

    def undeclared_references(self) -> set[str]:
        """Names used in content models but never declared."""
        return self.referenced_names() - set(self.elements)


def parse_dtd(text: str, root_name: str | None = None) -> Dtd:
    """Parse DTD declaration text (an internal or external subset)."""
    dtd = Dtd(root_name=root_name)
    parser = _DtdParser(text, dtd)
    parser.run()
    return dtd


class _DtdParser:
    """Recursive-descent parser over DTD declaration text."""

    def __init__(self, text: str, dtd: Dtd) -> None:
        self.dtd = dtd
        self.scanner = Scanner(text)

    def run(self) -> None:
        s = self.scanner
        while True:
            s.skip_whitespace()
            if s.at_end:
                return
            if s.match("%"):
                # Parameter-entity reference between declarations: expand
                # textually by splicing the replacement into the source.
                name = s.read_name("parameter entity name")
                s.expect(";", "parameter entity reference")
                self._splice_parameter_entity(name)
                continue
            if s.match("<!--"):
                s.read_until("-->", "comment")
                continue
            if s.match("<?"):
                s.read_until("?>", "processing instruction")
                continue
            if not s.match("<!"):
                s.error("expected markup declaration in DTD")
            keyword = s.read_name("declaration keyword")
            if keyword == "ELEMENT":
                self._parse_element_decl()
            elif keyword == "ATTLIST":
                self._parse_attlist_decl()
            elif keyword == "ENTITY":
                self._parse_entity_decl()
            elif keyword == "NOTATION":
                self._parse_notation_decl()
            else:
                s.error(f"unknown DTD declaration: <!{keyword}")

    def _splice_parameter_entity(self, name: str) -> None:
        decl = self.dtd.parameter_entities.get(name)
        if decl is None or decl.value is None:
            # Unknown or external parameter entity: skip (non-validating).
            return
        s = self.scanner
        s.source = s.source[:s.pos] + decl.value + s.source[s.pos:]
        s.length = len(s.source)

    # -- <!ELEMENT ...> ------------------------------------------------------

    def _parse_element_decl(self) -> None:
        s = self.scanner
        s.require_whitespace("ELEMENT declaration")
        name = s.read_name("element name")
        s.require_whitespace("ELEMENT declaration")
        self._expand_pe_references_inline()
        model = self._parse_content_model()
        s.skip_whitespace()
        s.expect(">", "ELEMENT declaration")
        if name in self.dtd.elements:
            raise DtdSyntaxError(f"duplicate element declaration: {name}")
        self.dtd.elements[name] = ElementDecl(name, model)
        if self.dtd.root_name is None:
            self.dtd.root_name = name

    def _expand_pe_references_inline(self) -> None:
        """Expand a parameter-entity reference appearing inside a declaration."""
        s = self.scanner
        while s.peek() == "%":
            s.advance()
            name = s.read_name("parameter entity name")
            s.expect(";", "parameter entity reference")
            self._splice_parameter_entity(name)
            s.skip_whitespace()

    def _parse_content_model(self) -> ContentModel:
        s = self.scanner
        if s.match("EMPTY"):
            return ContentModel.empty()
        if s.match("ANY"):
            return ContentModel.any()
        if not s.match("("):
            s.error("expected '(', EMPTY or ANY in content model")
        s.skip_whitespace()
        if s.match("#PCDATA"):
            return self._parse_mixed_tail()
        particle = self._parse_group_tail(first=self._parse_cp())
        particle.occurrence = self._parse_occurrence()
        return ContentModel.children(particle)

    def _parse_mixed_tail(self) -> ContentModel:
        s = self.scanner
        names: list[str] = []
        s.skip_whitespace()
        while s.match("|"):
            s.skip_whitespace()
            names.append(s.read_name("element name in mixed model"))
            s.skip_whitespace()
        s.expect(")", "mixed content model")
        if names:
            s.expect("*", "mixed content model with element names")
        else:
            s.match("*")  # (#PCDATA)* is legal too
        return ContentModel.mixed(names)

    def _parse_cp(self) -> Particle:
        """Parse one content particle: a name or a parenthesized group."""
        s = self.scanner
        s.skip_whitespace()
        if s.match("("):
            s.skip_whitespace()
            particle = self._parse_group_tail(first=self._parse_cp())
        else:
            particle = NameParticle(s.read_name("content particle"))
        particle.occurrence = self._parse_occurrence()
        return particle

    def _parse_group_tail(self, first: Particle) -> Particle:
        """After '(' and the first particle: parse ',' or '|' items to ')'."""
        s = self.scanner
        children = [first]
        separator: str | None = None
        while True:
            s.skip_whitespace()
            if s.match(")"):
                break
            if s.peek() in (",", "|"):
                sep = s.peek()
                if separator is None:
                    separator = sep
                elif separator != sep:
                    s.error("cannot mix ',' and '|' in one group")
                s.advance()
                children.append(self._parse_cp())
            else:
                s.error("expected ',', '|' or ')' in content model group")
        if separator == "|":
            return ChoiceParticle(children)
        if len(children) == 1:
            # A single-child group: the group still exists syntactically so
            # its occurrence indicator can apply — keep a sequence wrapper.
            return SequenceParticle(children)
        return SequenceParticle(children)

    def _parse_occurrence(self) -> str:
        s = self.scanner
        ch = s.peek()
        if ch == "?":
            s.advance()
            return OPTIONAL
        if ch == "*":
            s.advance()
            return STAR
        if ch == "+":
            s.advance()
            return PLUS
        return ONE

    # -- <!ATTLIST ...> --------------------------------------------------------

    def _parse_attlist_decl(self) -> None:
        s = self.scanner
        s.require_whitespace("ATTLIST declaration")
        element = s.read_name("element name")
        decls = self.dtd.attributes.setdefault(element, [])
        while True:
            had_ws = s.skip_whitespace()
            if s.match(">"):
                return
            if not had_ws:
                s.error("expected whitespace before attribute definition")
            name = s.read_name("attribute name")
            s.require_whitespace("attribute definition")
            attr_type, enumeration = self._parse_attribute_type()
            s.require_whitespace("attribute definition")
            default_kind, default_value = self._parse_attribute_default()
            decls.append(
                AttributeDecl(
                    element=element,
                    name=name,
                    attr_type=attr_type,
                    default_kind=default_kind,
                    default_value=default_value,
                    enumeration=tuple(enumeration),
                )
            )

    def _parse_attribute_type(self) -> tuple[str, list[str]]:
        s = self.scanner
        if s.peek() == "(":
            return ATTR_ENUMERATION, self._parse_enumeration()
        keyword = s.read_name("attribute type")
        if keyword == ATTR_CDATA:
            return ATTR_CDATA, []
        if keyword == ATTR_NOTATION:
            s.require_whitespace("NOTATION type")
            return ATTR_NOTATION, self._parse_enumeration()
        if keyword in _TOKENIZED_TYPES:
            return keyword, []
        s.error(f"unknown attribute type: {keyword}")
        raise AssertionError  # unreachable; s.error always raises

    def _parse_enumeration(self) -> list[str]:
        s = self.scanner
        s.expect("(", "enumeration")
        values: list[str] = []
        while True:
            s.skip_whitespace()
            values.append(s.read_name("enumeration value"))
            s.skip_whitespace()
            if s.match(")"):
                return values
            s.expect("|", "enumeration")

    def _parse_attribute_default(self) -> tuple[str, str | None]:
        s = self.scanner
        if s.match(DEFAULT_REQUIRED):
            return DEFAULT_REQUIRED, None
        if s.match(DEFAULT_IMPLIED):
            return DEFAULT_IMPLIED, None
        if s.match(DEFAULT_FIXED):
            s.require_whitespace("#FIXED default")
            return DEFAULT_FIXED, s.read_quoted("#FIXED default value")
        return DEFAULT_VALUE, s.read_quoted("attribute default value")

    # -- <!ENTITY ...> -----------------------------------------------------------

    def _parse_entity_decl(self) -> None:
        s = self.scanner
        s.require_whitespace("ENTITY declaration")
        is_parameter = False
        if s.match("%"):
            is_parameter = True
            s.require_whitespace("parameter entity declaration")
        name = s.read_name("entity name")
        s.require_whitespace("ENTITY declaration")
        value: str | None = None
        system_id: str | None = None
        public_id: str | None = None
        notation: str | None = None
        if s.peek() in ("'", '"'):
            value = s.read_quoted("entity value")
        else:
            public_id, system_id = self._parse_external_id()
            s.skip_whitespace()
            if s.match("NDATA"):
                s.require_whitespace("NDATA declaration")
                notation = s.read_name("notation name")
        s.skip_whitespace()
        s.expect(">", "ENTITY declaration")
        decl = EntityDecl(
            name=name,
            value=value,
            is_parameter=is_parameter,
            system_id=system_id,
            public_id=public_id,
            notation=notation,
        )
        table = (
            self.dtd.parameter_entities
            if is_parameter
            else self.dtd.general_entities
        )
        # First declaration binds (XML spec: later redeclarations ignored).
        table.setdefault(name, decl)

    # -- <!NOTATION ...> ---------------------------------------------------------

    def _parse_notation_decl(self) -> None:
        s = self.scanner
        s.require_whitespace("NOTATION declaration")
        name = s.read_name("notation name")
        s.require_whitespace("NOTATION declaration")
        public_id: str | None = None
        system_id: str | None = None
        if s.match("PUBLIC"):
            s.require_whitespace("PUBLIC identifier")
            public_id = s.read_quoted("public literal")
            s.skip_whitespace()
            if s.peek() in ("'", '"'):
                system_id = s.read_quoted("system literal")
        elif s.match("SYSTEM"):
            s.require_whitespace("SYSTEM identifier")
            system_id = s.read_quoted("system literal")
        else:
            s.error("expected SYSTEM or PUBLIC in NOTATION declaration")
        s.skip_whitespace()
        s.expect(">", "NOTATION declaration")
        self.dtd.notations[name] = (public_id, system_id)

    def _parse_external_id(self) -> tuple[str | None, str | None]:
        s = self.scanner
        if s.match("SYSTEM"):
            s.require_whitespace("SYSTEM identifier")
            return None, s.read_quoted("system literal")
        if s.match("PUBLIC"):
            s.require_whitespace("PUBLIC identifier")
            public_id = s.read_quoted("public literal")
            s.require_whitespace("PUBLIC identifier")
            system_id = s.read_quoted("system literal")
            return public_id, system_id
        s.error("expected SYSTEM or PUBLIC external identifier")
        raise AssertionError  # unreachable


def dtd_to_text(dtd: Dtd) -> str:
    """Serialize *dtd* back to declaration text.

    ``parse_dtd(dtd_to_text(d))`` reproduces the element/attribute
    structure (entity values are re-emitted as internal declarations);
    used to persist a DTD alongside the schema-aware relational mapping.
    """
    lines: list[str] = []
    for decl in dtd.elements.values():
        lines.append(f"<!ELEMENT {decl.name} {decl.model}>")
    for element, attrs in dtd.attributes.items():
        for attr in attrs:
            if attr.attr_type == ATTR_ENUMERATION:
                type_text = "(" + " | ".join(attr.enumeration) + ")"
            elif attr.attr_type == ATTR_NOTATION:
                type_text = "NOTATION (" + " | ".join(attr.enumeration) + ")"
            else:
                type_text = attr.attr_type
            if attr.default_kind == DEFAULT_FIXED:
                default = f'#FIXED "{attr.default_value}"'
            elif attr.default_kind == DEFAULT_VALUE:
                default = f'"{attr.default_value}"'
            else:
                default = attr.default_kind
            lines.append(
                f"<!ATTLIST {element} {attr.name} {type_text} {default}>"
            )
    for entity in dtd.general_entities.values():
        if entity.is_internal:
            value = (entity.value or "").replace('"', "&#34;")
            lines.append(f'<!ENTITY {entity.name} "{value}">')
    return "\n".join(lines)


def _strip_dtd_whitespace(text: str) -> str:
    return text.strip("".join(WHITESPACE))
