"""Low-level cursor over XML source text.

The :class:`Scanner` owns the source string and a position, and provides the
primitive operations the document and DTD parsers are written in terms of:
peeking, literal matching, name scanning, delimited reads, and error
reporting with line/column information computed from the offset.
"""

from __future__ import annotations

from repro.errors import XmlSyntaxError
from repro.xml.chars import WHITESPACE, is_name_char, is_name_start_char


class Scanner:
    """A cursor over *source* with XML-oriented scanning primitives."""

    __slots__ = ("source", "pos", "length")

    def __init__(self, source: str, pos: int = 0) -> None:
        self.source = source
        self.pos = pos
        self.length = len(source)

    # -- basic queries -------------------------------------------------------

    @property
    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        """The character at pos+offset, or '' past the end."""
        i = self.pos + offset
        return self.source[i] if i < self.length else ""

    def looking_at(self, literal: str) -> bool:
        """True if the source continues with *literal* at the cursor."""
        return self.source.startswith(literal, self.pos)

    # -- consumption -----------------------------------------------------------

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def match(self, literal: str) -> bool:
        """Consume *literal* if present; return whether it was consumed."""
        if self.looking_at(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str, context: str = "") -> None:
        """Consume *literal* or raise a syntax error naming *context*."""
        if not self.match(literal):
            what = f" in {context}" if context else ""
            found = self.peek() or "<end of input>"
            self.error(f"expected {literal!r}{what}, found {found!r}")

    def skip_whitespace(self) -> bool:
        """Skip over XML whitespace; return True if any was skipped."""
        start = self.pos
        src, n = self.source, self.length
        while self.pos < n and src[self.pos] in WHITESPACE:
            self.pos += 1
        return self.pos > start

    def require_whitespace(self, context: str = "") -> None:
        """Skip mandatory whitespace or raise."""
        if not self.skip_whitespace():
            what = f" in {context}" if context else ""
            self.error(f"expected whitespace{what}")

    def read_name(self, context: str = "name") -> str:
        """Read an XML Name at the cursor or raise."""
        start = self.pos
        ch = self.peek()
        if not ch or not is_name_start_char(ch):
            self.error(f"expected {context}, found {ch or '<end of input>'!r}")
        self.pos += 1
        src, n = self.source, self.length
        while self.pos < n and is_name_char(src[self.pos]):
            self.pos += 1
        return src[start:self.pos]

    def read_until(self, terminator: str, context: str) -> str:
        """Read up to (and consume) *terminator*; return the text before it."""
        end = self.source.find(terminator, self.pos)
        if end < 0:
            self.error(f"unterminated {context}: missing {terminator!r}")
        text = self.source[self.pos:end]
        self.pos = end + len(terminator)
        return text

    def read_quoted(self, context: str) -> str:
        """Read a single- or double-quoted literal; return its raw content."""
        quote = self.peek()
        if quote not in ("'", '"'):
            self.error(f"expected quoted literal in {context}")
        self.advance()
        return self.read_until(quote, context)

    # -- errors ----------------------------------------------------------------

    def line_column(self, pos: int | None = None) -> tuple[int, int]:
        """1-based (line, column) of *pos* (default: the cursor)."""
        if pos is None:
            pos = self.pos
        pos = min(pos, self.length)
        line = self.source.count("\n", 0, pos) + 1
        last_nl = self.source.rfind("\n", 0, pos)
        column = pos - last_nl
        return line, column

    def error(self, message: str, pos: int | None = None) -> None:
        """Raise :class:`XmlSyntaxError` at *pos* (default: the cursor)."""
        line, column = self.line_column(pos)
        raise XmlSyntaxError(message, line, column)
