"""XML substrate: parser, tree data model, serializer, event stream, DTD.

This subpackage is a self-contained XML 1.0 processor built from scratch (no
``lxml``/``expat`` dependency) so the rest of the library has full control
over document order, node identity, and DTD content models — the three
properties the relational mappings depend on.
"""

from repro.xml.dom import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    NodeKind,
    ProcessingInstruction,
    Text,
)
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.serialize import serialize, serialize_pretty
from repro.xml.dtd import Dtd, parse_dtd

__all__ = [
    "Attribute",
    "Comment",
    "Document",
    "Dtd",
    "Element",
    "Node",
    "NodeKind",
    "ProcessingInstruction",
    "Text",
    "parse_document",
    "parse_dtd",
    "parse_fragment",
    "serialize",
    "serialize_pretty",
]
