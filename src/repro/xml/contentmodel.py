"""Element content models: regular expressions over element names.

A DTD ``<!ELEMENT ...>`` declaration carries one of:

* ``EMPTY`` / ``ANY`` — the two keyword models,
* a *mixed* model ``(#PCDATA | a | b)*`` — text interleaved with named
  elements in any order, or
* a *children* model — a regular expression over element names built from
  sequences (``,``), choices (``|``) and the occurrence operators
  ``?``/``*``/``+``.

Two operations on children models matter to the relational mapping layer:

* **membership** — does a sequence of child-element names match the model?
  Implemented by compiling the model to a Thompson NFA and simulating it
  (no backtracking, linear in input length), so validation is robust even
  for adversarial models.
* **simplification** — the normalization step of the DTD-inlining mapping
  (Shanmugasundaram et al., VLDB 1999), which flattens any model into an
  ordered list of ``(name, quantifier)`` pairs with quantifiers drawn from
  ``{'1', '?', '*'}``.  Simplification only ever *generalizes*: the language
  of the simplified model is a superset of the original's (a property the
  test suite checks with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.errors import XmlRelError

# Occurrence indicators.
ONE = ""
OPTIONAL = "?"
STAR = "*"
PLUS = "+"

_VALID_OCCURRENCE = (ONE, OPTIONAL, STAR, PLUS)


class Particle:
    """Base class of content-particle tree nodes."""

    __slots__ = ("occurrence",)

    def __init__(self, occurrence: str = ONE) -> None:
        if occurrence not in _VALID_OCCURRENCE:
            raise XmlRelError(f"invalid occurrence indicator: {occurrence!r}")
        self.occurrence = occurrence

    def _base_str(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self._base_str() + self.occurrence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Particle) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


class NameParticle(Particle):
    """A single element name, e.g. ``title?``."""

    __slots__ = ("name",)

    def __init__(self, name: str, occurrence: str = ONE) -> None:
        super().__init__(occurrence)
        self.name = name

    def _base_str(self) -> str:
        return self.name


class SequenceParticle(Particle):
    """An ordered group ``(p1, p2, ...)``."""

    __slots__ = ("children",)

    def __init__(
        self, children: Sequence[Particle], occurrence: str = ONE
    ) -> None:
        super().__init__(occurrence)
        self.children = list(children)

    def _base_str(self) -> str:
        return "(" + ", ".join(str(c) for c in self.children) + ")"


class ChoiceParticle(Particle):
    """An alternation group ``(p1 | p2 | ...)``."""

    __slots__ = ("children",)

    def __init__(
        self, children: Sequence[Particle], occurrence: str = ONE
    ) -> None:
        super().__init__(occurrence)
        self.children = list(children)

    def _base_str(self) -> str:
        return "(" + " | ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class ContentModel:
    """The content model of one element declaration.

    Exactly one of the flags/fields describes the variant:

    * ``is_empty`` — the EMPTY model;
    * ``is_any`` — the ANY model;
    * ``is_mixed`` — mixed content; ``mixed_names`` lists the allowed
      element names (possibly empty, i.e. pure ``(#PCDATA)``);
    * otherwise a children model with ``particle`` as its root.
    """

    is_empty: bool = False
    is_any: bool = False
    is_mixed: bool = False
    mixed_names: tuple[str, ...] = ()
    particle: Particle | None = None

    @staticmethod
    def empty() -> "ContentModel":
        return ContentModel(is_empty=True)

    @staticmethod
    def any() -> "ContentModel":
        return ContentModel(is_any=True)

    @staticmethod
    def mixed(names: Iterable[str] = ()) -> "ContentModel":
        return ContentModel(is_mixed=True, mixed_names=tuple(names))

    @staticmethod
    def children(particle: Particle) -> "ContentModel":
        return ContentModel(particle=particle)

    @property
    def is_pcdata_only(self) -> bool:
        """True for the pure-text model ``(#PCDATA)``."""
        return self.is_mixed and not self.mixed_names

    def element_names(self) -> set[str]:
        """All element names mentioned anywhere in the model."""
        if self.is_mixed:
            return set(self.mixed_names)
        if self.particle is None:
            return set()
        names: set[str] = set()
        stack = [self.particle]
        while stack:
            p = stack.pop()
            if isinstance(p, NameParticle):
                names.add(p.name)
            elif isinstance(p, (SequenceParticle, ChoiceParticle)):
                stack.extend(p.children)
        return names

    def matches(self, child_names: Sequence[str]) -> bool:
        """Validate a sequence of child-element names against the model.

        Text interleaving is ignored: callers pass the *element* children
        only, which is exactly what each variant constrains.
        """
        if self.is_any:
            return True
        if self.is_empty:
            return not child_names
        if self.is_mixed:
            allowed = set(self.mixed_names)
            return all(name in allowed for name in child_names)
        assert self.particle is not None
        return _compile_nfa(self.particle).accepts(child_names)

    def __str__(self) -> str:
        if self.is_empty:
            return "EMPTY"
        if self.is_any:
            return "ANY"
        if self.is_mixed:
            if not self.mixed_names:
                return "(#PCDATA)"
            inner = " | ".join(("#PCDATA",) + self.mixed_names)
            return f"({inner})*"
        return str(self.particle)


# ---------------------------------------------------------------------------
# NFA compilation (Thompson construction) for children-model membership.
# ---------------------------------------------------------------------------


@dataclass
class _Nfa:
    """An epsilon-NFA over element names.

    ``transitions[state]`` is a list of ``(symbol, target)`` pairs where
    ``symbol`` is an element name or ``None`` for an epsilon move.
    """

    start: int
    accept: int
    transitions: list[list[tuple[str | None, int]]] = field(
        default_factory=list
    )

    def accepts(self, symbols: Sequence[str]) -> bool:
        current = self._closure({self.start})
        for symbol in symbols:
            nxt = {
                target
                for state in current
                for (label, target) in self.transitions[state]
                if label == symbol
            }
            if not nxt:
                return False
            current = self._closure(nxt)
        return self.accept in current

    def _closure(self, states: set[int]) -> set[int]:
        result = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for label, target in self.transitions[state]:
                if label is None and target not in result:
                    result.add(target)
                    stack.append(target)
        return result


class _NfaBuilder:
    def __init__(self) -> None:
        self.transitions: list[list[tuple[str | None, int]]] = []

    def new_state(self) -> int:
        self.transitions.append([])
        return len(self.transitions) - 1

    def edge(self, src: int, label: str | None, dst: int) -> None:
        self.transitions[src].append((label, dst))

    def build(self, particle: Particle) -> _Nfa:
        start, accept = self._fragment(particle)
        return _Nfa(start, accept, self.transitions)

    def _fragment(self, particle: Particle) -> tuple[int, int]:
        start, accept = self._base_fragment(particle)
        occ = particle.occurrence
        if occ == ONE:
            return start, accept
        outer_start = self.new_state()
        outer_accept = self.new_state()
        self.edge(outer_start, None, start)
        self.edge(accept, None, outer_accept)
        if occ in (OPTIONAL, STAR):
            self.edge(outer_start, None, outer_accept)
        if occ in (STAR, PLUS):
            self.edge(accept, None, start)
        return outer_start, outer_accept

    def _base_fragment(self, particle: Particle) -> tuple[int, int]:
        if isinstance(particle, NameParticle):
            start = self.new_state()
            accept = self.new_state()
            self.edge(start, particle.name, accept)
            return start, accept
        if isinstance(particle, SequenceParticle):
            if not particle.children:
                state = self.new_state()
                return state, state
            start, accept = self._fragment(particle.children[0])
            for child in particle.children[1:]:
                nxt_start, nxt_accept = self._fragment(child)
                self.edge(accept, None, nxt_start)
                accept = nxt_accept
            return start, accept
        if isinstance(particle, ChoiceParticle):
            start = self.new_state()
            accept = self.new_state()
            for child in particle.children:
                c_start, c_accept = self._fragment(child)
                self.edge(start, None, c_start)
                self.edge(c_accept, None, accept)
            return start, accept
        raise XmlRelError(f"unknown particle type: {type(particle).__name__}")


def _compile_nfa(particle: Particle) -> _Nfa:
    return _NfaBuilder().build(particle)


# ---------------------------------------------------------------------------
# Simplification (the DTD-inlining normalization of Shanmugasundaram et al.)
# ---------------------------------------------------------------------------

# A simplified model: ordered (name, quantifier) pairs, quantifier in
# {'1', '?', '*'} where '1' means exactly once.
SIMPLE_ONE = "1"
SIMPLE_OPTIONAL = "?"
SIMPLE_STAR = "*"


def _combine_repeat(inner: str, outer: str) -> str:
    """Quantifier for a field nested under a repeated/optional group.

    E.g. a field occurring once inside a ``*`` group occurs ``*`` overall.
    """
    if SIMPLE_STAR in (inner, outer):
        return SIMPLE_STAR
    if SIMPLE_OPTIONAL in (inner, outer):
        return SIMPLE_OPTIONAL
    return SIMPLE_ONE


def _occurrence_to_simple(occurrence: str) -> str:
    # '+' is generalized to '*' ("be less specific"), per the paper.
    return {
        ONE: SIMPLE_ONE,
        OPTIONAL: SIMPLE_OPTIONAL,
        STAR: SIMPLE_STAR,
        PLUS: SIMPLE_STAR,
    }[occurrence]


def simplify(model: ContentModel) -> list[tuple[str, str]]:
    """Flatten *model* into ordered ``(name, quantifier)`` pairs.

    Applies the normalization rules of the inlining mapping:

    * ``(e1, e2)*  -> e1*, e2*``
    * ``(e1, e2)?  -> e1?, e2?``
    * ``(e1 | e2)  -> e1?, e2?``
    * ``e+        -> e*`` and nested quantifiers collapse (``e**`` → ``e*``)
    * repeated mentions of one name merge into a single ``*`` field

    Mixed models map every allowed name to ``*``; EMPTY/ANY/#PCDATA-only
    models have no element fields and yield ``[]``.
    """
    if model.is_empty or model.is_any or model.is_pcdata_only:
        return []
    if model.is_mixed:
        return [(name, SIMPLE_STAR) for name in model.mixed_names]
    assert model.particle is not None
    fields = _simplify_particle(model.particle, SIMPLE_ONE)
    return _merge_duplicates(fields)


def _simplify_particle(
    particle: Particle, context: str
) -> list[tuple[str, str]]:
    occ = _combine_repeat(_occurrence_to_simple(particle.occurrence), context)
    if isinstance(particle, NameParticle):
        return [(particle.name, occ)]
    if isinstance(particle, SequenceParticle):
        fields: list[tuple[str, str]] = []
        for child in particle.children:
            fields.extend(_simplify_particle(child, occ))
        return fields
    if isinstance(particle, ChoiceParticle):
        # (a | b) -> a?, b?  — each alternative becomes optional.
        inner = _combine_repeat(occ, SIMPLE_OPTIONAL)
        fields = []
        for child in particle.children:
            fields.extend(_simplify_particle(child, inner))
        return fields
    raise XmlRelError(f"unknown particle type: {type(particle).__name__}")


def fields_accept(
    fields: Sequence[tuple[str, str]], child_names: Sequence[str]
) -> bool:
    """Order-insensitive acceptance of *child_names* by simplified fields.

    The inlining mapping deliberately ignores order ("regular expressions
    ignore order in RDBMS"): a child sequence is acceptable when every name
    is a declared field, names with quantifier ``1``/``?`` occur at most
    once, and every ``1`` field occurs at least once.
    """
    quantifiers = dict(fields)
    counts: dict[str, int] = {}
    for name in child_names:
        if name not in quantifiers:
            return False
        counts[name] = counts.get(name, 0) + 1
    for name, quant in fields:
        count = counts.get(name, 0)
        if quant in (SIMPLE_ONE, SIMPLE_OPTIONAL) and count > 1:
            return False
        if quant == SIMPLE_ONE and count == 0:
            return False
    return True


def _merge_duplicates(
    fields: list[tuple[str, str]]
) -> list[tuple[str, str]]:
    """Merge repeated names: ``..., a*, ..., a* -> a*, ...`` (first position)."""
    seen: dict[str, int] = {}
    merged: list[tuple[str, str]] = []
    for name, quant in fields:
        if name in seen:
            merged[seen[name]] = (name, SIMPLE_STAR)
        else:
            seen[name] = len(merged)
            merged.append((name, quant))
    return merged
