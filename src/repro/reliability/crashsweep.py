"""Crash-sweep harness for the writable sharded store.

Proves the crash-safety claim mechanically: for every mapping scheme
and every fault-sensitive operation (subtree insert/delete, document
rebalance, replica ship, parallel corpus load), run the operation once
uninjured to count how
many statements it executes on each shard, then re-run it once per
statement boundary with a :class:`~repro.reliability.faults.
ShardFaultPolicy` crash injected exactly there.  After each crash the
harness heals the policy, runs :meth:`~repro.serve.sharded.
ShardedStore.recover`, and demands:

* every shard passes its per-scheme integrity audit **and** the
  placement audit (``store.verify_all()`` all-ok),
* the touched document is either fully rolled back or fully applied —
  its observable state matches the before- or after-image exactly,
  never a hybrid,
* a close-and-reopen of the store (recovery from the on-disk state
  alone, the real crash-restart path) also verifies clean.

Run as a CLI (the CI ``fault-matrix`` job):

.. code-block:: console

   $ python -m repro.reliability.crashsweep --json fault-matrix.json

Exit status is non-zero when any sweep point fails.  ``--stride`` can
sample every k-th boundary for a quicker sweep; coverage dropped that
way is reported, never silent.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.core.registry import available_schemes
from repro.errors import XmlRelError
from repro.reliability.faults import ShardFaultPolicy, SimulatedCrash
from repro.serve.sharded import ShardedStore
from repro.xml import parse_document, parse_fragment

#: The swept document — small enough that a sweep point is cheap, deep
#: enough that every scheme stores a non-trivial row set.  The DOCTYPE
#: feeds the inlining scheme.
SWEEP_XML = """\
<!DOCTYPE bib [
<!ELEMENT bib (book*)>
<!ELEMENT book (title, price?)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
]>
<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title></book>
</bib>
"""

FRAGMENT_XML = "<book year='2003'><title>Holistic twig joins</title></book>"

#: The corpus fed to the ``load`` sweep (the parallel streaming
#: loader): three documents, which round-robin placement spreads over
#: both shards, so the crash can land in either loader thread's
#: statement stream.
CORPUS_XMLS = tuple(
    f'<bib><book year="199{n}"><title>Corpus {n}</title></book></bib>'
    for n in range(3)
)

#: Operations swept per scheme; insert/delete only where the scheme's
#: update machinery exists.
OPERATIONS = ("insert", "delete", "rebalance", "ship", "load")


def _open_store(directory: str, scheme: str, policy: ShardFaultPolicy):
    document = parse_document(SWEEP_XML)
    kwargs = {"dtd": document.dtd} if scheme == "inlining" else {}
    store = ShardedStore.open(
        directory,
        scheme=scheme,
        shards=2,
        replicas=1,
        placement="round_robin",
        profile="bulk_load",
        pool_size=2,
        fault_policy=policy,
        **kwargs,
    )
    doc_id = store.store(document, name="sweep-doc")
    return store, doc_id


def _observe(store: ShardedStore, doc_id: int) -> str:
    """The store's observable content, as reconstructed XML.

    Every mapped document is observed (keyed by name), not just the
    sweep document — the ``load`` sweep's all-or-nothing claim is about
    which corpus documents exist at all.  Node ids are deliberately NOT
    part of the observation: a rebalance re-stores the document on its
    destination shard, and some schemes (inlining) assign fresh ids
    there — content is the invariant, ids are not.
    """
    parts = [store.reconstruct_xml(doc_id)]
    for entry in sorted(store.documents(), key=lambda e: e.name):
        parts.append(f"{entry.name}={store.reconstruct_xml(entry.doc_id)}")
    return "\n".join(parts)


def _run_operation(store: ShardedStore, doc_id: int, operation: str) -> None:
    if operation == "insert":
        root = store.query_pres(doc_id, "/bib")[0]
        store.insert_subtree(
            doc_id, root, parse_fragment(FRAGMENT_XML), index=0
        )
    elif operation == "delete":
        victim = store.query_pres(doc_id, "/bib/book")[0]
        store.delete_subtree(doc_id, victim)
    elif operation == "rebalance":
        store.rebalance(doc_id, 1 - store.resolve(doc_id).shard)
    elif operation == "ship":
        store.ship_replicas(store.resolve(doc_id).shard)
    elif operation == "load":
        store.store_corpus(
            CORPUS_XMLS,
            names=[f"corpus-{n}" for n in range(len(CORPUS_XMLS))],
        )
    else:
        raise ValueError(f"unknown sweep operation {operation!r}")


def _sweep_shards(store: ShardedStore, doc_id: int, operation: str) -> list[int]:
    """Which shards' statement streams the operation touches."""
    home = store.resolve(doc_id).shard
    if operation in ("rebalance", "load"):
        return [home, 1 - home]
    return [home]


def _measure(scheme: str, operation: str) -> tuple[dict[int, int], str]:
    """Dry-run the operation uninjured.

    Returns the statements it executed per swept shard (the sweep's
    boundary budget) and the document's after-image — the canonical
    "fully applied" content a crashed-but-committed trial must match.
    """
    policy = ShardFaultPolicy()
    with tempfile.TemporaryDirectory() as directory:
        store, doc_id = _open_store(directory, scheme, policy)
        try:
            shards = _sweep_shards(store, doc_id, operation)
            before = {s: policy.statement_count(s) for s in shards}
            _run_operation(store, doc_id, operation)
            budgets = {
                s: policy.statement_count(s) - before[s] for s in shards
            }
            return budgets, _observe(store, doc_id)
        finally:
            store.close()


def _sweep_point(
    scheme: str,
    operation: str,
    shard_role: int,
    boundary: int,
    applied_image: str,
) -> dict:
    """One trial: crash at statement *boundary* of shard *shard_role*
    (0 = the document's home shard, 1 = the other shard), recover,
    audit.  *applied_image* is the uninjured run's after-content.
    Returns a JSON-able point record; ``point["ok"]`` is the verdict."""
    point = {
        "scheme": scheme,
        "operation": operation,
        "shard_role": shard_role,
        "boundary": boundary,
        "crashed": False,
        "ok": True,
        "errors": [],
    }
    policy = ShardFaultPolicy()
    with tempfile.TemporaryDirectory() as directory:
        store, doc_id = _open_store(directory, scheme, policy)
        try:
            before_image = _observe(store, doc_id)
            target = _sweep_shards(store, doc_id, operation)[shard_role]
            policy.crash_shard(target, boundary)
            try:
                _run_operation(store, doc_id, operation)
            except SimulatedCrash:
                point["crashed"] = True
            except XmlRelError as exc:
                # A crash on one shard may surface on another statement
                # stream as a StorageError ("shard crashed"); that still
                # counts as the injected fault firing.
                point["crashed"] = True
                point["error_kind"] = type(exc).__name__
            policy.heal_all()
            report = store.recover()
            point["recovery"] = {
                "rolled_back": list(report.rolled_back),
                "rolled_forward": list(report.rolled_forward),
                "cleaned_up": list(report.cleaned_up),
                "orphans_removed": [
                    list(pair) for pair in report.orphans_removed
                ],
                "tmp_files_removed": report.tmp_files_removed,
            }
            _audit(store, point)
            # All-or-nothing: the recovered content must be exactly the
            # before-image (rolled back) or the fully-applied
            # after-image (the crash landed on post-commit maintenance,
            # e.g. ANALYZE) — never anything in between.
            observed = _observe(store, doc_id)
            if observed not in (before_image, applied_image):
                point["errors"].append(
                    f"{operation} left a partial state (matches neither "
                    f"the before- nor the applied image)"
                )
        finally:
            store.close()
        # The real crash-restart path: recover purely from disk.
        reopen_policy = ShardFaultPolicy()
        reopened, _ = _reopen(directory, scheme, reopen_policy)
        try:
            _audit(reopened, point, stage="reopen")
        finally:
            reopened.close()
    point["ok"] = not point["errors"]
    return point


def _reopen(directory: str, scheme: str, policy: ShardFaultPolicy):
    document = parse_document(SWEEP_XML)
    kwargs = {"dtd": document.dtd} if scheme == "inlining" else {}
    store = ShardedStore.open(
        directory,
        scheme=scheme,
        shards=2,
        replicas=1,
        placement="round_robin",
        profile="bulk_load",
        pool_size=2,
        fault_policy=policy,
        **kwargs,
    )
    return store, None


def _audit(store: ShardedStore, point: dict, stage: str = "post") -> None:
    for shard, reports in store.verify_all().items():
        for report in reports:
            if not report.ok:
                for issue in report.issues:
                    point["errors"].append(
                        f"[{stage}] shard {shard} doc {report.doc_id} "
                        f"{issue.check}: {issue.message}"
                    )


def sweep(
    schemes: list[str] | None = None,
    operations: list[str] | None = None,
    stride: int = 1,
    max_points: int | None = None,
) -> dict:
    """Run the full matrix; returns the JSON-able report."""
    schemes = list(schemes or available_schemes())
    operations = list(operations or OPERATIONS)
    if stride < 1:
        raise ValueError("stride must be >= 1")
    results = []
    total = failed = skipped = 0
    for scheme in schemes:
        for operation in operations:
            if operation in ("insert", "delete") and not _updatable(scheme):
                continue
            budgets, applied_image = _measure(scheme, operation)
            shards = list(budgets)
            for shard_role, shard in enumerate(shards):
                boundaries = list(range(1, budgets[shard] + 1))
                chosen = boundaries[::stride]
                if max_points is not None:
                    chosen = chosen[:max_points]
                skipped += len(boundaries) - len(chosen)
                for boundary in chosen:
                    point = _sweep_point(
                        scheme, operation, shard_role, boundary,
                        applied_image,
                    )
                    total += 1
                    if not point["ok"]:
                        failed += 1
                    results.append(point)
    return {
        "tool": "repro.reliability.crashsweep",
        "schemes": schemes,
        "operations": operations,
        "stride": stride,
        "points_run": total,
        "points_failed": failed,
        "points_skipped_by_sampling": skipped,
        "ok": failed == 0,
        "points": results,
    }


def _updatable(scheme: str) -> bool:
    return scheme in ("binary", "edge", "interval", "dewey")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Crash-sweep the writable sharded store: inject a "
        "simulated crash at every statement boundary of every "
        "fault-sensitive operation, recover, and audit."
    )
    parser.add_argument(
        "--schemes", nargs="*", default=None,
        help="mapping schemes to sweep (default: all registered)",
    )
    parser.add_argument(
        "--ops", nargs="*", default=None, choices=OPERATIONS,
        help="operations to sweep (default: all)",
    )
    parser.add_argument(
        "--stride", type=int, default=1,
        help="sample every k-th statement boundary (default: 1 = all)",
    )
    parser.add_argument(
        "--max-points", type=int, default=None,
        help="cap sweep points per (scheme, op, shard)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full report as JSON to PATH",
    )
    args = parser.parse_args(argv)
    report = sweep(
        schemes=args.schemes,
        operations=args.ops,
        stride=args.stride,
        max_points=args.max_points,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    print(
        f"crashsweep: {report['points_run']} point(s), "
        f"{report['points_failed']} failed, "
        f"{report['points_skipped_by_sampling']} skipped by sampling "
        f"({'OK' if report['ok'] else 'FAILED'})"
    )
    if not report["ok"]:
        for point in report["points"]:
            if not point["ok"]:
                print(
                    f"  FAIL {point['scheme']}/{point['operation']} "
                    f"shard-role {point['shard_role']} "
                    f"boundary {point['boundary']}:"
                )
                for error in point["errors"]:
                    print(f"    {error}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
