"""Structured integrity-audit report for stored documents.

``XmlRelStore.verify(doc_id)`` (and ``MappingScheme.verify_document``)
return an :class:`IntegrityReport`: the list of invariant checks that
ran and every violation found.  Schemes contribute their own invariants
(interval containment, Dewey prefix closure, edge connectivity, path
referential integrity, DTD-mapping consistency) on top of the generic
catalog/record checks in :class:`~repro.storage.base.MappingScheme`.

The report is data, not an exception: auditing a corrupted database
must itself never crash, so callers inspect ``report.ok`` /
``report.issues`` (or call :meth:`IntegrityReport.raise_if_failed` when
they want the exception behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError


@dataclass(frozen=True)
class IntegrityIssue:
    """One invariant violation found by the audit."""

    check: str  #: short id of the violated invariant, e.g. "interval-containment"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.message}"


@dataclass
class IntegrityReport:
    """Outcome of auditing one stored document."""

    doc_id: int
    scheme: str
    checks: list[str] = field(default_factory=list)
    issues: list[IntegrityIssue] = field(default_factory=list)
    #: Which shard of a sharded store the audit ran on (None for
    #: single-file stores); set by ``ShardedStore.verify`` so per-shard
    #: results stay attributable after aggregation.
    shard: int | None = None

    @property
    def ok(self) -> bool:
        return not self.issues

    def ran(self, check: str) -> None:
        """Record that invariant *check* was evaluated."""
        if check not in self.checks:
            self.checks.append(check)

    def add(self, check: str, message: str) -> None:
        """Record a violation of invariant *check*."""
        self.ran(check)
        self.issues.append(IntegrityIssue(check, message))

    def failed(self, check: str) -> bool:
        """True when *check* recorded at least one violation."""
        return any(issue.check == check for issue in self.issues)

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.StorageError` unless ``ok``."""
        if self.issues:
            summary = "; ".join(str(issue) for issue in self.issues[:5])
            more = len(self.issues) - 5
            if more > 0:
                summary += f" (+{more} more)"
            raise StorageError(
                f"integrity audit of document {self.doc_id} "
                f"({self.scheme}) failed: {summary}"
            )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        state = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        where = f" shard {self.shard}" if self.shard is not None else ""
        return (
            f"doc {self.doc_id} [{self.scheme}]{where}: {state} "
            f"({len(self.checks)} checks)"
        )
