"""Fault-injecting database double for crash-atomicity testing.

:class:`FaultInjectingDatabase` is a drop-in
:class:`~repro.relational.database.Database` whose statement hook can

* fail the Nth data statement with an arbitrary error
  (:meth:`fail_on`),
* raise synthetic ``SQLITE_BUSY`` errors for the next K attempts
  (:meth:`busy_next`) — exercising the retry policy without needing a
  second contending connection,
* simulate a crash mid-transaction (:meth:`crash_on`): uncommitted work
  is discarded (what sqlite's journal recovery would do on restart) and
  the connection refuses further statements until :meth:`recover`.

Only *data* statements pass through the hook; transaction control
(BEGIN/COMMIT/ROLLBACK/SAVEPOINT) is never faulted, so a fault always
lands inside a well-defined transactional scope — exactly the situation
rollback must survive.  Statements are numbered from 1 in arrival
order; an ``executemany`` batch counts as one statement.

For the concurrent serving layer (:mod:`repro.serve`) there is also a
:class:`ShardFaultPolicy`: a thread-safe switchboard that marks whole
*shards* as failed, stalled, or crashed (a statement-counted
:meth:`~ShardFaultPolicy.crash_shard`, the sharded twin of
:meth:`~FaultInjectingDatabase.crash_on`).  Its
:meth:`~ShardFaultPolicy.factory`
builds the per-shard database factories the serving pools accept, so a
test can take shard 2 down (or make it slow) mid-run and watch
scatter-gather degrade — partial results, deadline misses — instead of
crashing.
"""

from __future__ import annotations

import re
import sqlite3
import threading
import time
from collections.abc import Sequence

from repro.errors import StorageError, XmlRelError
from repro.relational.database import Database


class FaultInjected(XmlRelError):
    """The error raised by a scheduled statement failure (default)."""


class SimulatedCrash(Exception):
    """Raised by a scheduled crash.

    Deliberately *not* an :class:`~repro.errors.XmlRelError`: a real
    crash is not a library error callers could handle mid-flight, and
    keeping it outside the hierarchy ensures no library ``except``
    clause accidentally swallows it.
    """


def synthetic_busy() -> sqlite3.OperationalError:
    """A busy error indistinguishable (by message) from the real one."""
    return sqlite3.OperationalError("database is locked")


class FaultInjectingDatabase(Database):
    """A database that fails on cue."""

    def __init__(self, path: str = ":memory:", **kwargs) -> None:
        super().__init__(path, **kwargs)
        self.statements_seen = 0
        self.statement_log: list[str] = []
        self._fail_at: dict[int, BaseException] = {}
        self._busy_remaining = 0
        self._busy_pattern: re.Pattern | None = None
        self._crash_at: int | None = None
        self._crashed = False

    # -- fault scheduling ---------------------------------------------------------

    def fail_on(self, n: int, error: BaseException | None = None) -> None:
        """Fail the *n*-th upcoming data statement (counted from the
        current position) with *error* (default :class:`FaultInjected`)."""
        self._fail_at[self.statements_seen + n] = (
            error
            if error is not None
            else FaultInjected(f"injected failure at statement {n}")
        )

    def busy_next(self, times: int, pattern: str | None = None) -> None:
        """Raise synthetic busy errors for the next *times* attempts of
        statements matching *pattern* (default: every statement)."""
        self._busy_remaining = times
        self._busy_pattern = re.compile(pattern) if pattern else None

    def crash_on(self, n: int) -> None:
        """Simulate a crash at the *n*-th upcoming data statement:
        discard uncommitted work and refuse service until
        :meth:`recover`."""
        self._crash_at = self.statements_seen + n

    def reset_faults(self) -> None:
        """Clear every scheduled fault (the counter keeps running)."""
        self._fail_at.clear()
        self._busy_remaining = 0
        self._busy_pattern = None
        self._crash_at = None

    def recover(self) -> None:
        """Bring a crashed connection back (sqlite's journal recovery
        already happened: the rollback ran at crash time)."""
        self._crashed = False
        self._crash_at = None

    # -- the hook ------------------------------------------------------------------

    def _count_fault(self, kind: str) -> None:
        """Feed the injected fault into the observability metrics, so a
        traced chaos run reports how many faults it actually suffered."""
        if self.tracer.enabled:
            self.tracer.metrics.counter("faults.injected").inc()
            self.tracer.metrics.counter(f"faults.{kind}").inc()

    def _before_statement(self, sql: str) -> None:
        if self._crashed:
            raise StorageError(
                "database connection crashed (simulated); call recover()"
            )
        if self._busy_remaining > 0 and (
            self._busy_pattern is None or self._busy_pattern.search(sql)
        ):
            self._busy_remaining -= 1
            self._count_fault("busy")
            raise synthetic_busy()
        self.statements_seen += 1
        self.statement_log.append(sql)
        n = self.statements_seen
        if self._crash_at is not None and n >= self._crash_at:
            self._crashed = True
            self._crash_at = None
            if self._conn.in_transaction:
                # What journal recovery does on the next open: the
                # uncommitted transaction never happened.
                self._conn.execute("ROLLBACK")
            self._count_fault("crash")
            raise SimulatedCrash(f"simulated crash at statement {n}")
        error = self._fail_at.pop(n, None)
        if error is not None:
            self._count_fault("error")
            raise error

    def _raw_execute(self, sql: str, params: Sequence = ()):
        self._before_statement(sql)
        return super()._raw_execute(sql, params)

    def _raw_executemany(self, sql: str, rows) -> None:
        self._before_statement(sql)
        super()._raw_executemany(sql, rows)


class ShardFaultPolicy:
    """Thread-safe per-shard fault switchboard for the serving layer.

    A policy instance is shared between a test and the serving stack:
    the test flips shards down/slow, the shard's pooled connections
    (built through :meth:`factory`) consult the policy before *every*
    data statement.  Because the check happens at statement time — not
    connection-build time — a shard can fail or heal while its pool is
    already warm, which is exactly the mid-flight degradation
    scatter-gather must survive.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._failed: dict[int, BaseException] = {}
        self._stalls: dict[int, float] = {}
        self._statements: dict[int, int] = {}
        self._crash_at: dict[int, int] = {}
        self._crashed: set[int] = set()
        #: Statements that were refused, per shard (observability for
        #: degraded-mode tests).
        self.faults_served: dict[int, int] = {}

    # -- scheduling ---------------------------------------------------------------

    def fail_shard(self, shard: int, error: BaseException | None = None) -> None:
        """Fail every statement against *shard* until :meth:`heal_shard`."""
        with self._lock:
            self._failed[shard] = (
                error
                if error is not None
                else FaultInjected(f"shard {shard} is down (injected)")
            )

    def stall_shard(self, shard: int, seconds: float) -> None:
        """Delay every statement against *shard* by *seconds* (a slow
        shard rather than a dead one — the deadline-miss ingredient)."""
        with self._lock:
            self._stalls[shard] = seconds

    def crash_shard(self, shard: int, n: int = 1) -> None:
        """Simulate a crash at the *n*-th upcoming data statement
        against *shard* (counted from the current position), mirroring
        :meth:`FaultInjectingDatabase.crash_on`: the triggering
        statement raises :class:`SimulatedCrash`, the crashing
        connection discards uncommitted work, and every later statement
        is refused until :meth:`heal_shard`."""
        with self._lock:
            self._crash_at[shard] = self._statements.get(shard, 0) + n

    def heal_shard(self, shard: int) -> None:
        """Clear all faults scheduled for *shard* (including a crash —
        the statement counter keeps running)."""
        with self._lock:
            self._failed.pop(shard, None)
            self._stalls.pop(shard, None)
            self._crash_at.pop(shard, None)
            self._crashed.discard(shard)

    def heal_all(self) -> None:
        with self._lock:
            self._failed.clear()
            self._stalls.clear()
            self._crash_at.clear()
            self._crashed.clear()

    def statement_count(self, shard: int) -> int:
        """Data statements seen against *shard* so far.  Crash sweeps
        dry-run an operation, read the delta here, then schedule a
        crash at each boundary in turn."""
        with self._lock:
            return self._statements.get(shard, 0)

    # -- the statement-time check --------------------------------------------------

    def check(self, shard: int) -> None:
        """Apply the scheduled fault for *shard* (called per statement)."""
        crash = False
        with self._lock:
            if shard in self._crashed:
                self.faults_served[shard] = (
                    self.faults_served.get(shard, 0) + 1
                )
                refused: BaseException | None = StorageError(
                    f"shard {shard} crashed (simulated); "
                    f"heal_shard() to restart it"
                )
                stall = None
                error = None
            else:
                refused = None
                count = self._statements.get(shard, 0) + 1
                self._statements[shard] = count
                crash_at = self._crash_at.get(shard)
                if crash_at is not None and count >= crash_at:
                    self._crashed.add(shard)
                    del self._crash_at[shard]
                    crash = True
                stall = self._stalls.get(shard)
                error = self._failed.get(shard)
                if crash or error is not None:
                    self.faults_served[shard] = (
                        self.faults_served.get(shard, 0) + 1
                    )
        if refused is not None:
            raise refused
        if crash:
            raise SimulatedCrash(f"simulated crash on shard {shard}")
        if stall:
            time.sleep(stall)
        if error is not None:
            raise error

    def factory(self, shard: int):
        """A database factory for *shard*'s pool: builds
        :class:`_PolicyFaultDatabase` connections wired back to this
        policy (signature matches what
        :class:`repro.serve.ConnectionPool` expects)."""

        def build(path: str, **kwargs) -> Database:
            return _PolicyFaultDatabase(path, self, shard, **kwargs)

        return build


class _PolicyFaultDatabase(Database):
    """A database whose statements consult a :class:`ShardFaultPolicy`.

    Unlike :class:`FaultInjectingDatabase` (statement-counted, one
    connection), the fault source here is *external and shared*: every
    connection of a shard degrades together, at the moment the policy
    flips, which is what "shard 2 is down" means to scatter-gather.
    """

    def __init__(
        self, path: str, policy: ShardFaultPolicy, shard: int, **kwargs
    ) -> None:
        super().__init__(path, **kwargs)
        self._policy = policy
        self._shard = shard

    def _consult(self) -> None:
        try:
            self._policy.check(self._shard)
        except SimulatedCrash:
            if self._conn.in_transaction:
                # What journal recovery does on the next open: the
                # uncommitted transaction never happened.
                self._conn.execute("ROLLBACK")
            raise

    def _raw_execute(self, sql: str, params: Sequence = ()):
        self._consult()
        return super()._raw_execute(sql, params)

    def _raw_executemany(self, sql: str, rows) -> None:
        self._consult()
        super()._raw_executemany(sql, rows)
