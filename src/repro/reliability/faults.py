"""Fault-injecting database double for crash-atomicity testing.

:class:`FaultInjectingDatabase` is a drop-in
:class:`~repro.relational.database.Database` whose statement hook can

* fail the Nth data statement with an arbitrary error
  (:meth:`fail_on`),
* raise synthetic ``SQLITE_BUSY`` errors for the next K attempts
  (:meth:`busy_next`) — exercising the retry policy without needing a
  second contending connection,
* simulate a crash mid-transaction (:meth:`crash_on`): uncommitted work
  is discarded (what sqlite's journal recovery would do on restart) and
  the connection refuses further statements until :meth:`recover`.

Only *data* statements pass through the hook; transaction control
(BEGIN/COMMIT/ROLLBACK/SAVEPOINT) is never faulted, so a fault always
lands inside a well-defined transactional scope — exactly the situation
rollback must survive.  Statements are numbered from 1 in arrival
order; an ``executemany`` batch counts as one statement.
"""

from __future__ import annotations

import re
import sqlite3
from collections.abc import Sequence

from repro.errors import StorageError, XmlRelError
from repro.relational.database import Database


class FaultInjected(XmlRelError):
    """The error raised by a scheduled statement failure (default)."""


class SimulatedCrash(Exception):
    """Raised by a scheduled crash.

    Deliberately *not* an :class:`~repro.errors.XmlRelError`: a real
    crash is not a library error callers could handle mid-flight, and
    keeping it outside the hierarchy ensures no library ``except``
    clause accidentally swallows it.
    """


def synthetic_busy() -> sqlite3.OperationalError:
    """A busy error indistinguishable (by message) from the real one."""
    return sqlite3.OperationalError("database is locked")


class FaultInjectingDatabase(Database):
    """A database that fails on cue."""

    def __init__(self, path: str = ":memory:", **kwargs) -> None:
        super().__init__(path, **kwargs)
        self.statements_seen = 0
        self.statement_log: list[str] = []
        self._fail_at: dict[int, BaseException] = {}
        self._busy_remaining = 0
        self._busy_pattern: re.Pattern | None = None
        self._crash_at: int | None = None
        self._crashed = False

    # -- fault scheduling ---------------------------------------------------------

    def fail_on(self, n: int, error: BaseException | None = None) -> None:
        """Fail the *n*-th upcoming data statement (counted from the
        current position) with *error* (default :class:`FaultInjected`)."""
        self._fail_at[self.statements_seen + n] = (
            error
            if error is not None
            else FaultInjected(f"injected failure at statement {n}")
        )

    def busy_next(self, times: int, pattern: str | None = None) -> None:
        """Raise synthetic busy errors for the next *times* attempts of
        statements matching *pattern* (default: every statement)."""
        self._busy_remaining = times
        self._busy_pattern = re.compile(pattern) if pattern else None

    def crash_on(self, n: int) -> None:
        """Simulate a crash at the *n*-th upcoming data statement:
        discard uncommitted work and refuse service until
        :meth:`recover`."""
        self._crash_at = self.statements_seen + n

    def reset_faults(self) -> None:
        """Clear every scheduled fault (the counter keeps running)."""
        self._fail_at.clear()
        self._busy_remaining = 0
        self._busy_pattern = None
        self._crash_at = None

    def recover(self) -> None:
        """Bring a crashed connection back (sqlite's journal recovery
        already happened: the rollback ran at crash time)."""
        self._crashed = False
        self._crash_at = None

    # -- the hook ------------------------------------------------------------------

    def _count_fault(self, kind: str) -> None:
        """Feed the injected fault into the observability metrics, so a
        traced chaos run reports how many faults it actually suffered."""
        if self.tracer.enabled:
            self.tracer.metrics.counter("faults.injected").inc()
            self.tracer.metrics.counter(f"faults.{kind}").inc()

    def _before_statement(self, sql: str) -> None:
        if self._crashed:
            raise StorageError(
                "database connection crashed (simulated); call recover()"
            )
        if self._busy_remaining > 0 and (
            self._busy_pattern is None or self._busy_pattern.search(sql)
        ):
            self._busy_remaining -= 1
            self._count_fault("busy")
            raise synthetic_busy()
        self.statements_seen += 1
        self.statement_log.append(sql)
        n = self.statements_seen
        if self._crash_at is not None and n >= self._crash_at:
            self._crashed = True
            self._crash_at = None
            if self._conn.in_transaction:
                # What journal recovery does on the next open: the
                # uncommitted transaction never happened.
                self._conn.execute("ROLLBACK")
            self._count_fault("crash")
            raise SimulatedCrash(f"simulated crash at statement {n}")
        error = self._fail_at.pop(n, None)
        if error is not None:
            self._count_fault("error")
            raise error

    def _raw_execute(self, sql: str, params: Sequence = ()):
        self._before_statement(sql)
        return super()._raw_execute(sql, params)

    def _raw_executemany(self, sql: str, rows) -> None:
        self._before_statement(sql)
        super()._raw_executemany(sql, rows)
