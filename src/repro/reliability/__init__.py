"""Reliability layer: fault injection and integrity auditing.

Two halves:

* :mod:`repro.reliability.faults` — a :class:`FaultInjectingDatabase`
  test double that can fail the Nth statement, synthesize
  ``SQLITE_BUSY`` storms, or simulate a crash mid-transaction.  The
  crash-atomicity test suite uses it to prove that ``store``/``delete``
  and every update primitive are all-or-nothing for every scheme.
* :mod:`repro.reliability.audit` — the structured
  :class:`IntegrityReport` returned by ``XmlRelStore.verify``: the
  shredded-XML analogue of ``PRAGMA integrity_check``, with per-scheme
  invariants (interval well-nestedness, Dewey prefix closure, edge
  connectivity, path-table referential integrity, ...).
"""

from repro.reliability.audit import IntegrityIssue, IntegrityReport
from repro.reliability.faults import (
    FaultInjected,
    FaultInjectingDatabase,
    ShardFaultPolicy,
    SimulatedCrash,
)

__all__ = [
    "FaultInjected",
    "FaultInjectingDatabase",
    "IntegrityIssue",
    "IntegrityReport",
    "ShardFaultPolicy",
    "SimulatedCrash",
]
