"""Cardinality estimation of XPath queries over a path summary.

Structure-only queries (child/descendant steps, name tests) are estimated
*exactly* — the summary enumerates every occurring path, so the answer is
a sum of per-path counts.  Predicates multiply in per-predicate
selectivity factors:

* ``[path]`` existence      — min(1, child count / parent count)
* ``[path = 'v']``          — 1 / distinct values of the target path
* ``[path op number]``      — uniform-range fraction over [min, max]
* ``[contains(...)]``        — the classic 10% guess
* ``and``/``or``/``not``     — independence-assumption algebra
* positional ``[n]``         — min(1, parent count / count)

Experiment E10 reports estimated vs. actual cardinality per query class.
"""

from __future__ import annotations

from repro.errors import UnsupportedQueryError
from repro.query.plan import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_SELF,
    BooleanPredicate,
    ComparisonPredicate,
    ExistsPredicate,
    NotPredicate,
    PathPlan,
    PositionPredicate,
    PredicatePlan,
    StringMatchPredicate,
    ValuePath,
    plan_path,
)
from repro.stats.pathsummary import PathStatistics, PathSummary
from repro.xpath.ast import NameTest, KindTest

CONTAINS_SELECTIVITY = 0.1


def estimate_cardinality(summary: PathSummary, xpath: str) -> float:
    """Estimated number of nodes *xpath* selects."""
    plan = plan_path(xpath, scheme="estimator")
    steps = _step_patterns(plan)
    total = 0.0
    for statistics in summary.matching(steps):
        selectivity = 1.0
        # Predicates apply at the step whose depth they sit at; map each
        # plan step to its position in the matched path.
        positions = _step_positions(steps, statistics.path)
        if positions is None:
            continue
        for step, position in zip(plan.steps, positions):
            prefix = statistics.path[: position + 1]
            step_statistics = summary.get(prefix)
            if step_statistics is None:
                selectivity = 0.0
                break
            for predicate in step.predicates:
                selectivity *= _predicate_selectivity(
                    summary, step_statistics, predicate
                )
        total += statistics.count * selectivity
    return total


def _step_patterns(plan: PathPlan) -> list[tuple[str, bool]]:
    patterns: list[tuple[str, bool]] = []
    for step in plan.steps:
        if step.axis == AXIS_CHILD:
            if isinstance(step.test, NameTest):
                label = "*" if step.test.is_wildcard else step.test.name
            elif isinstance(step.test, KindTest) and step.test.kind == "text":
                label = "#text"
            else:
                raise UnsupportedQueryError(
                    f"estimation of node test {step.test}", "estimator"
                )
        elif step.axis == AXIS_ATTRIBUTE:
            if not isinstance(step.test, NameTest):
                raise UnsupportedQueryError(
                    "estimation of non-name attribute tests", "estimator"
                )
            label = "@*" if step.test.is_wildcard else f"@{step.test.name}"
        else:
            raise UnsupportedQueryError(
                f"estimation of axis {step.axis}", "estimator"
            )
        patterns.append((label, step.from_descendant))
    return patterns


def _step_positions(
    steps: list[tuple[str, bool]], path: tuple[str, ...]
) -> list[int] | None:
    """Positions in *path* each step matched at (first viable match)."""

    def solve(step_index: int, path_index: int) -> list[int] | None:
        if step_index == len(steps):
            return [] if path_index == len(path) else None
        label, from_descendant = steps[step_index]
        candidates = (
            range(path_index, len(path)) if from_descendant
            else [path_index]
        )
        for position in candidates:
            if position >= len(path):
                return None
            at_position = path[position]
            if label == "*":
                if at_position.startswith(("@", "#")):
                    continue
            elif label == "@*":
                if not at_position.startswith("@"):
                    continue
            elif at_position != label:
                continue
            rest = solve(step_index + 1, position + 1)
            if rest is not None:
                return [position] + rest
        return None

    return solve(0, 0)


def _predicate_selectivity(
    summary: PathSummary,
    context: PathStatistics,
    predicate: PredicatePlan,
) -> float:
    if isinstance(predicate, BooleanPredicate):
        factors = [
            _predicate_selectivity(summary, context, p)
            for p in predicate.operands
        ]
        if predicate.op == "and":
            product = 1.0
            for factor in factors:
                product *= factor
            return product
        # or: inclusion-exclusion under independence.
        complement = 1.0
        for factor in factors:
            complement *= 1.0 - factor
        return 1.0 - complement
    if isinstance(predicate, NotPredicate):
        return 1.0 - _predicate_selectivity(
            summary, context, predicate.operand
        )
    if isinstance(predicate, PositionPredicate):
        if not context.count:
            return 0.0
        return min(1.0, context.parent_count / context.count)
    if isinstance(predicate, ExistsPredicate):
        target = _target_statistics(summary, context, predicate.path)
        if target is None or not context.count:
            return 0.0
        return min(1.0, target.count / context.count)
    if isinstance(predicate, StringMatchPredicate):
        target = _target_statistics(summary, context, predicate.path)
        if target is None:
            return 0.0
        return CONTAINS_SELECTIVITY
    if isinstance(predicate, ComparisonPredicate):
        target = _target_statistics(summary, context, predicate.path)
        if target is None or not context.count:
            return 0.0
        exists = min(1.0, target.count / context.count)
        if predicate.numeric and predicate.op not in ("=", "!="):
            return exists * target.range_selectivity(
                predicate.op, float(predicate.literal)
            )
        if predicate.op == "!=":
            return exists * (1.0 - target.equality_selectivity())
        return exists * target.equality_selectivity()
    raise UnsupportedQueryError(
        f"estimation of predicate {type(predicate).__name__}", "estimator"
    )


def _target_statistics(
    summary: PathSummary,
    context: PathStatistics,
    value_path: ValuePath,
) -> PathStatistics | None:
    path = context.path + tuple(value_path.element_names)
    if value_path.target == "attribute":
        path = path + (f"@{value_path.target_name}",)
    elif value_path.target == "text":
        path = path + ("#text",)
    elif not value_path.element_names:
        # Comparison against the context node's own content.
        return context
    return summary.get(path)
