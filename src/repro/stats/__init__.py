"""Statistics: path summaries and cardinality estimation.

The tutorial's optimizer discussion leans on per-path statistics
(DataGuides, Markov tables, StatiX).  This subpackage implements the
foundational variant — an exhaustive path summary with per-path value
statistics — and the estimator experiment E10 evaluates against actual
result sizes.
"""

from repro.stats.pathsummary import PathStatistics, PathSummary, build_summary
from repro.stats.estimate import estimate_cardinality

__all__ = [
    "PathStatistics",
    "PathSummary",
    "build_summary",
    "estimate_cardinality",
]
