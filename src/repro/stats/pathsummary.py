"""DataGuide-style path summary with value statistics.

One traversal of a document produces, per distinct root-to-node *label
path* (elements as their tag, attributes as ``@name``, text as
``#text``):

* ``count`` — number of instances,
* ``parent_count`` — instances of the parent path (for fanout ratios),
* value statistics over the instances' *text-only content* (elements) or
  values (attributes/text): distinct count, numeric min/max and the
  numeric fraction.

The summary is exact for structure (it enumerates every occurring path)
and approximate for values — exactly the split the estimation experiment
E10 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xml.dom import (
    Attribute,
    Document,
    Element,
    Node,
    Text,
)

PATH_SEPARATOR = "/"


@dataclass
class PathStatistics:
    """Statistics of one distinct label path."""

    path: tuple[str, ...]
    count: int = 0
    parent_count: int = 0
    values: set = field(default_factory=set, repr=False)
    numeric_count: int = 0
    numeric_min: float | None = None
    numeric_max: float | None = None

    @property
    def label(self) -> str:
        return self.path[-1]

    @property
    def distinct_values(self) -> int:
        return len(self.values)

    @property
    def numeric_fraction(self) -> float:
        return self.numeric_count / self.count if self.count else 0.0

    def record_value(self, value: str | None) -> None:
        if value is None:
            return
        self.values.add(value)
        try:
            number = float(value.strip())
        except ValueError:
            return
        self.numeric_count += 1
        if self.numeric_min is None or number < self.numeric_min:
            self.numeric_min = number
        if self.numeric_max is None or number > self.numeric_max:
            self.numeric_max = number

    def equality_selectivity(self) -> float:
        """Fraction of instances expected to match ``= literal``."""
        if not self.count or not self.distinct_values:
            return 0.0
        return 1.0 / self.distinct_values

    def range_selectivity(self, op: str, literal: float) -> float:
        """Fraction matching a numeric range predicate, assuming a
        uniform distribution over [min, max]."""
        if (
            self.numeric_min is None
            or self.numeric_max is None
            or not self.count
        ):
            return 0.0
        lo, hi = self.numeric_min, self.numeric_max
        width = hi - lo
        numeric_share = self.numeric_fraction
        if width <= 0:
            matches = _point_matches(op, lo, literal)
            return numeric_share if matches else 0.0
        if op in ("<", "<="):
            fraction = (literal - lo) / width
        elif op in (">", ">="):
            fraction = (hi - literal) / width
        else:  # '=' / '!=' on numbers
            fraction = 1.0 / max(self.distinct_values, 1)
            if op == "!=":
                fraction = 1.0 - fraction
        return numeric_share * min(max(fraction, 0.0), 1.0)


def _point_matches(op: str, value: float, literal: float) -> bool:
    if op == "<":
        return value < literal
    if op == "<=":
        return value <= literal
    if op == ">":
        return value > literal
    if op == ">=":
        return value >= literal
    if op == "=":
        return value == literal
    return value != literal


@dataclass
class PathSummary:
    """All path statistics of one document."""

    paths: dict[tuple[str, ...], PathStatistics] = field(
        default_factory=dict
    )
    total_nodes: int = 0

    def get(self, path: tuple[str, ...]) -> PathStatistics | None:
        return self.paths.get(path)

    def matching(
        self, steps: list[tuple[str, bool]]
    ) -> list[PathStatistics]:
        """Paths matching a step pattern.

        *steps* is a list of ``(label, from_descendant)`` pairs; labels
        are matched exactly, a descendant flag allows any gap before the
        label (``'*'`` matches any label).
        """
        return [
            statistics
            for path, statistics in self.paths.items()
            if _pattern_matches(steps, path)
        ]

    def child_paths(
        self, parent: tuple[str, ...]
    ) -> list[PathStatistics]:
        return [
            s for p, s in self.paths.items()
            if len(p) == len(parent) + 1 and p[:len(parent)] == parent
        ]

    @property
    def path_count(self) -> int:
        return len(self.paths)


def _pattern_matches(
    steps: list[tuple[str, bool]], path: tuple[str, ...]
) -> bool:
    """Greedy-with-backtracking match of a step pattern against a path."""

    def match_from(step_index: int, path_index: int) -> bool:
        if step_index == len(steps):
            return path_index == len(path)
        label, from_descendant = steps[step_index]
        positions = (
            range(path_index, len(path)) if from_descendant
            else [path_index]
        )
        for position in positions:
            if position >= len(path):
                return False
            at_position = path[position]
            if label == "*":
                # The element wildcard never matches attribute/text labels.
                if at_position.startswith(("@", "#")):
                    continue
            elif label == "@*":
                if not at_position.startswith("@"):
                    continue
            elif at_position != label:
                continue
            if match_from(step_index + 1, position + 1):
                return True
        return False

    return match_from(0, 0)


def build_summary(document: Document) -> PathSummary:
    """Build the path summary of *document* in one traversal."""
    summary = PathSummary()

    def statistics_for(path: tuple[str, ...]) -> PathStatistics:
        if path not in summary.paths:
            summary.paths[path] = PathStatistics(path=path)
        return summary.paths[path]

    def visit(node: Node, parent_path: tuple[str, ...], parent_count_path):
        if isinstance(node, Element):
            label = node.tag
        elif isinstance(node, Attribute):
            label = f"@{node.name}"
        elif isinstance(node, Text):
            label = "#text"
        else:
            return  # comments/PIs carry no estimation-relevant stats
        path = parent_path + (label,)
        statistics = statistics_for(path)
        statistics.count += 1
        summary.total_nodes += 1
        if isinstance(node, Element):
            kids = [c for c in node.children]
            texts = [c for c in kids if isinstance(c, Text)]
            if kids and all(isinstance(c, Text) for c in kids):
                statistics.record_value("".join(t.data for t in texts))
            for attribute in node.attributes:
                visit(attribute, path, statistics.count)
            for child in kids:
                visit(child, path, statistics.count)
        else:
            statistics.record_value(node.string_value)

    for child in document.children:
        visit(child, (), 1)
    # Fill parent counts in a second pass (cheap dictionary lookups).
    for path, statistics in summary.paths.items():
        if len(path) == 1:
            statistics.parent_count = 1
        else:
            parent = summary.paths.get(path[:-1])
            statistics.parent_count = parent.count if parent else 1
    return summary
