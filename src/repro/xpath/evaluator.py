"""In-memory reference evaluator for the XPath subset.

This evaluator implements XPath 1.0 semantics over the tree model and is
the *ground truth* for differential testing: every relational scheme's
SQL-translated answer is compared against it.

Value space (XPath 1.0): node-set (a Python list of nodes, kept in
document order without duplicates), boolean, number (float; NaN allowed)
and string.  The core function library subset implemented is listed in
:data:`FUNCTIONS`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Iterator

from repro.errors import XPathEvaluationError
from repro.xml.dom import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
    _Container,
)
from repro.xpath.ast import (
    AnyKindTest,
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    NameTest,
    Negate,
    NodeTest,
    NumberLiteral,
    KindTest,
    Step,
    StringLiteral,
)
from repro.xpath.parser import parse_xpath

XPathValue = list  # node-set
# Full value union: list[Node] | bool | float | str

_REVERSE_AXES = frozenset(
    {"ancestor", "ancestor-or-self", "parent", "preceding",
     "preceding-sibling"}
)


def evaluate(context: Node, expr: Expr | str):
    """Evaluate *expr* with *context* as the context node.

    Returns a node-set (list), boolean, float, or string.
    """
    if isinstance(expr, str):
        expr = parse_xpath(expr)
    return _Evaluator().evaluate(expr, _Context(context, 1, 1))


def evaluate_nodes(context: Node, expr: Expr | str) -> list[Node]:
    """Evaluate *expr*, requiring a node-set result (in document order)."""
    result = evaluate(context, expr)
    if not isinstance(result, list):
        raise XPathEvaluationError(
            f"expression did not yield a node-set: {expr}"
        )
    return result


class _Context:
    __slots__ = ("node", "position", "size")

    def __init__(self, node: Node, position: int, size: int) -> None:
        self.node = node
        self.position = position
        self.size = size


# ---------------------------------------------------------------------------
# Type conversions (XPath 1.0 section 3.2 function semantics)
# ---------------------------------------------------------------------------


def xpath_string(value) -> str:
    """The ``string()`` conversion."""
    if isinstance(value, list):
        return value[0].string_value if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    return value


def format_number(value: float) -> str:
    """Format per XPath: integers without a decimal point, NaN as 'NaN'."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value):
        return str(int(value))
    return repr(value)


def xpath_number(value) -> float:
    """The ``number()`` conversion (NaN on non-numeric strings)."""
    if isinstance(value, list):
        return xpath_number(xpath_string(value))
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    try:
        return float(value.strip())
    except (ValueError, AttributeError):
        return math.nan


def xpath_boolean(value) -> bool:
    """The ``boolean()`` conversion."""
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return bool(value) and not math.isnan(value)
    return bool(value)


# ---------------------------------------------------------------------------
# The evaluator proper
# ---------------------------------------------------------------------------


class _Evaluator:
    def evaluate(self, expr: Expr, context: _Context):
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, Negate):
            return -xpath_number(self.evaluate(expr.operand, context))
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr, context)
        if isinstance(expr, FunctionCall):
            return self._evaluate_function(expr, context)
        if isinstance(expr, LocationPath):
            return self._evaluate_path(expr, context)
        if isinstance(expr, FilterExpr):
            return self._evaluate_filter(expr, context)
        raise XPathEvaluationError(
            f"cannot evaluate expression type {type(expr).__name__}"
        )

    # -- binary operators -------------------------------------------------------

    def _evaluate_binary(self, expr: BinaryOp, context: _Context):
        op = expr.op
        if op == "or":
            return xpath_boolean(
                self.evaluate(expr.left, context)
            ) or xpath_boolean(self.evaluate(expr.right, context))
        if op == "and":
            return xpath_boolean(
                self.evaluate(expr.left, context)
            ) and xpath_boolean(self.evaluate(expr.right, context))
        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)
        if op in ("=", "!="):
            return _compare_equality(left, right, op)
        if op in ("<", "<=", ">", ">="):
            return _compare_relational(left, right, op)
        if op == "|":
            if not isinstance(left, list) or not isinstance(right, list):
                raise XPathEvaluationError("'|' requires node-set operands")
            return _document_order_union(left + right)
        left_num = xpath_number(left)
        right_num = xpath_number(right)
        if op == "+":
            return left_num + right_num
        if op == "-":
            return left_num - right_num
        if op == "*":
            return left_num * right_num
        if op == "div":
            if right_num == 0:
                if left_num == 0 or math.isnan(left_num):
                    return math.nan
                return math.inf if left_num > 0 else -math.inf
            return left_num / right_num
        if op == "mod":
            if right_num == 0:
                return math.nan
            return math.fmod(left_num, right_num)
        raise XPathEvaluationError(f"unknown operator {op!r}")

    # -- functions ---------------------------------------------------------------

    def _evaluate_function(self, expr: FunctionCall, context: _Context):
        handler = FUNCTIONS.get(expr.name)
        if handler is None:
            raise XPathEvaluationError(f"unknown function {expr.name}()")
        args = [self.evaluate(arg, context) for arg in expr.args]
        return handler(context, args)

    # -- location paths -----------------------------------------------------------

    def _evaluate_path(
        self, path: LocationPath, context: _Context
    ) -> list[Node]:
        if path.absolute:
            document = context.node.document
            if document is None:
                document = context.node.root
            current: list[Node] = [document]
        else:
            current = [context.node]
        return self._apply_steps(path.steps, current)

    def _apply_steps(
        self, steps: Iterable[Step], current: list[Node]
    ) -> list[Node]:
        for step in steps:
            gathered: list[Node] = []
            for node in current:
                gathered.extend(self._apply_step(step, node))
            current = _document_order_union(gathered)
        return current

    def _apply_step(self, step: Step, node: Node) -> list[Node]:
        candidates = [
            n for n in _axis_nodes(step.axis, node)
            if _matches_test(step.test, n, step.axis)
        ]
        for predicate in step.predicates:
            size = len(candidates)
            kept = []
            for position, candidate in enumerate(candidates, start=1):
                value = self.evaluate(
                    predicate, _Context(candidate, position, size)
                )
                if isinstance(value, float):
                    if value == position:
                        kept.append(candidate)
                elif xpath_boolean(value):
                    kept.append(candidate)
            candidates = kept
        return candidates

    def _evaluate_filter(self, expr: FilterExpr, context: _Context):
        primary = self.evaluate(expr.primary, context)
        if expr.predicates or expr.steps:
            if not isinstance(primary, list):
                raise XPathEvaluationError(
                    "predicates/steps require a node-set primary"
                )
        nodes = primary
        for predicate in expr.predicates:
            size = len(nodes)
            kept = []
            for position, candidate in enumerate(nodes, start=1):
                value = self.evaluate(
                    predicate, _Context(candidate, position, size)
                )
                if isinstance(value, float):
                    if value == position:
                        kept.append(candidate)
                elif xpath_boolean(value):
                    kept.append(candidate)
            nodes = kept
        if expr.steps:
            nodes = self._apply_steps(expr.steps, nodes)
        return nodes


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------


def _axis_nodes(axis: str, node: Node) -> Iterator[Node]:
    """Yield the nodes on *axis* from *node*, in axis order.

    Axis order is document order for forward axes and reverse document
    order for reverse axes (so positional predicates count proximity).
    """
    if axis == "self":
        yield node
    elif axis == "child":
        if isinstance(node, _Container):
            yield from node.children
    elif axis == "descendant":
        if isinstance(node, _Container):
            yield from node.descendants()
    elif axis == "descendant-or-self":
        yield node
        if isinstance(node, _Container):
            yield from node.descendants()
    elif axis == "parent":
        if node.parent is not None:
            yield node.parent
    elif axis == "ancestor":
        yield from node.ancestors()
    elif axis == "ancestor-or-self":
        yield node
        yield from node.ancestors()
    elif axis == "attribute":
        if isinstance(node, Element):
            yield from node.attributes
    elif axis == "following-sibling":
        yield from _siblings(node, forward=True)
    elif axis == "preceding-sibling":
        yield from _siblings(node, forward=False)
    elif axis == "following":
        yield from _following(node)
    elif axis == "preceding":
        yield from _preceding(node)
    else:
        raise XPathEvaluationError(f"unknown axis {axis!r}")


def _siblings(node: Node, forward: bool) -> Iterator[Node]:
    parent = node.parent
    if parent is None or isinstance(node, Attribute):
        return
    siblings = parent.children
    for i, sibling in enumerate(siblings):
        if sibling is node:
            if forward:
                yield from siblings[i + 1:]
            else:
                yield from reversed(siblings[:i])
            return


def _following(node: Node) -> Iterator[Node]:
    """All nodes after *node* in document order, excluding descendants."""
    current: Node | None = node
    while current is not None:
        for sibling in _siblings(current, forward=True):
            yield sibling
            if isinstance(sibling, _Container):
                yield from sibling.descendants()
        current = current.parent


def _preceding(node: Node) -> Iterator[Node]:
    """All nodes before *node* in document order, excluding ancestors.

    Yielded in reverse document order (axis order for a reverse axis).
    """
    ancestors = set(id(a) for a in node.ancestors())
    doc = node.document
    if doc is None:
        return
    before: list[Node] = []
    for candidate in doc.iter():
        if candidate is node:
            break
        if id(candidate) not in ancestors and not isinstance(
            candidate, Document
        ):
            before.append(candidate)
    yield from reversed(before)


def _matches_test(test: NodeTest, node: Node, axis: str) -> bool:
    if isinstance(test, AnyKindTest):
        return True
    if isinstance(test, KindTest):
        if test.kind == "text":
            return isinstance(node, Text)
        if test.kind == "comment":
            return isinstance(node, Comment)
        if test.kind == "processing-instruction":
            return isinstance(node, ProcessingInstruction)
        raise XPathEvaluationError(f"unknown kind test {test.kind!r}")
    assert isinstance(test, NameTest)
    # Principal node kind: attributes on the attribute axis, else elements.
    if axis == "attribute":
        if not isinstance(node, Attribute):
            return False
        return test.is_wildcard or node.name == test.name
    if not isinstance(node, Element):
        return False
    return test.is_wildcard or node.tag == test.name


def _document_order_union(nodes: list[Node]) -> list[Node]:
    """Deduplicate by identity and sort into document order."""
    seen: set[int] = set()
    unique: list[Node] = []
    for node in nodes:
        if id(node) not in seen:
            seen.add(id(node))
            unique.append(node)
    if len(unique) <= 1:
        return unique
    return sorted(unique, key=lambda n: n.order_key)


# ---------------------------------------------------------------------------
# Core function library
# ---------------------------------------------------------------------------


def _fn_position(context: _Context, args: list) -> float:
    return float(context.position)


def _fn_last(context: _Context, args: list) -> float:
    return float(context.size)


def _fn_count(context: _Context, args: list) -> float:
    (nodes,) = args
    if not isinstance(nodes, list):
        raise XPathEvaluationError("count() requires a node-set")
    return float(len(nodes))


def _fn_not(context: _Context, args: list) -> bool:
    (value,) = args
    return not xpath_boolean(value)


def _fn_string(context: _Context, args: list) -> str:
    if not args:
        return context.node.string_value
    return xpath_string(args[0])


def _fn_number(context: _Context, args: list) -> float:
    if not args:
        return xpath_number(context.node.string_value)
    return xpath_number(args[0])


def _fn_boolean(context: _Context, args: list) -> bool:
    (value,) = args
    return xpath_boolean(value)


def _fn_concat(context: _Context, args: list) -> str:
    if len(args) < 2:
        raise XPathEvaluationError("concat() requires at least 2 arguments")
    return "".join(xpath_string(a) for a in args)


def _fn_contains(context: _Context, args: list) -> bool:
    haystack, needle = (xpath_string(a) for a in args)
    return needle in haystack


def _fn_starts_with(context: _Context, args: list) -> bool:
    haystack, prefix = (xpath_string(a) for a in args)
    return haystack.startswith(prefix)

def _fn_substring(context: _Context, args: list) -> str:
    if len(args) not in (2, 3):
        raise XPathEvaluationError("substring() takes 2 or 3 arguments")
    text = xpath_string(args[0])
    start = round(xpath_number(args[1]))
    if len(args) == 3:
        length = round(xpath_number(args[2]))
        end = start + length
    else:
        end = len(text) + 1
    begin = max(start, 1)
    if math.isnan(xpath_number(args[1])) or end <= begin:
        return ""
    return text[begin - 1:end - 1]


def _fn_substring_before(context: _Context, args: list) -> str:
    text, marker = (xpath_string(a) for a in args)
    index = text.find(marker)
    return text[:index] if index >= 0 else ""


def _fn_substring_after(context: _Context, args: list) -> str:
    text, marker = (xpath_string(a) for a in args)
    index = text.find(marker)
    return text[index + len(marker):] if index >= 0 else ""


def _fn_translate(context: _Context, args: list) -> str:
    text, source, target = (xpath_string(a) for a in args)
    table: dict[int, int | None] = {}
    for i, ch in enumerate(source):
        if ord(ch) in table:
            continue  # first occurrence wins, per the spec
        table[ord(ch)] = ord(target[i]) if i < len(target) else None
    return text.translate(table)


def _fn_string_length(context: _Context, args: list) -> float:
    text = xpath_string(args[0]) if args else context.node.string_value
    return float(len(text))


def _fn_normalize_space(context: _Context, args: list) -> str:
    text = xpath_string(args[0]) if args else context.node.string_value
    return " ".join(text.split())


def _fn_name(context: _Context, args: list) -> str:
    nodes = args[0] if args else [context.node]
    if not isinstance(nodes, list):
        raise XPathEvaluationError("name() requires a node-set")
    if not nodes:
        return ""
    node = nodes[0]
    if isinstance(node, Element):
        return node.tag
    if isinstance(node, Attribute):
        return node.name
    if isinstance(node, ProcessingInstruction):
        return node.target
    return ""


def _fn_sum(context: _Context, args: list) -> float:
    (nodes,) = args
    if not isinstance(nodes, list):
        raise XPathEvaluationError("sum() requires a node-set")
    return sum(xpath_number(n.string_value) for n in nodes)


def _fn_floor(context: _Context, args: list) -> float:
    return float(math.floor(xpath_number(args[0])))


def _fn_ceiling(context: _Context, args: list) -> float:
    return float(math.ceil(xpath_number(args[0])))


def _fn_round(context: _Context, args: list) -> float:
    value = xpath_number(args[0])
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value + 0.5))


def _fn_true(context: _Context, args: list) -> bool:
    return True


def _fn_false(context: _Context, args: list) -> bool:
    return False


FUNCTIONS: dict[str, Callable[[_Context, list], object]] = {
    "position": _fn_position,
    "last": _fn_last,
    "count": _fn_count,
    "not": _fn_not,
    "string": _fn_string,
    "number": _fn_number,
    "boolean": _fn_boolean,
    "concat": _fn_concat,
    "contains": _fn_contains,
    "starts-with": _fn_starts_with,
    "substring": _fn_substring,
    "substring-before": _fn_substring_before,
    "substring-after": _fn_substring_after,
    "translate": _fn_translate,
    "string-length": _fn_string_length,
    "normalize-space": _fn_normalize_space,
    "name": _fn_name,
    "local-name": _fn_name,  # no namespaces in this subset
    "sum": _fn_sum,
    "floor": _fn_floor,
    "ceiling": _fn_ceiling,
    "round": _fn_round,
    "true": _fn_true,
    "false": _fn_false,
}


# ---------------------------------------------------------------------------
# Comparison semantics (XPath 1.0 section 3.4)
# ---------------------------------------------------------------------------


def _compare_equality(left, right, op: str) -> bool:
    left_is_set = isinstance(left, list)
    right_is_set = isinstance(right, list)
    if left_is_set and right_is_set:
        right_values = {n.string_value for n in right}
        for node in left:
            value = node.string_value
            if op == "=" and value in right_values:
                return True
            if op == "!=" and any(value != rv for rv in right_values):
                return True
        return False
    if left_is_set or right_is_set:
        nodes, other = (left, right) if left_is_set else (right, left)
        if isinstance(other, bool):
            result = xpath_boolean(nodes) == other
            return result if op == "=" else not result
        for node in nodes:
            if isinstance(other, float):
                matches = xpath_number(node.string_value) == other
            else:
                matches = node.string_value == other
            if op == "=" and matches:
                return True
            if op == "!=" and not matches:
                return True
        return False
    # Neither side is a node-set.
    if isinstance(left, bool) or isinstance(right, bool):
        result = xpath_boolean(left) == xpath_boolean(right)
    elif isinstance(left, float) or isinstance(right, float):
        result = xpath_number(left) == xpath_number(right)
    else:
        result = left == right
    return result if op == "=" else not result


def _compare_relational(left, right, op: str) -> bool:
    left_values = _relational_operands(left)
    right_values = _relational_operands(right)
    for lv in left_values:
        for rv in right_values:
            if _numeric_compare(lv, rv, op):
                return True
    return False


def _relational_operands(value) -> list[float]:
    if isinstance(value, list):
        return [xpath_number(n.string_value) for n in value]
    return [xpath_number(value)]


def _numeric_compare(a: float, b: float, op: str) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b
