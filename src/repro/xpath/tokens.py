"""Token definitions for the XPath lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical categories of XPath tokens."""

    NAME = "name"              # element/attribute/axis/function names
    NUMBER = "number"          # 3, 3.14, .5
    LITERAL = "literal"        # 'str' or "str"
    SLASH = "/"
    DOUBLE_SLASH = "//"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    AT = "@"
    COMMA = ","
    DOT = "."
    DOTDOT = ".."
    AXIS_SEP = "::"
    PIPE = "|"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"                 # wildcard or multiply (parser decides by rule)
    EQ = "="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    DOLLAR = "$"
    END = "end"


# Names that act as binary operators when they appear in operator position.
OPERATOR_NAMES = frozenset({"and", "or", "div", "mod"})

# Reserved node-type test names (NAME followed by '(').
NODE_TYPE_NAMES = frozenset(
    {"node", "text", "comment", "processing-instruction"}
)

AXIS_NAMES = frozenset(
    {
        "child",
        "descendant",
        "descendant-or-self",
        "self",
        "parent",
        "attribute",
        "ancestor",
        "ancestor-or-self",
        "following-sibling",
        "preceding-sibling",
        "following",
        "preceding",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: TokenKind
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind.name} {self.value!r}@{self.position}>"
