"""Abstract syntax tree for the XPath subset.

The AST is deliberately small and regular so that both the in-memory
evaluator and the per-scheme SQL translators can pattern-match on it.  All
nodes are frozen dataclasses: expression objects are safely shareable and
hashable (translator caches key on them).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class StringLiteral(Expr):
    """A quoted string, e.g. ``'Springer'``."""

    value: str

    def __str__(self) -> str:
        quote = '"' if "'" in self.value else "'"
        return f"{quote}{self.value}{quote}"


@dataclass(frozen=True)
class NumberLiteral(Expr):
    """A numeric literal, e.g. ``1999`` or ``1.5``."""

    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary operation: ``or and = != < <= > >= + - * div mod |``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(Expr):
    """Unary minus."""

    operand: Expr

    def __str__(self) -> str:
        return f"-{self.operand}"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A core-library function call, e.g. ``contains(., 'x')``."""

    name: str
    args: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# -- node tests ---------------------------------------------------------------


class NodeTest:
    """Base class of node tests within a step."""

    __slots__ = ()


@dataclass(frozen=True)
class NameTest(NodeTest):
    """Match elements/attributes by name; ``name`` of ``*`` matches all."""

    name: str

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class KindTest(NodeTest):
    """Match by node kind: ``text()``, ``comment()``,
    ``processing-instruction()``."""

    kind: str  # 'text' | 'comment' | 'processing-instruction'

    def __str__(self) -> str:
        return f"{self.kind}()"


@dataclass(frozen=True)
class AnyKindTest(NodeTest):
    """``node()`` — matches any principal-axis node."""

    def __str__(self) -> str:
        return "node()"


# -- paths ----------------------------------------------------------------------


@dataclass(frozen=True)
class Step(Expr):
    """One location step: ``axis::test[pred1][pred2]``."""

    axis: str
    test: NodeTest
    predicates: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        if self.axis == "child":
            return f"{self.test}{preds}"
        if self.axis == "attribute":
            return f"@{self.test}{preds}"
        return f"{self.axis}::{self.test}{preds}"


@dataclass(frozen=True)
class LocationPath(Expr):
    """A location path: optionally absolute, a sequence of steps.

    The abbreviation ``//`` is desugared by the parser into an explicit
    ``descendant-or-self::node()`` step, so translators never see it.
    """

    absolute: bool
    steps: tuple[Step, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        parts: list[str] = []
        steps = list(self.steps)
        i = 0
        first = True
        while i < len(steps):
            step = steps[i]
            # Re-sugar descendant-or-self::node() followed by a step as //.
            if (
                step.axis == "descendant-or-self"
                and isinstance(step.test, AnyKindTest)
                and not step.predicates
                and i + 1 < len(steps)
            ):
                parts.append("//" + str(steps[i + 1]))
                i += 2
                first = False
                continue
            if first and not self.absolute:
                parts.append(str(step))
            else:
                parts.append("/" + str(step))
            first = False
            i += 1
        text = "".join(parts)
        if not text:
            return "/" if self.absolute else "."
        return text


@dataclass(frozen=True)
class FilterExpr(Expr):
    """A primary expression with predicates and an optional trailing path,
    e.g. ``(//a)[1]/b``.  Evaluator-only (not SQL-translatable)."""

    primary: Expr
    predicates: tuple[Expr, ...] = ()
    steps: tuple[Step, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        tail = "".join("/" + str(s) for s in self.steps)
        return f"({self.primary}){preds}{tail}"


def is_simple_path(expr: Expr) -> bool:
    """True if *expr* is a plain location path (the SQL-translatable core)."""
    return isinstance(expr, LocationPath)


def path_of(*names: str, absolute: bool = True) -> LocationPath:
    """Convenience constructor: ``path_of('a', 'b')`` == ``/a/b``."""
    steps = tuple(Step("child", NameTest(n)) for n in names)
    return LocationPath(absolute=absolute, steps=steps)
