"""XPath tokenizer.

Implements the XPath 1.0 lexical rules, including the disambiguation rule
for ``*`` and for operator names (``and``/``or``/``div``/``mod``): a token
that *could* be an operator is one exactly when the preceding token is an
operand terminator (a name, number, literal, ``)``, ``]``, ``.``, ``..``
or ``*``-as-wildcard is impossible there).  The lexer records enough
context to apply the rule; the parser then treats ``STAR`` uniformly.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xml.chars import is_name_char, is_name_start_char
from repro.xpath.tokens import Token, TokenKind

_SINGLE_CHAR = {
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "@": TokenKind.AT,
    ",": TokenKind.COMMA,
    "|": TokenKind.PIPE,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "=": TokenKind.EQ,
    "$": TokenKind.DOLLAR,
}


def tokenize(expression: str) -> list[Token]:
    """Tokenize *expression*; the result always ends with an END token."""
    tokens: list[Token] = []
    pos = 0
    length = len(expression)
    while pos < length:
        ch = expression[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        start = pos
        if ch == "/":
            if expression.startswith("//", pos):
                tokens.append(Token(TokenKind.DOUBLE_SLASH, "//", start))
                pos += 2
            else:
                tokens.append(Token(TokenKind.SLASH, "/", start))
                pos += 1
        elif ch == ":":
            if expression.startswith("::", pos):
                tokens.append(Token(TokenKind.AXIS_SEP, "::", start))
                pos += 2
            else:
                raise XPathSyntaxError("unexpected ':'", pos)
        elif ch == ".":
            if expression.startswith("..", pos):
                tokens.append(Token(TokenKind.DOTDOT, "..", start))
                pos += 2
            elif pos + 1 < length and expression[pos + 1].isdigit():
                pos = _scan_number(expression, pos, tokens)
            else:
                tokens.append(Token(TokenKind.DOT, ".", start))
                pos += 1
        elif ch == "!":
            if expression.startswith("!=", pos):
                tokens.append(Token(TokenKind.NEQ, "!=", start))
                pos += 2
            else:
                raise XPathSyntaxError("unexpected '!'", pos)
        elif ch == "<":
            if expression.startswith("<=", pos):
                tokens.append(Token(TokenKind.LE, "<=", start))
                pos += 2
            else:
                tokens.append(Token(TokenKind.LT, "<", start))
                pos += 1
        elif ch == ">":
            if expression.startswith(">=", pos):
                tokens.append(Token(TokenKind.GE, ">=", start))
                pos += 2
            else:
                tokens.append(Token(TokenKind.GT, ">", start))
                pos += 1
        elif ch == "*":
            tokens.append(Token(TokenKind.STAR, "*", start))
            pos += 1
        elif ch in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[ch], ch, start))
            pos += 1
        elif ch in ("'", '"'):
            end = expression.find(ch, pos + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", pos)
            tokens.append(
                Token(TokenKind.LITERAL, expression[pos + 1:end], start)
            )
            pos = end + 1
        elif ch.isdigit():
            pos = _scan_number(expression, pos, tokens)
        elif ch != ":" and is_name_start_char(ch):
            # Unlike raw XML names, XPath names exclude ':' — it would
            # swallow the '::' axis separator.
            pos += 1
            while (
                pos < length
                and expression[pos] != ":"
                and is_name_char(expression[pos])
            ):
                pos += 1
            tokens.append(Token(TokenKind.NAME, expression[start:pos], start))
        else:
            raise XPathSyntaxError(f"unexpected character {ch!r}", pos)
    tokens.append(Token(TokenKind.END, "", length))
    return tokens


def _scan_number(expression: str, pos: int, tokens: list[Token]) -> int:
    start = pos
    length = len(expression)
    while pos < length and expression[pos].isdigit():
        pos += 1
    if pos < length and expression[pos] == ".":
        pos += 1
        while pos < length and expression[pos].isdigit():
            pos += 1
    tokens.append(Token(TokenKind.NUMBER, expression[start:pos], start))
    return pos
