"""Recursive-descent parser for the XPath subset.

Grammar (XPath 1.0, minus variables and a few rarely used constructs):

.. code-block:: text

    Expr        := OrExpr
    OrExpr      := AndExpr ('or' AndExpr)*
    AndExpr     := EqExpr ('and' EqExpr)*
    EqExpr      := RelExpr (('=' | '!=') RelExpr)*
    RelExpr     := AddExpr (('<' | '<=' | '>' | '>=') AddExpr)*
    AddExpr     := MulExpr (('+' | '-') MulExpr)*
    MulExpr     := UnaryExpr (('*' | 'div' | 'mod') UnaryExpr)*
    UnaryExpr   := '-' UnaryExpr | UnionExpr
    UnionExpr   := PathExpr ('|' PathExpr)*
    PathExpr    := LocationPath
                 | FilterExpr (('/' | '//') RelativeLocationPath)?
    FilterExpr  := Primary Predicate*
    Primary     := '(' Expr ')' | Literal | Number | FunctionCall
    LocationPath:= '/' RelativeLocationPath?
                 | '//' RelativeLocationPath
                 | RelativeLocationPath
    RelativeLocationPath := Step (('/' | '//') Step)*
    Step        := '.' | '..'
                 | AxisSpecifier? NodeTest Predicate*
    AxisSpecifier := AxisName '::' | '@'
    NodeTest    := Name | '*' | 'node()' | 'text()' | 'comment()'
                 | 'processing-instruction()'

``//`` desugars to an explicit ``descendant-or-self::node()`` step; ``.``
to ``self::node()``; ``..`` to ``parent::node()``; ``@name`` to
``attribute::name`` — so downstream consumers see a fully explicit AST.

The classic ``*`` / operator-name ambiguity is resolved with the rule from
the XPath spec (section 3.7): a ``*`` or a name is an operator exactly when
the preceding token is an operand terminator.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AnyKindTest,
    BinaryOp,
    Expr,
    FilterExpr,
    FunctionCall,
    LocationPath,
    NameTest,
    Negate,
    NodeTest,
    NumberLiteral,
    KindTest,
    Step,
    StringLiteral,
)
from repro.xpath.lexer import tokenize
from repro.xpath.tokens import (
    AXIS_NAMES,
    NODE_TYPE_NAMES,
    Token,
    TokenKind,
)

_DESCENDANT_STEP = Step("descendant-or-self", AnyKindTest())


def parse_xpath(expression: str) -> Expr:
    """Parse *expression* and return its AST root."""
    parser = _Parser(tokenize(expression))
    expr = parser.parse_expr()
    parser.expect_end()
    return expr


def parse_path(expression: str) -> LocationPath:
    """Parse *expression*, requiring it to be a plain location path."""
    expr = parse_xpath(expression)
    if not isinstance(expr, LocationPath):
        raise XPathSyntaxError(
            f"expected a location path, got {type(expr).__name__}", 0
        )
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token utilities --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.END:
            self.index += 1
        return token

    def match(self, kind: TokenKind, value: str | None = None) -> bool:
        token = self.current
        if token.kind is kind and (value is None or token.value == value):
            self.advance()
            return True
        return False

    def expect(self, kind: TokenKind, context: str) -> Token:
        token = self.current
        if token.kind is not kind:
            raise XPathSyntaxError(
                f"expected {kind.value!r} in {context}, "
                f"got {token.value or 'end of expression'!r}",
                token.position,
            )
        return self.advance()

    def expect_end(self) -> None:
        token = self.current
        if token.kind is not TokenKind.END:
            raise XPathSyntaxError(
                f"unexpected trailing token {token.value!r}", token.position
            )

    # -- expression levels --------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at_operator_name("or"):
            self.advance()
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_equality()
        while self._at_operator_name("and"):
            self.advance()
            left = BinaryOp("and", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_relational()
        while self.current.kind in (TokenKind.EQ, TokenKind.NEQ):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while self.current.kind in (
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
        ):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance().value
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self.current.kind is TokenKind.STAR:
                self.advance()
                left = BinaryOp("*", left, self._parse_unary())
            elif self._at_operator_name("div") or self._at_operator_name("mod"):
                op = self.advance().value
                left = BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _at_operator_name(self, name: str) -> bool:
        """True if the current NAME token is the operator *name*.

        By the spec's rule the name is an operator when it sits in operator
        position — i.e. the *next* construct would otherwise start a new
        operand, which our recursive structure guarantees; we additionally
        require that it is not followed by ``(`` or ``::`` (function call or
        axis) to keep paths like ``div/mod`` meaning element names.
        """
        token = self.current
        if token.kind is not TokenKind.NAME or token.value != name:
            return False
        following = self.tokens[self.index + 1]
        return following.kind not in (
            TokenKind.LPAREN,
            TokenKind.AXIS_SEP,
            TokenKind.SLASH,
            TokenKind.DOUBLE_SLASH,
            TokenKind.LBRACKET,
        )

    def _parse_unary(self) -> Expr:
        if self.match(TokenKind.MINUS):
            return Negate(self._parse_unary())
        return self._parse_union()

    def _parse_union(self) -> Expr:
        left = self._parse_path_expr()
        while self.match(TokenKind.PIPE):
            left = BinaryOp("|", left, self._parse_path_expr())
        return left

    # -- paths ------------------------------------------------------------------

    def _parse_path_expr(self) -> Expr:
        token = self.current
        if token.kind in (TokenKind.LITERAL, TokenKind.NUMBER):
            return self._parse_filter_expr()
        if token.kind is TokenKind.LPAREN:
            return self._parse_filter_expr()
        if token.kind is TokenKind.NAME and self._is_function_call():
            return self._parse_filter_expr()
        return self._parse_location_path()

    def _is_function_call(self) -> bool:
        token = self.current
        following = self.tokens[self.index + 1]
        return (
            following.kind is TokenKind.LPAREN
            and token.value not in NODE_TYPE_NAMES
        )

    def _parse_filter_expr(self) -> Expr:
        primary = self._parse_primary()
        predicates: list[Expr] = []
        while self.current.kind is TokenKind.LBRACKET:
            predicates.append(self._parse_predicate())
        steps: list[Step] = []
        while True:
            if self.match(TokenKind.DOUBLE_SLASH):
                steps.append(_DESCENDANT_STEP)
                steps.append(self._parse_step())
            elif self.match(TokenKind.SLASH):
                steps.append(self._parse_step())
            else:
                break
        if not predicates and not steps:
            return primary
        return FilterExpr(primary, tuple(predicates), tuple(steps))

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind is TokenKind.LITERAL:
            self.advance()
            return StringLiteral(token.value)
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return NumberLiteral(float(token.value))
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN, "parenthesized expression")
            return inner
        if token.kind is TokenKind.NAME:
            name = self.advance().value
            self.expect(TokenKind.LPAREN, f"function call {name}")
            args: list[Expr] = []
            if self.current.kind is not TokenKind.RPAREN:
                args.append(self.parse_expr())
                while self.match(TokenKind.COMMA):
                    args.append(self.parse_expr())
            self.expect(TokenKind.RPAREN, f"function call {name}")
            return FunctionCall(name, tuple(args))
        raise XPathSyntaxError(
            f"unexpected token {token.value!r}", token.position
        )

    def _parse_location_path(self) -> LocationPath:
        steps: list[Step] = []
        if self.match(TokenKind.DOUBLE_SLASH):
            absolute = True
            steps.append(_DESCENDANT_STEP)
            steps.append(self._parse_step())
        elif self.match(TokenKind.SLASH):
            absolute = True
            if self._at_step_start():
                steps.append(self._parse_step())
        else:
            absolute = False
            steps.append(self._parse_step())
        while True:
            if self.match(TokenKind.DOUBLE_SLASH):
                steps.append(_DESCENDANT_STEP)
                steps.append(self._parse_step())
            elif self.match(TokenKind.SLASH):
                steps.append(self._parse_step())
            else:
                return LocationPath(absolute, tuple(steps))

    def _at_step_start(self) -> bool:
        return self.current.kind in (
            TokenKind.NAME,
            TokenKind.STAR,
            TokenKind.AT,
            TokenKind.DOT,
            TokenKind.DOTDOT,
        )

    def _parse_step(self) -> Step:
        token = self.current
        if self.match(TokenKind.DOT):
            return Step("self", AnyKindTest())
        if self.match(TokenKind.DOTDOT):
            return Step("parent", AnyKindTest())
        if self.match(TokenKind.AT):
            axis = "attribute"
        elif (
            token.kind is TokenKind.NAME
            and self.tokens[self.index + 1].kind is TokenKind.AXIS_SEP
        ):
            if token.value not in AXIS_NAMES:
                raise XPathSyntaxError(
                    f"unknown axis {token.value!r}", token.position
                )
            axis = token.value
            self.advance()  # axis name
            self.advance()  # '::'
        else:
            axis = "child"
        test = self._parse_node_test()
        predicates: list[Expr] = []
        while self.current.kind is TokenKind.LBRACKET:
            predicates.append(self._parse_predicate())
        return Step(axis, test, tuple(predicates))

    def _parse_node_test(self) -> NodeTest:
        token = self.current
        if self.match(TokenKind.STAR):
            return NameTest("*")
        if token.kind is TokenKind.NAME:
            name = self.advance().value
            if (
                name in NODE_TYPE_NAMES
                and self.current.kind is TokenKind.LPAREN
            ):
                self.advance()
                self.expect(TokenKind.RPAREN, f"node test {name}()")
                if name == "node":
                    return AnyKindTest()
                return KindTest(name)
            return NameTest(name)
        raise XPathSyntaxError(
            f"expected node test, got {token.value or 'end of expression'!r}",
            token.position,
        )

    def _parse_predicate(self) -> Expr:
        self.expect(TokenKind.LBRACKET, "predicate")
        expr = self.parse_expr()
        self.expect(TokenKind.RBRACKET, "predicate")
        return expr
