"""XPath 1.0 subset: parser and in-memory reference evaluator.

The subset covers what the relational translators compile (location paths
over the child/descendant/attribute/parent/self axes with positional and
value predicates) plus a broader evaluator-only surface (all major axes,
the core function library, arithmetic) used as ground truth in
differential tests.
"""

from repro.xpath.ast import (
    AnyKindTest,
    BinaryOp,
    FunctionCall,
    KindTest,
    LocationPath,
    NameTest,
    Negate,
    NumberLiteral,
    Step,
    StringLiteral,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.evaluator import evaluate, evaluate_nodes

__all__ = [
    "AnyKindTest",
    "BinaryOp",
    "FunctionCall",
    "KindTest",
    "LocationPath",
    "NameTest",
    "Negate",
    "NumberLiteral",
    "Step",
    "StringLiteral",
    "evaluate",
    "evaluate_nodes",
    "parse_xpath",
]
