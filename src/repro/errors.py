"""Exception hierarchy for the xmlrel reproduction.

Every error raised by the library derives from :class:`XmlRelError` so that
callers can catch library failures with a single ``except`` clause while the
concrete subclasses preserve the failing layer (parsing, shredding, query
translation, ...).
"""

from __future__ import annotations


class XmlRelError(Exception):
    """Base class for all errors raised by this library."""


class XmlSyntaxError(XmlRelError):
    """Raised when an XML document is not well formed.

    Carries the 1-based ``line`` and ``column`` of the offending position so
    error messages can point at the exact spot in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DtdSyntaxError(XmlSyntaxError):
    """Raised when a DTD (internal or external subset) cannot be parsed."""


class XPathSyntaxError(XmlRelError):
    """Raised when an XPath expression cannot be parsed.

    ``position`` is the 0-based character offset within the expression.
    """

    def __init__(self, message: str, position: int = 0):
        self.position = position
        super().__init__(f"{message} (at offset {position})")


class XPathEvaluationError(XmlRelError):
    """Raised when a syntactically valid XPath cannot be evaluated."""


class UnsupportedQueryError(XmlRelError):
    """Raised when a query uses a feature a given translator cannot compile.

    The in-memory evaluator supports the full implemented XPath subset; the
    per-scheme SQL translators may each reject a narrower set (recorded in
    their docstrings).  This error names the feature and the scheme.
    """

    def __init__(self, feature: str, scheme: str | None = None):
        self.feature = feature
        self.scheme = scheme
        where = f" by scheme '{scheme}'" if scheme else ""
        super().__init__(f"unsupported query feature{where}: {feature}")


class StorageError(XmlRelError):
    """Raised on shredding/reconstruction failures inside a storage scheme."""


class TransientStorageError(StorageError):
    """Raised when a *transient* engine condition (``SQLITE_BUSY`` /
    ``SQLITE_LOCKED``) persists past the retry budget.

    Unlike a plain :class:`StorageError`, the failed operation did not
    corrupt anything and is safe to retry at a coarser granularity (e.g.
    re-run the whole transaction); ``attempts`` records how many tries
    the :class:`~repro.relational.retry.RetryPolicy` made before giving
    up (1 when no policy was configured).
    """

    def __init__(self, message: str, attempts: int = 1):
        self.attempts = attempts
        super().__init__(message)


class SchemaMappingError(StorageError):
    """Raised when a DTD cannot be mapped to a relational schema."""


class DocumentNotFoundError(StorageError):
    """Raised when a document id is absent from the store catalog."""

    def __init__(self, doc_id: int):
        self.doc_id = doc_id
        super().__init__(f"no stored document with id {doc_id}")


class PlanLintError(XmlRelError):
    """Raised in *strict* lint mode when a translated SQL plan carries
    error-severity diagnostics (see :mod:`repro.analysis.sqllint`).

    ``diagnostics`` holds the offending
    :class:`~repro.analysis.diagnostics.Diagnostic` records; the message
    summarizes them so the failure is readable without unpacking.
    """

    def __init__(self, diagnostics):
        self.diagnostics = tuple(diagnostics)
        summary = "; ".join(d.format() for d in self.diagnostics)
        super().__init__(f"plan lint failed: {summary}")


class LockDisciplineError(XmlRelError):
    """Raised by the runtime lock-order harness
    (:mod:`repro.analysis.lockharness`) when proceeding would deadlock:
    a non-reentrant lock re-acquired by the thread already holding it.
    Order violations that merely *risk* deadlock are recorded, not
    raised — the harness reports them at test teardown."""


class ReadOnlyDatabaseError(StorageError):
    """Raised when a write statement reaches a read-only connection.

    A :class:`~repro.relational.database.Database` opened with
    ``read_only=True`` rejects INSERT/UPDATE/DELETE/DDL before the
    engine sees them, so callers get this typed error instead of a raw
    ``sqlite3.OperationalError`` surfacing from deep inside a
    transaction.
    """


class ServingError(XmlRelError):
    """Base class for errors raised by the concurrent serving layer
    (:mod:`repro.serve`)."""


class Overloaded(ServingError):
    """Raised when the serving layer sheds load: the admission gate is
    full (``in_flight`` requests already running against a limit of
    ``limit``) or a connection pool could not hand out a connection
    within its acquire timeout.

    The request was rejected *before* doing any work — retrying after
    backoff is always safe.
    """

    def __init__(self, message: str, in_flight: int = 0, limit: int = 0):
        self.in_flight = in_flight
        self.limit = limit
        super().__init__(message)


class DeadlineExceeded(ServingError):
    """Raised when a query misses its per-query deadline.

    ``deadline_seconds`` is the budget the caller gave; ``elapsed``
    how long the query had been running when the serving layer gave up.
    Work still in flight on other shards is abandoned (its results are
    discarded), never returned partially.
    """

    def __init__(
        self, message: str, deadline_seconds: float = 0.0,
        elapsed: float = 0.0,
    ):
        self.deadline_seconds = deadline_seconds
        self.elapsed = elapsed
        super().__init__(message)


class ShardError(ServingError):
    """Raised (in fail-fast mode) when one shard of a scatter-gather
    query fails; ``shard`` names the failing shard, ``cause`` the
    underlying error."""

    def __init__(self, shard: int, cause: BaseException):
        self.shard = shard
        self.cause = cause
        super().__init__(f"shard {shard} failed: {cause}")


class ProtocolError(ServingError):
    """Raised when a network request to the serving layer is malformed:
    unparsable JSON body, missing/mistyped fields, unknown routes or
    parameter values.  Always the *client's* fault — maps to HTTP 400.
    """


class UpdateError(XmlRelError):
    """Raised when an update (insert/delete) cannot be applied."""


class WorkloadError(XmlRelError):
    """Raised on invalid workload-generator parameters."""


#: The serving-error → HTTP-status table — the single source of truth
#: shared by the network gateway (:mod:`repro.serve.gateway`) and the
#: ops endpoint (:mod:`repro.obs.ops`).  Ordered most-specific-first;
#: :func:`http_status` walks it with ``isinstance`` so a subclass added
#: later inherits its parent's status instead of silently falling
#: through to 500.  Partial degraded answers are not errors and are
#: mapped by the gateway itself (HTTP 206).
HTTP_STATUS: tuple[tuple[type, int], ...] = (
    (Overloaded, 429),           # shed: admission gate or quota; retryable
    (DeadlineExceeded, 504),     # the query missed its budget
    (ShardError, 502),           # a backend shard failed (fail-fast mode)
    (ProtocolError, 400),        # malformed request
    (DocumentNotFoundError, 404),
    (XPathSyntaxError, 400),     # the client's query doesn't parse
    (UnsupportedQueryError, 400),
    (PlanLintError, 400),
    (XmlSyntaxError, 400),       # malformed document payload
    (ReadOnlyDatabaseError, 403),
    (TransientStorageError, 503),  # safe to retry
    (ServingError, 503),
    (XmlRelError, 500),
)


def http_status(error: BaseException) -> int:
    """The HTTP status code for *error*, per :data:`HTTP_STATUS`.

    Unknown exception types (anything outside the library hierarchy)
    map to 500.
    """
    for exc_type, status in HTTP_STATUS:
        if isinstance(error, exc_type):
            return status
    return 500


def error_payload(error: BaseException) -> dict:
    """A machine-readable JSON body for *error*.

    Always carries ``error`` (the exception class name), ``message``,
    and ``status``; typed serving errors contribute their structured
    fields (``in_flight``/``limit``, ``deadline_seconds``/``elapsed``,
    ``shard``) so clients can act on more than prose.
    """
    payload: dict = {
        "error": type(error).__name__,
        "message": str(error),
        "status": http_status(error),
    }
    if isinstance(error, Overloaded):
        payload["in_flight"] = error.in_flight
        payload["limit"] = error.limit
    elif isinstance(error, DeadlineExceeded):
        payload["deadline_seconds"] = error.deadline_seconds
        payload["elapsed_seconds"] = error.elapsed
    elif isinstance(error, ShardError):
        payload["shard"] = error.shard
    elif isinstance(error, DocumentNotFoundError):
        payload["doc_id"] = error.doc_id
    return payload
