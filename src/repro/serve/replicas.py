"""WAL-snapshot replica fan-out for one shard.

A :class:`ReplicaSet` maintains N read-only copies of one shard file
(``shard-00.replica-0.db``, ``shard-00.replica-1.db``, …) inside the
store directory.  A *ship* takes a consistent point-in-time snapshot of
the primary (``VACUUM INTO`` — sqlite's own locking keeps WAL readers
proceeding) into a temporary file, then atomically renames it over the
replica (``os.replace``), so a replica file is **always** a complete,
internally-consistent database: a crash mid-ship leaves at worst a
stale ``*.tmp`` file (swept on recovery) next to the still-intact
previous replica.

Each shipped replica is served by its own
:class:`~repro.serve.pool.ConnectionPool`; after a re-ship the pool is
*recycled* (generation bump) so no pooled connection keeps reading the
unlinked old file.  The scatter-gather executor round-robins across
these pools when asked to read from replicas, falling back to the
primary when a replica cannot answer.

Staleness accounting lives in the catalog
(:class:`~repro.relational.shardmap.ShardState`), owned by the sharded
store — this module only moves files and manages pools.

Fault injection: replica-pool connections consult the store's
:class:`~repro.reliability.faults.ShardFaultPolicy` under the negative
pseudo-shard key :func:`replica_fault_key`, so a test can take one
replica down without touching its primary (the replica-lag degraded
mode).  The ship itself runs on the primary's writer connection, so
crash sweeps reach it through the *primary's* fault key like any other
write.
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.serve.pool import ConnectionPool


def replica_fault_key(shard: int, replica: int) -> int:
    """The :class:`~repro.reliability.faults.ShardFaultPolicy` key a
    replica's connections consult.  Negative by construction so it can
    never collide with a primary shard number."""
    return -(shard * 1000 + replica + 1)


class ReplicaSet:
    """N snapshot-shipped read replicas of one shard file."""

    def __init__(
        self,
        shard: int,
        directory: str,
        count: int,
        scheme: str,
        pool_size: int = 2,
        acquire_timeout: float = 1.0,
        profile: str = "durable",
        metrics: MetricsRegistry | None = None,
        fault_policy=None,
        scheme_kwargs: dict | None = None,
        retry=None,
        tracer=None,
    ) -> None:
        if count < 1:
            raise StorageError("replica count must be >= 1")
        self.shard = shard
        self.directory = directory
        self.count = count
        self.scheme = scheme
        self.pool_size = pool_size
        self.acquire_timeout = acquire_timeout
        self.profile = profile
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fault_policy = fault_policy
        self.scheme_kwargs = dict(scheme_kwargs or {})
        self.retry = retry
        self.tracer = tracer
        #: replica index → pool, created on first ship (before that the
        #: replica file does not exist and nothing should read it).
        self.pools: dict[int, ConnectionPool] = {}

    # -- paths --------------------------------------------------------------------

    def replica_path(self, replica: int) -> str:
        return os.path.join(
            self.directory,
            f"shard-{self.shard:02d}.replica-{replica}.db",
        )

    def _tmp_path(self, replica: int) -> str:
        return self.replica_path(replica) + ".tmp"

    def sweep_tmp(self) -> int:
        """Remove stale mid-ship temporaries (crash leftovers)."""
        removed = 0
        for replica in range(self.count):
            tmp = self._tmp_path(replica)
            if os.path.exists(tmp):
                os.remove(tmp)
                removed += 1
        return removed

    # -- shipping -----------------------------------------------------------------

    def ship_one(self, source: Database, replica: int) -> None:
        """Snapshot *source* over replica number *replica*.

        Snapshot-into-temporary then atomic rename: the replica file is
        never observable half-written.  Recycles (or builds) the
        replica's pool afterwards.
        """
        if not 0 <= replica < self.count:
            raise StorageError(
                f"shard {self.shard} has {self.count} replica(s); "
                f"no replica {replica}"
            )
        tmp = self._tmp_path(replica)
        if os.path.exists(tmp):
            os.remove(tmp)  # stale leftover of a crashed ship
        source.snapshot_into(tmp)
        os.replace(tmp, self.replica_path(replica))
        self.metrics.counter(
            f"replica.shard{self.shard}.ships"
        ).inc()
        pool = self.pools.get(replica)
        if pool is not None:
            pool.recycle()
        else:
            self.pools[replica] = self._build_pool(replica)

    def ship(self, source: Database) -> list[int]:
        """Ship every replica from *source*; returns their indices."""
        shipped = []
        for replica in range(self.count):
            self.ship_one(source, replica)
            shipped.append(replica)
        return shipped

    def _build_pool(self, replica: int) -> ConnectionPool:
        return ConnectionPool(
            self.replica_path(replica),
            self.scheme,
            size=self.pool_size,
            acquire_timeout=self.acquire_timeout,
            profile=self.profile,
            lint="off",
            name=f"shard{self.shard}r{replica}",
            metrics=self.metrics,
            database_factory=(
                self.fault_policy.factory(
                    replica_fault_key(self.shard, replica)
                )
                if self.fault_policy
                else None
            ),
            scheme_kwargs=self.scheme_kwargs,
            retry=self.retry,
            tracer=self.tracer,
        )

    def shipped_pools(self) -> list[ConnectionPool]:
        """Pools of every replica shipped at least once, index order."""
        return [
            self.pools[replica]
            for replica in sorted(self.pools)
        ]

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        for pool in self.pools.values():
            pool.close()
        self.pools.clear()
