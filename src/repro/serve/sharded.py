"""Document sharding across per-shard SQLite files.

A :class:`ShardedStore` partitions documents across N shard databases
(``shard-00.db`` … ``shard-NN.db`` inside one directory) behind the
familiar :class:`~repro.core.store.XmlRelStore` surface:

.. code-block:: python

    from repro.serve import ShardedStore

    with ShardedStore.open("catalog.d", scheme="interval", shards=4) as s:
        doc_id = s.store_text("<bib>...</bib>", name="bib-1")
        s.query_pres(doc_id, "/bib/book/title")     # pruned to 1 shard
        s.query_all("//book[@year = '2000']")        # scatter-gather

Each shard is a complete single-store database (same scheme, own
catalog, own WAL), written through one writer connection per shard and
read through a per-shard :class:`~repro.serve.pool.ConnectionPool` of
read-only connections — WAL journaling is what lets the readers proceed
while a writer commits.

**Shard map.**  Document placement lives in a small catalog database
(``catalog.db``) holding the ``xmlrel_shard_map`` table: global doc id
→ ``(shard, local_doc_id, name)``.  Global ids are issued by this
table's rowid, so they are dense and store-ordered; the per-shard local
ids never leak to callers.  The map is mirrored in memory (guarded by a
lock) so query routing never touches SQLite.  A config table pins
``scheme``/``shards``/``placement``, making a reopen with different
parameters a loud error instead of silent misrouting.

**Placement.**  ``hash`` (default) places by CRC32 of the document
name — deterministic across processes (Python's ``hash`` is
per-process salted, which would scatter a reopened store differently);
``round_robin`` cycles shards in store order for maximally even counts.

**Writes.**  Each shard has a single-writer lock, so writes to
*different* shards proceed concurrently while writes to one shard
serialize; reads never take a shard lock (WAL keeps them consistent).
Subtree updates (:meth:`insert_subtree` / :meth:`delete_subtree`) run
the :mod:`repro.updates` machinery inside an outer writer transaction,
turning the update's internal transactions into savepoints — one fault
anywhere rolls the whole update back.  After a write the shard's read
pool bumps its *shard-local* plan epoch (only for schemes whose
translations depend on stored data), so cached plans of other shards
are untouched.

**Crash-safe ordering.**  A ``store`` commits shard rows *before*
registering the shard-map entry; a ``delete`` removes the map entry
*before* deleting shard rows.  Either crash point therefore leaves an
*orphan* (committed shard rows no map entry points at) — never a
dangling map entry — and :meth:`recover` sweeps orphans on the next
open.

**Rebalancing.**  :meth:`rebalance` moves one document to another shard
while reads continue, journaled through the catalog
(:class:`~repro.relational.shardmap.RebalanceJournal`) as ``copying →
copied → flipped``; a crash at any statement leaves a state
:meth:`recover` rolls back (copy never flipped into the map) or forward
(flip + drop the source copy).  Readers always see exactly one
committed copy through the map.

**Replicas.**  With ``replicas=N`` each shard gets a
:class:`~repro.serve.replicas.ReplicaSet`; :meth:`ship_replicas`
snapshots the primary into each replica file (atomic rename) and
records the shipped write sequence, giving every replica-served answer
a staleness bound (writes behind + snapshot age) surfaced through
:class:`~repro.serve.executor.ScatterResult` and
:class:`~repro.obs.report.QueryReport`.

**Lock order.**  The canonical order for every lock in this module —
and the rest of the tree — is declared once, in
:data:`repro.analysis.concurrency.LOCK_ORDER`: ``shard`` (the
per-shard writer locks, outermost; several taken in ascending shard
index only) → ``map`` (catalog/shard-map locks) → ``pool`` →
``metrics`` (innermost).  The static analyzer
(``python -m repro.analysis.concurrency``) and the runtime harness
(:mod:`repro.analysis.lockharness`) both enforce it; change the
registry, not just this prose.
"""

from __future__ import annotations

import gc
import os
import queue as queue_module
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro import updates as updates_module
from repro.core.registry import create_scheme, scheme_class
from repro.core.store import XmlRelStore, build_query_report
from repro.errors import DocumentNotFoundError, Overloaded, StorageError
from repro.obs.events import RequestLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.ops import OpsServer
from repro.obs.report import QueryReport
from repro.obs.trace import NULL_TRACER, Tracer
from repro.reliability.audit import IntegrityReport
from repro.relational.database import Database
from repro.relational.shardmap import (
    RebalanceJournal,
    ShardedDocument,
    ShardMap,
    ShardState,
    pin_shard_config,
)
from repro.serve.executor import QueryExecutor, ScatterResult
from repro.serve.pool import ConnectionPool
from repro.serve.replicas import ReplicaSet
from repro.updates import UpdateStats
from repro.xml.dom import Document, Element, Node
from repro.xml.events import parse_events, stream_events
from repro.xml.parser import ParseOptions, parse_document
from repro.xml.serialize import serialize

#: Document-placement strategies.
PLACEMENTS = ("hash", "round_robin")


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`ShardedStore.recover` found and repaired."""

    #: doc ids of moves rolled back (journal state ``copying``).
    rolled_back: tuple = ()
    #: doc ids of moves rolled forward (journal state ``copied``).
    rolled_forward: tuple = ()
    #: doc ids whose source copy was dropped (journal state ``flipped``).
    cleaned_up: tuple = ()
    #: ``(shard, local_doc_id)`` of swept orphans (committed shard rows
    #: no map entry referenced).
    orphans_removed: tuple = ()
    #: stale mid-ship replica temporaries removed.
    tmp_files_removed: int = 0

    @property
    def acted(self) -> bool:
        return bool(
            self.rolled_back
            or self.rolled_forward
            or self.cleaned_up
            or self.orphans_removed
            or self.tmp_files_removed
        )


class ShardedStore:
    """N single-scheme stores behind one facade, served concurrently."""

    def __init__(
        self,
        directory: str,
        catalog_db: Database,
        shard_map: ShardMap,
        writers: list[XmlRelStore],
        pools: dict[int, ConnectionPool],
        executor: QueryExecutor,
        placement: str,
        metrics: MetricsRegistry,
        tracer: Tracer,
        shard_state: ShardState | None = None,
        journal: RebalanceJournal | None = None,
        replica_sets: dict[int, ReplicaSet] | None = None,
        fault_policy=None,
    ) -> None:
        self.directory = directory
        self.catalog_db = catalog_db
        self.shard_map = shard_map
        self.writers = writers
        self.pools = pools
        self.executor = executor
        self.placement = placement
        self.metrics = metrics
        self.tracer = tracer
        self.scheme_name = writers[0].scheme.name
        self.shard_state = (
            shard_state
            if shard_state is not None
            else ShardState(catalog_db, len(writers))
        )
        self.journal = (
            journal if journal is not None else RebalanceJournal(catalog_db)
        )
        self.replica_sets = dict(replica_sets or {})
        self.fault_policy = fault_policy
        #: One single-writer lock per shard: writes to different shards
        #: proceed concurrently, writes to one shard serialize.
        self._shard_locks = [threading.Lock() for _ in writers]
        #: Guards the round-robin counter and *every* catalog-database
        #: write (shard map, journal, shard state) — the catalog is one
        #: shared connection.  Lock order: class "map", inside the
        #: "shard" locks above — see the canonical registry
        #: :data:`repro.analysis.concurrency.LOCK_ORDER`.
        self._map_lock = threading.Lock()
        self._rr_counter = len(shard_map)
        if self.executor.shard_state is None:
            self.executor.shard_state = self.shard_state
        #: The embedded ops endpoint, once :meth:`serve_ops` starts it.
        self._ops_server: OpsServer | None = None
        #: The HTTP/JSON query gateway, once :meth:`serve_gateway`
        #: starts it.
        self._gateway = None
        #: True when :meth:`serve_ops` auto-created the request log (we
        #: close it); caller-provided logs stay the caller's to close.
        self._owned_request_log = False

    # -- opening ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        scheme: str = "interval",
        shards: int = 4,
        placement: str = "hash",
        profile: str = "durable",
        pool_size: int = 4,
        acquire_timeout: float = 1.0,
        max_workers: int | None = None,
        max_in_flight: int = 32,
        default_deadline: float | None = None,
        on_shard_error: str = "fail",
        tracer: Tracer | None = None,
        retry=None,
        lint: str = "default",
        fault_policy=None,
        replicas: int = 0,
        replica_pool_size: int = 2,
        read_from: str = "primary",
        request_log: RequestLog | None = None,
        **scheme_kwargs,
    ) -> "ShardedStore":
        """Open (creating if needed) a sharded store under *directory*.

        *shards*/*placement*/*scheme* are pinned in the store's config
        on first open; reopening with different values raises.
        *fault_policy* (a
        :class:`~repro.reliability.faults.ShardFaultPolicy`) wires both
        the writer connections and the read pools through
        fault-injecting connections, so crash sweeps reach the update,
        rebalance, and replica-ship paths.  *replicas* creates that many
        snapshot-shipped read replicas per shard (served once
        :meth:`ship_replicas` runs); *read_from* sets the default read
        routing (``"primary"`` / ``"replica"``).  *request_log* attaches
        a wide-event sink: one structured record per query/update (see
        :class:`~repro.obs.events.RequestLog`).  *retry* backs off
        transient busy errors on writers **and** fresh-connection health
        failures in the read pools.  Remaining arguments parallel
        :meth:`XmlRelStore.open`; ``scheme_kwargs`` pass to the scheme.

        Crash recovery (:meth:`recover`) runs before the store is
        returned: interrupted rebalances are rolled back or forward,
        orphans swept, stale replica temporaries removed.
        """
        if shards < 1:
            raise StorageError("shard count must be >= 1")
        if replicas < 0:
            raise StorageError("replica count must be >= 0")
        if placement not in PLACEMENTS:
            raise StorageError(
                f"unknown placement {placement!r}; available: "
                + ", ".join(PLACEMENTS)
            )
        scheme_class(scheme)  # fail fast on unknown scheme names
        os.makedirs(directory, exist_ok=True)
        catalog_db = Database(
            os.path.join(directory, "catalog.db"),
            profile=profile,
            check_same_thread=False,
            lint="off",
        )
        pin_shard_config(catalog_db, scheme, shards, placement)
        shard_map = ShardMap(catalog_db)
        shard_state = ShardState(catalog_db, shards)
        journal = RebalanceJournal(catalog_db)
        metrics = tracer.metrics if tracer is not None else MetricsRegistry()
        the_tracer = tracer if tracer is not None else NULL_TRACER
        writers = []
        pools: dict[int, ConnectionPool] = {}
        replica_sets: dict[int, ReplicaSet] = {}
        for shard in range(shards):
            path = os.path.join(directory, f"shard-{shard:02d}.db")
            writer_factory = (
                fault_policy.factory(shard) if fault_policy else Database
            )
            db = writer_factory(
                path, profile=profile, retry=retry, tracer=the_tracer,
                lint=lint, check_same_thread=False,
            )
            writers.append(
                XmlRelStore(db, create_scheme(scheme, db, **scheme_kwargs))
            )
            pools[shard] = ConnectionPool(
                path,
                scheme,
                size=pool_size,
                acquire_timeout=acquire_timeout,
                profile=profile,
                lint="off",
                name=f"shard{shard}",
                metrics=metrics,
                database_factory=(
                    fault_policy.factory(shard) if fault_policy else None
                ),
                scheme_kwargs=scheme_kwargs,
                retry=retry,
                tracer=the_tracer if the_tracer.enabled else None,
            )
            if replicas:
                replica_sets[shard] = ReplicaSet(
                    shard,
                    directory,
                    replicas,
                    scheme,
                    pool_size=replica_pool_size,
                    acquire_timeout=acquire_timeout,
                    profile=profile,
                    metrics=metrics,
                    fault_policy=fault_policy,
                    scheme_kwargs=scheme_kwargs,
                    retry=retry,
                    tracer=the_tracer if the_tracer.enabled else None,
                )
        executor = QueryExecutor(
            pools,
            max_workers=max_workers,
            max_in_flight=max_in_flight,
            default_deadline=default_deadline,
            on_shard_error=on_shard_error,
            metrics=metrics,
            tracer=the_tracer,
            read_from=read_from,
            shard_state=shard_state,
            request_log=request_log,
        )
        store = cls(
            directory,
            catalog_db,
            shard_map,
            writers,
            pools,
            executor,
            placement,
            metrics,
            the_tracer,
            shard_state=shard_state,
            journal=journal,
            replica_sets=replica_sets,
            fault_policy=fault_policy,
        )
        store.recover()
        return store

    # -- placement ----------------------------------------------------------------

    def place(self, name: str) -> int:
        """The shard that owns (or would own) a document named *name*."""
        if self.placement == "hash":
            return zlib.crc32(name.encode("utf-8")) % len(self.writers)
        shard = self._rr_counter % len(self.writers)
        return shard

    # -- write plumbing -----------------------------------------------------------

    @property
    def request_log(self) -> RequestLog | None:
        """The wide-event sink shared with the executor (None when the
        store runs without one)."""
        return self.executor.request_log

    @contextmanager
    def _observed_update(self, op: str, **fields):
        """Outcome accounting + one wide event around a write operation.

        The write-side twin of the executor's ``_finish_query``: every
        exit (commit or raise) lands in ``serve.update_seconds`` with an
        outcome dimension, and — when a request log is attached — emits
        one ``update`` event with the operation, target, and error.
        """
        started = time.perf_counter()
        outcome = "error"
        error_text: str | None = None
        try:
            yield
            outcome = "ok"
        except BaseException as error:
            error_text = f"{type(error).__name__}: {error}"
            raise
        finally:
            elapsed = time.perf_counter() - started
            self.metrics.histogram("serve.update_seconds").observe(elapsed)
            self.metrics.histogram(
                f"serve.update_seconds.{outcome}"
            ).observe(elapsed)
            self.metrics.counter(f"serve.update.outcome.{outcome}").inc()
            log = self.request_log
            if log is not None:
                event = {
                    "event": "update",
                    "op": op,
                    "request_id": self.tracer.capture().request_id,
                    "ts": time.time(),
                    "outcome": outcome,
                    "elapsed_seconds": elapsed,
                    **fields,
                }
                if error_text is not None:
                    event["error"] = error_text
                log.emit(event)

    def _post_write(self, shard: int) -> None:
        """Bookkeeping after one committed write to *shard* (shard lock
        held): bump the persistent write sequence (the replica
        staleness denominator) and — only for schemes whose
        translations depend on stored data (universal's label columns,
        binary's partition tables) — bump the shard-local plan epoch so
        this shard's pooled readers stop using stale cached plans.
        Other shards' caches are never touched.
        """
        with self._map_lock:
            self.shard_state.bump_write(shard)
        if self.writers[shard].scheme.translation_depends_on_data:
            self.pools[shard].bump_epoch()

    @contextmanager
    def _owning_shard(self, doc_id: int):
        """Resolve *doc_id* and hold its shard's writer lock.

        Re-resolves under the lock: a concurrent rebalance may have
        moved the document between resolution and acquisition, in which
        case the loop chases it to its new shard.
        """
        while True:
            record = self.shard_map.resolve(doc_id)
            with self._shard_locks[record.shard]:
                current = self.shard_map.resolve(doc_id)
                if current.shard == record.shard:
                    yield current
                    return
            # Moved mid-acquire; chase it.

    # -- storing ------------------------------------------------------------------

    def store(self, document: Document, name: str = "document") -> int:
        """Shred *document* onto its shard; returns the global doc id.

        Shard rows commit before the map entry registers — a crash
        between the two leaves an orphan for :meth:`recover` to sweep,
        never a map entry pointing at nothing.
        """
        with self._observed_update("store", name=name):
            with self._map_lock:
                shard = self.place(name)
                self._rr_counter += 1
            with self._shard_locks[shard]:
                local = self.writers[shard].store(document, name)
                with self._map_lock:
                    doc_id = self.shard_map.register(shard, local, name)
                self._post_write(shard)
            self.metrics.counter("serve.documents_stored").inc()
            return doc_id

    def store_text(self, text: str, name: str = "document") -> int:
        return self.store(
            parse_document(text, ParseOptions(keep_whitespace=True)), name
        )

    def store_many(
        self,
        documents: list[Document],
        names: list[str] | None = None,
    ) -> list[int]:
        """Store many documents, bulk-loading per shard.

        Documents are partitioned by placement, each shard's batch goes
        through that writer's bulk session (one transaction, one
        ANALYZE), then the shard map is registered in input order so
        global ids stay store-ordered.
        """
        if names is not None and len(names) != len(documents):
            raise StorageError(
                f"{len(documents)} document(s) but {len(names)} name(s)"
            )
        with self._map_lock:
            placed: list[tuple[int, str]] = []
            batches: dict[int, list[tuple[int, Document, str]]] = {}
            for position, document in enumerate(documents):
                name = (
                    names[position] if names is not None
                    else f"document-{position}"
                )
                shard = self.place(name)
                self._rr_counter += 1
                placed.append((shard, name))
                batches.setdefault(shard, []).append(
                    (position, document, name)
                )
        locals_by_position: dict[int, int] = {}
        for shard, batch in batches.items():
            with self._shard_locks[shard]:
                with self.writers[shard].bulk_session() as session:
                    for position, document, name in batch:
                        result = session.store(document, name)
                        locals_by_position[position] = result.doc_id
                self._post_write(shard)
        with self._map_lock:
            doc_ids = [
                self.shard_map.register(
                    shard, locals_by_position[position], name
                )
                for position, (shard, name) in enumerate(placed)
            ]
        self.metrics.counter("serve.documents_stored").inc(len(documents))
        return doc_ids

    def _corpus_events(self, source, keep_whitespace: bool):
        """Event stream of one corpus payload: a parsed
        :class:`Document` replays through ``stream_events``; XML text,
        open file objects, and paths go through the pull parser without
        ever materializing a tree."""
        if isinstance(source, Document):
            return stream_events(source)
        return parse_events(
            source, ParseOptions(keep_whitespace=keep_whitespace)
        )

    def store_corpus(
        self,
        sources,
        names: list[str] | None = None,
        queue_depth: int = 8,
        keep_whitespace: bool = True,
    ) -> list[int]:
        """Stream a corpus into all shards concurrently.

        *sources* is any iterable of payloads — XML text, open file
        objects, filesystem paths, or already-parsed
        :class:`~repro.xml.dom.Document` objects; it is consumed
        lazily, so a generator over a multi-gigabyte corpus never has
        more than ``shards × queue_depth`` payloads in flight.  Each
        shard gets one loader thread running the streaming shredder
        inside that writer's bulk session (one transaction, one
        ANALYZE), so N shards parse and insert concurrently while the
        bounded per-shard queues push back on the producer.

        Atomicity matches :meth:`store_many`: shard-map entries
        register only after **every** shard committed, so any failure
        (including an injected crash) leaves zero registered documents
        and only orphans that :meth:`recover` sweeps — never a map
        entry pointing at missing rows.

        Returns global doc ids in input order.
        """
        if (names is not None and hasattr(sources, "__len__")
                and len(names) != len(sources)):
            raise StorageError(
                f"{len(sources)} document(s) but {len(names)} name(s)"
            )
        sentinel = object()
        queues: dict[int, queue_module.Queue] = {}
        threads: dict[int, threading.Thread] = {}
        errors: dict[int, BaseException] = {}
        locals_by_position: dict[int, int] = {}
        placed: list[tuple[int, str]] = []
        captured = self.tracer.capture()
        depth_gauge = self.metrics.gauge("ingest.queue_depth")
        docs_counter = self.metrics.counter("ingest.documents")
        rows_counter = self.metrics.counter("ingest.rows")

        def worker(shard: int) -> None:
            shard_queue = queues[shard]
            consumed_sentinel = False
            load_seconds = self.metrics.histogram(
                f"ingest.shard{shard}.load_seconds"
            )
            try:
                with self.tracer.adopt(captured), \
                        self.tracer.span("ingest_shard") as span:
                    loaded = 0
                    with self._shard_locks[shard]:
                        with self.writers[shard].bulk_session() as session:
                            while True:
                                # Waiting for work under the shard lock
                                # is the design: the lock *is* the
                                # single-writer serialization for the
                                # whole bulk session, and the bounded
                                # queue provides the backpressure.
                                # lint: allow(C002)
                                item = shard_queue.get()
                                if item is sentinel:
                                    consumed_sentinel = True
                                    break
                                depth_gauge.add(-1)
                                position, name, source = item
                                started = time.perf_counter()
                                result = session.store_stream(
                                    self._corpus_events(
                                        source, keep_whitespace
                                    ),
                                    name,
                                )
                                load_seconds.observe(
                                    time.perf_counter() - started
                                )
                                locals_by_position[position] = result.doc_id
                                loaded += 1
                                docs_counter.inc()
                                rows_counter.inc(
                                    sum(result.row_counts.values())
                                )
                        self._post_write(shard)
                    if span:
                        span.set(shard=shard, documents=loaded)
            except BaseException as error:  # noqa: BLE001 — reported to caller
                errors[shard] = error
                # Keep the producer from blocking on a full queue: eat
                # the backlog (and the sentinel, unless already taken).
                while not consumed_sentinel:
                    if shard_queue.get() is sentinel:
                        consumed_sentinel = True
                    else:
                        depth_gauge.add(-1)

        with self._observed_update("load", queue_depth=queue_depth):
            # Bulk-load GC stance: the streaming shredder allocates
            # millions of short-lived, cycle-free tuples per document,
            # and every generational sweep stops all loader threads.
            # Collect once up front, switch the cycle detector off for
            # the load, and restore it afterwards.
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.collect()
                gc.disable()
            try:
                for position, source in enumerate(sources):
                    name = (
                        names[position] if names is not None
                        else f"document-{position}"
                    )
                    with self._map_lock:
                        shard = self.place(name)
                        self._rr_counter += 1
                    placed.append((shard, name))
                    shard_queue = queues.get(shard)
                    if shard_queue is None:
                        shard_queue = queue_module.Queue(maxsize=queue_depth)
                        queues[shard] = shard_queue
                        thread = threading.Thread(
                            target=worker,
                            args=(shard,),
                            name=f"ingest-shard-{shard}",
                            daemon=True,
                        )
                        threads[shard] = thread
                        thread.start()
                    depth_gauge.add(1)
                    shard_queue.put((position, name, source))
                    if errors:
                        break  # a shard already failed; stop feeding
            finally:
                for shard_queue in queues.values():
                    shard_queue.put(sentinel)
                for thread in threads.values():
                    thread.join()
                if gc_was_enabled:
                    gc.enable()
            if errors:
                raise errors[min(errors)]
            with self._map_lock:
                doc_ids = [
                    self.shard_map.register(
                        shard, locals_by_position[position], name
                    )
                    for position, (shard, name) in enumerate(placed)
                ]
            self.metrics.counter("serve.documents_stored").inc(len(doc_ids))
            return doc_ids

    def delete(self, doc_id: int) -> None:
        """Remove a document from its shard and the shard map.

        The map entry goes first: a crash before the rows are gone
        leaves an orphan (swept by :meth:`recover`), never a map entry
        resolving to missing rows.
        """
        with self._observed_update("delete", doc_id=doc_id):
            with self._owning_shard(doc_id) as record:
                with self._map_lock:
                    self.shard_map.remove(doc_id)
                self.writers[record.shard].delete(record.local_doc_id)
                self._post_write(record.shard)

    # -- updates ------------------------------------------------------------------

    @property
    def supports_updates(self) -> bool:
        """True when the store's scheme implements subtree updates."""
        return updates_module.supports_updates(self.writers[0].scheme)

    def insert_subtree(
        self,
        doc_id: int,
        parent_pre: int,
        fragment: Element,
        index: int = 0,
    ) -> UpdateStats:
        """Insert *fragment* under node *parent_pre* of one document.

        Serialized by the shard's single-writer lock; the update's
        internal transactions run as savepoints inside one outer writer
        transaction, so a fault at any statement rolls the whole update
        back while pooled readers keep serving the pre-update state.
        """
        with self._observed_update(
            "insert_subtree", doc_id=doc_id, parent_pre=parent_pre
        ):
            with self._owning_shard(doc_id) as record:
                writer = self.writers[record.shard]
                with writer.db.transaction():
                    stats = updates_module.insert_subtree(
                        writer.scheme,
                        record.local_doc_id,
                        parent_pre,
                        fragment,
                        index,
                    )
                self._post_write(record.shard)
            self.metrics.counter("serve.subtree_inserts").inc()
            return stats

    def delete_subtree(self, doc_id: int, pre: int) -> UpdateStats:
        """Delete the subtree rooted at node *pre* of one document.

        Same serialization and atomicity contract as
        :meth:`insert_subtree`.
        """
        with self._observed_update(
            "delete_subtree", doc_id=doc_id, pre=pre
        ):
            with self._owning_shard(doc_id) as record:
                writer = self.writers[record.shard]
                with writer.db.transaction():
                    stats = updates_module.delete_subtree(
                        writer.scheme, record.local_doc_id, pre
                    )
                self._post_write(record.shard)
            self.metrics.counter("serve.subtree_deletes").inc()
            return stats

    # -- rebalancing --------------------------------------------------------------

    def rebalance(self, doc_id: int, to_shard: int) -> ShardedDocument:
        """Move one document to *to_shard* while reads continue.

        Copy-then-flip, journaled: the destination copy commits first,
        the shard map flips in one catalog transaction with the journal
        advance, then the source copy is dropped.  Readers resolve the
        map, so they see the old copy until the flip and the new copy
        after — never neither, never both.  A crash at any statement
        leaves a journal state :meth:`recover` repairs.
        """
        if not 0 <= to_shard < len(self.writers):
            raise StorageError(
                f"no shard {to_shard} (store has {len(self.writers)})"
            )
        with self._observed_update(
            "rebalance", doc_id=doc_id, to_shard=to_shard
        ):
            while True:
                record = self.shard_map.resolve(doc_id)
                if record.shard == to_shard:
                    return record  # already home
                first, second = sorted((record.shard, to_shard))
                with self._shard_locks[first]:
                    with self._shard_locks[second]:
                        current = self.shard_map.resolve(doc_id)
                        if current.shard != record.shard:
                            continue  # moved underneath us; chase it
                        self._rebalance_locked(current, to_shard)
                        moved = self.shard_map.resolve(doc_id)
                self.metrics.counter("serve.rebalances").inc()
                return moved

    def _rebalance_locked(
        self, record: ShardedDocument, to_shard: int
    ) -> None:
        """The move protocol, with both shard locks held."""
        from_shard, from_local = record.shard, record.local_doc_id
        with self._map_lock:
            journal_id = self.journal.begin(
                record.doc_id, from_shard, from_local, to_shard, record.name
            )
        # 1. Copy: reconstruct from the source writer, commit at the
        #    destination.  A crash here leaves state "copying" — the
        #    map never learned of the copy, so recovery rolls back.
        document = self.writers[from_shard].reconstruct(from_local)
        to_local = self.writers[to_shard].store(document, record.name)
        with self._map_lock:
            self.journal.mark_copied(journal_id, to_local)
        # 2. Flip: map move + journal advance in ONE catalog
        #    transaction — the atomic commit point of the whole move.
        with self._map_lock:
            with self.catalog_db.transaction():
                self.shard_map.move(record.doc_id, to_shard, to_local)
                self.journal.mark_flipped(journal_id)
        # 3. Drop the source copy.  A crash here leaves "flipped" —
        #    recovery just repeats this step.
        self.writers[from_shard].delete(from_local)
        with self._map_lock:
            self.journal.finish(journal_id)
        self._post_write(from_shard)
        self._post_write(to_shard)

    def rebalance_shard(
        self, from_shard: int, to_shard: int, count: int | None = None
    ) -> list[int]:
        """Move up to *count* documents (default: enough to even the
        pair) from one shard to another; returns the moved doc ids."""
        counts = self.shard_counts()
        if count is None:
            count = max(0, (counts[from_shard] - counts[to_shard]) // 2)
        moved = []
        for global_doc, _ in sorted(
            self.shard_map.docs_for_shard(from_shard)
        )[:count]:
            self.rebalance(global_doc, to_shard)
            moved.append(global_doc)
        return moved

    # -- crash recovery -----------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Repair whatever a crash left behind.

        Journal rows roll back (``copying``) or forward (``copied`` /
        ``flipped``); orphaned shard documents (committed rows no map
        entry references — interrupted stores, deletes, or rolled-back
        moves) are swept; stale replica-ship temporaries are removed.
        Runs automatically at :meth:`open`; callable any time the store
        is quiesced.
        """
        for lock in self._shard_locks:
            lock.acquire()
        try:
            return self._recover_locked()
        finally:
            for lock in reversed(self._shard_locks):
                lock.release()

    def _recover_locked(self) -> RecoveryReport:
        rolled_back: list[int] = []
        rolled_forward: list[int] = []
        cleaned_up: list[int] = []
        touched: set[int] = set()
        with self._map_lock:
            entries = self.journal.pending()
        for entry in entries:
            if entry.state == "copying":
                # The map never learned of the copy; drop the journal
                # row and let the orphan sweep collect any committed
                # destination rows.
                with self._map_lock:
                    self.journal.finish(entry.journal_id)
                rolled_back.append(entry.doc_id)
                touched.add(entry.to_shard)
            elif entry.state == "copied":
                # The destination copy committed and is journaled —
                # finish the move: flip, drop the source.
                with self._map_lock:
                    with self.catalog_db.transaction():
                        self.shard_map.move(
                            entry.doc_id, entry.to_shard, entry.to_local
                        )
                        self.journal.mark_flipped(entry.journal_id)
                self._drop_source_copy(entry)
                with self._map_lock:
                    self.journal.finish(entry.journal_id)
                rolled_forward.append(entry.doc_id)
                touched.update((entry.from_shard, entry.to_shard))
            elif entry.state == "flipped":
                # The map already points at the destination; only the
                # source copy may remain.
                self._drop_source_copy(entry)
                with self._map_lock:
                    self.journal.finish(entry.journal_id)
                cleaned_up.append(entry.doc_id)
                touched.add(entry.from_shard)
        orphans: list[tuple[int, int]] = []
        for shard, writer in enumerate(self.writers):
            mapped = {
                local
                for _, local in self.shard_map.docs_for_shard(shard)
            }
            for record in writer.documents():
                if record.doc_id not in mapped:
                    writer.delete(record.doc_id)
                    orphans.append((shard, record.doc_id))
                    touched.add(shard)
        tmp_removed = sum(
            replica_set.sweep_tmp()
            for replica_set in self.replica_sets.values()
        )
        for shard in sorted(touched):
            self._post_write(shard)
        report = RecoveryReport(
            rolled_back=tuple(rolled_back),
            rolled_forward=tuple(rolled_forward),
            cleaned_up=tuple(cleaned_up),
            orphans_removed=tuple(orphans),
            tmp_files_removed=tmp_removed,
        )
        if report.acted:
            self.metrics.counter("serve.recoveries").inc()
        return report

    def _drop_source_copy(self, entry) -> None:
        try:
            self.writers[entry.from_shard].delete(entry.from_local)
        except DocumentNotFoundError:
            pass  # the crash interrupted us after this very step

    # -- replicas -----------------------------------------------------------------

    def ship_replicas(self, shard: int | None = None) -> dict[int, list[int]]:
        """Snapshot-ship each shard's primary to its replicas.

        Holds the shard's writer lock for the duration, so the shipped
        write sequence is exact; reads keep flowing.  Returns the
        shipped replica indices per shard.  A crash mid-ship leaves the
        previous replica files intact plus at worst one stale temporary
        (swept by :meth:`recover`).
        """
        if shard is not None and shard not in self.replica_sets:
            raise StorageError(f"shard {shard} has no replicas configured")
        targets = (
            [shard] if shard is not None else sorted(self.replica_sets)
        )
        shipped: dict[int, list[int]] = {}
        for target in targets:
            replica_set = self.replica_sets[target]
            with self._shard_locks[target]:
                seq = self.shard_state.write_seq(target)
                indices: list[int] = []
                try:
                    for replica in range(replica_set.count):
                        replica_set.ship_one(
                            self.writers[target].db, replica
                        )
                        with self._map_lock:
                            self.shard_state.record_ship(
                                target, replica, seq
                            )
                        indices.append(replica)
                finally:
                    pools = replica_set.shipped_pools()
                    if pools:
                        self.executor.replica_pools[target] = pools
            shipped[target] = indices
        return shipped

    def replica_staleness(self) -> dict[int, dict[int, tuple[int, float]]]:
        """Per shard, per replica: ``(lag_writes, age_seconds)`` of the
        last shipped snapshot (replicas never shipped are absent)."""
        out: dict[int, dict[int, tuple[int, float]]] = {}
        for shard, replica_set in self.replica_sets.items():
            per: dict[int, tuple[int, float]] = {}
            for replica in range(replica_set.count):
                staleness = self.shard_state.staleness(shard, replica)
                if staleness is not None:
                    per[replica] = staleness
            out[shard] = per
        return out

    # -- catalog ------------------------------------------------------------------

    def documents(self) -> list[ShardedDocument]:
        """Shard-map rows of every stored document."""
        return self.shard_map.records()

    def resolve(self, doc_id: int) -> ShardedDocument:
        """Where *doc_id* lives (raises
        :class:`~repro.errors.DocumentNotFoundError` if unknown)."""
        return self.shard_map.resolve(doc_id)

    def shard_counts(self) -> dict[int, int]:
        """Documents per shard, zero-filled."""
        return self.shard_map.shard_counts(len(self.writers))

    @property
    def shard_count(self) -> int:
        return len(self.writers)

    # -- integrity ----------------------------------------------------------------

    def verify(self, doc_id: int) -> IntegrityReport:
        """Run the per-scheme integrity audit on one document, over a
        pooled read connection of its shard.  The report carries the
        *global* doc id and the shard it ran on."""
        record = self.shard_map.resolve(doc_id)
        report = self.executor.run_on_shard(
            record.shard,
            lambda session: session.scheme.verify_document(
                record.local_doc_id
            ),
        )
        report.doc_id = doc_id
        report.shard = record.shard
        return report

    def verify_all(self) -> dict[int, list[IntegrityReport]]:
        """Audit every document of every shard, plus one placement
        report per shard (orphans, dangling map entries, leftover
        journal rows).  Returns reports grouped by shard."""
        results: dict[int, list[IntegrityReport]] = {}
        for shard in range(len(self.writers)):
            reports = [
                self.verify(global_doc)
                for global_doc, _ in sorted(
                    self.shard_map.docs_for_shard(shard)
                )
            ]
            reports.append(self._verify_placement(shard))
            results[shard] = reports
        return results

    def verify_ok(self) -> bool:
        """True when every report of :meth:`verify_all` is clean."""
        return all(
            report.ok
            for reports in self.verify_all().values()
            for report in reports
        )

    def _verify_placement(self, shard: int) -> IntegrityReport:
        """Cross-check one shard's local catalog against the shard map
        and the rebalance journal."""
        report = IntegrityReport(
            doc_id=-1, scheme=self.scheme_name, shard=shard
        )
        mapped = {
            local for _, local in self.shard_map.docs_for_shard(shard)
        }
        stored = {
            record.doc_id for record in self.writers[shard].documents()
        }
        report.ran("placement.no-orphans")
        for local in sorted(stored - mapped):
            report.add(
                "placement.no-orphans",
                f"shard {shard} stores local doc {local} that no shard-map "
                f"entry references",
            )
        report.ran("placement.no-dangling")
        for local in sorted(mapped - stored):
            report.add(
                "placement.no-dangling",
                f"shard map references local doc {local} missing from "
                f"shard {shard}",
            )
        report.ran("placement.journal-empty")
        with self._map_lock:
            entries = self.journal.pending()
        for entry in entries:
            if shard in (entry.from_shard, entry.to_shard):
                report.add(
                    "placement.journal-empty",
                    f"unfinished rebalance of doc {entry.doc_id} "
                    f"({entry.from_shard}→{entry.to_shard}, "
                    f"state {entry.state!r}); run recover()",
                )
        return report

    # -- querying -----------------------------------------------------------------

    def query_pres(
        self,
        doc_id: int,
        xpath: str,
        deadline: float | None = None,
        read_from: str | None = None,
    ) -> list[int]:
        """Matching node ids of one document — pruned to its shard,
        executed on a pooled read connection."""
        record = self.shard_map.resolve(doc_id)
        result = self.executor.query(
            xpath,
            {record.shard: [(doc_id, record.local_doc_id)]},
            deadline=deadline,
            read_from=read_from,
        )
        return result.pres

    def query(
        self, doc_id: int, xpath: str, deadline: float | None = None
    ) -> list[Node]:
        """Matching nodes of one document, reconstructed over a pooled
        read connection (admission-gated like every serving read)."""
        record = self.shard_map.resolve(doc_id)
        return self.executor.run_on_shard(
            record.shard,
            lambda session: session.scheme.query_nodes(
                record.local_doc_id, xpath
            ),
            timeout=deadline,
        )

    def query_xml(
        self, doc_id: int, xpath: str, deadline: float | None = None
    ) -> list[str]:
        """Matching nodes of one document as serialized fragments."""
        return [
            serialize(node)
            for node in self.query(doc_id, xpath, deadline=deadline)
        ]

    def query_all(
        self,
        xpath: str,
        deadline: float | None = None,
        read_from: str | None = None,
    ) -> ScatterResult:
        """Scatter *xpath* to every shard; gather ``(doc_id, pre)``
        rows merged in (document, document-order).  Every shard is
        queried — including empty ones, which simply contribute nothing.
        """
        targets = {
            shard: self.shard_map.docs_for_shard(shard)
            for shard in self.pools
        }
        return self.executor.query(
            xpath, targets, deadline=deadline, read_from=read_from
        )

    def query_report(
        self,
        doc_id: int,
        xpath: str,
        read_from: str | None = None,
    ) -> QueryReport:
        """The full per-query cost record for one doc-scoped query,
        annotated with where it was served from and — when a replica
        answered — the staleness bound of that answer."""
        record = self.shard_map.resolve(doc_id)
        route = (
            self.executor.read_from if read_from is None else read_from
        )
        report, replica = self.executor.run_on_shard_routed(
            record.shard,
            lambda session: build_query_report(
                session.db, session.scheme, record.local_doc_id, xpath
            ),
            read_from=route,
        )
        lag = age = None
        if replica is not None:
            staleness = self.shard_state.staleness(record.shard, replica)
            if staleness is not None:
                lag, age = staleness
        return replace(
            report,
            read_from="replica" if replica is not None else "primary",
            replica_lag_writes=lag,
            replica_age_seconds=age,
        )

    def reconstruct(self, doc_id: int) -> Document:
        """Rebuild one document from its shard."""
        record = self.shard_map.resolve(doc_id)
        return self.executor.run_on_shard(
            record.shard,
            lambda session: session.scheme.reconstruct(
                record.local_doc_id
            ),
        )

    def reconstruct_xml(self, doc_id: int) -> str:
        return serialize(self.reconstruct(doc_id))

    # -- operations surface -------------------------------------------------------

    #: Outcomes counted against the availability budget: sheds, misses,
    #: and failures all consume it; ``ok``/``partial`` do not.
    _BUDGET_ERRORS = {
        "query": ("overloaded", "deadline_exceeded", "shard_error",
                  "error"),
        "update": ("error",),
    }

    def _error_budget(
        self, window_seconds: float = 60.0, budget: float = 0.01
    ) -> dict:
        """Per op class: request/error counts over the window and the
        *burn rate* — error ratio over the allowed ratio (1.0 means
        exactly spending the budget; >1 means burning ahead of it)."""
        out = {}
        for op, error_outcomes in self._BUDGET_ERRORS.items():
            good_outcomes = ("ok", "partial") if op == "query" else ("ok",)
            errors = sum(
                self.metrics.counter_window_count(
                    f"serve.{op}.outcome.{outcome}", window_seconds
                )
                for outcome in error_outcomes
            )
            total = errors + sum(
                self.metrics.counter_window_count(
                    f"serve.{op}.outcome.{outcome}", window_seconds
                )
                for outcome in good_outcomes
            )
            error_rate = (errors / total) if total else 0.0
            out[op] = {
                "window_seconds": window_seconds,
                "requests": total,
                "errors": errors,
                "error_rate": error_rate,
                "budget": budget,
                "burn_rate": (error_rate / budget) if budget else 0.0,
            }
        return out

    def health(self, window_seconds: float = 60.0) -> dict:
        """Liveness and load: per-shard pool reachability, document
        counts, replica staleness, in-flight occupancy, and error-budget
        burn per operation class.

        ``status`` is ``"ok"`` unless some shard is down (``"degraded"``)
        — a busy shard (pool momentarily exhausted) stays ``ok``: it is
        serving, just saturated.  The ops endpoint maps non-ok statuses
        to HTTP 503.
        """
        counts = self.shard_counts()
        staleness = self.replica_staleness() if self.replica_sets else {}
        shards = []
        status = "ok"
        for shard in range(len(self.writers)):
            pool = self.pools[shard]
            shard_status = "ok"
            try:
                # One cheap acquire proves the shard file answers; a
                # short timeout keeps scrapes from queueing behind load.
                with pool.connection(timeout=0.05):
                    pass
            except Overloaded:
                shard_status = "busy"
            except Exception:
                # StorageError, sqlite errors, injected faults — a probe
                # that cannot even acquire a connection is a down shard.
                shard_status = "down"
                status = "degraded"
            entry: dict = {
                "shard": shard,
                "status": shard_status,
                "docs": counts.get(shard, 0),
                "pool": pool.stats(),
            }
            per_replica = staleness.get(shard)
            if per_replica:
                entry["max_replica_lag_writes"] = max(
                    lag for lag, _ in per_replica.values()
                )
                entry["max_replica_age_seconds"] = max(
                    age for _, age in per_replica.values()
                )
            shards.append(entry)
        return {
            "status": status,
            "scheme": self.scheme_name,
            "shards": shards,
            "in_flight": {
                "value": self.metrics.gauge("serve.in_flight").value,
                "limit": self.executor.max_in_flight,
            },
            "error_budget": self._error_budget(window_seconds),
        }

    def _ops_state(self) -> dict:
        """Static-ish store facts for the ``/snapshot`` document."""
        return {
            "directory": self.directory,
            "scheme": self.scheme_name,
            "placement": self.placement,
            "shards": len(self.writers),
            "documents": len(self.shard_map),
            "shard_counts": self.shard_counts(),
            "replicas": {
                shard: replica_set.count
                for shard, replica_set in self.replica_sets.items()
            },
        }

    def serve_ops(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        windows: tuple[float, ...] = (60.0,),
    ) -> OpsServer:
        """Start (or return) the embedded ops endpoint for this store.

        Serves ``/metrics`` (Prometheus text), ``/snapshot`` (JSON), and
        ``/healthz`` on a daemon thread; ``python -m repro.obs.top --url
        <server.url>`` renders it live.  When the store has no request
        log yet, an in-memory one is attached so ``/snapshot`` can show
        recent requests.  Stopped by :meth:`close` (or ``.stop()``).
        """
        if self._ops_server is not None:
            return self._ops_server
        if self.executor.request_log is None:
            self.executor.request_log = RequestLog(capacity=1024)
            self._owned_request_log = True
        self._ops_server = OpsServer(
            self.metrics,
            health_fn=self.health,
            snapshot_fn=self._ops_state,
            request_log=self.executor.request_log,
            host=host,
            port=port,
            windows=windows,
        )
        return self._ops_server

    def serve_gateway(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs,
    ):
        """Start (or return) the HTTP/JSON query gateway for this store.

        The network front door (:class:`~repro.serve.gateway.Gateway`):
        ``/query`` (materialized JSON or streamed NDJSON), ``/healthz``,
        ``/stats``, with per-client admission quotas layered on the
        executor's global gate.  Extra *kwargs* (``quota_rate``,
        ``default_deadline``, ``analyzer``, ...) pass through to the
        gateway constructor.  When the store has no request log yet, an
        in-memory one is attached so gateway wide events have a sink.
        Stopped by :meth:`close` (or ``.stop()``).
        """
        if self._gateway is not None:
            return self._gateway
        from repro.serve.gateway import Gateway

        if self.executor.request_log is None:
            self.executor.request_log = RequestLog(capacity=1024)
            self._owned_request_log = True
        self._gateway = Gateway(self, host=host, port=port, **kwargs)
        self._gateway.start()
        return self._gateway

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._gateway is not None:
            self._gateway.stop()
            self._gateway = None
        if self._ops_server is not None:
            self._ops_server.stop()
            self._ops_server = None
        if self._owned_request_log and self.executor.request_log is not None:
            self.executor.request_log.close()
        self.executor.close()
        for pool in self.pools.values():
            pool.close()
        for replica_set in self.replica_sets.values():
            replica_set.close()
        for writer in self.writers:
            writer.close()
        self.catalog_db.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_sharded(directory: str, **kwargs) -> ShardedStore:
    """Module-level convenience alias of :meth:`ShardedStore.open`."""
    return ShardedStore.open(directory, **kwargs)
