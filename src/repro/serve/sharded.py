"""Document sharding across per-shard SQLite files.

A :class:`ShardedStore` partitions documents across N shard databases
(``shard-00.db`` … ``shard-NN.db`` inside one directory) behind the
familiar :class:`~repro.core.store.XmlRelStore` surface:

.. code-block:: python

    from repro.serve import ShardedStore

    with ShardedStore.open("catalog.d", scheme="interval", shards=4) as s:
        doc_id = s.store_text("<bib>...</bib>", name="bib-1")
        s.query_pres(doc_id, "/bib/book/title")     # pruned to 1 shard
        s.query_all("//book[@year = '2000']")        # scatter-gather

Each shard is a complete single-store database (same scheme, own
catalog, own WAL), written through one writer connection per shard and
read through a per-shard :class:`~repro.serve.pool.ConnectionPool` of
read-only connections — WAL journaling is what lets the readers proceed
while a writer commits.

**Shard map.**  Document placement lives in a small catalog database
(``catalog.db``) holding the ``xmlrel_shard_map`` table: global doc id
→ ``(shard, local_doc_id, name)``.  Global ids are issued by this
table's rowid, so they are dense and store-ordered; the per-shard local
ids never leak to callers.  The map is mirrored in memory (guarded by a
lock) so query routing never touches SQLite.  A config table pins
``scheme``/``shards``/``placement``, making a reopen with different
parameters a loud error instead of silent misrouting.

**Placement.**  ``hash`` (default) places by CRC32 of the document
name — deterministic across processes (Python's ``hash`` is
per-process salted, which would scatter a reopened store differently);
``round_robin`` cycles shards in store order for maximally even counts.

Writes take a store-wide lock (one writer — the scatter-gather layer
is about *read* concurrency); reads go through the
:class:`~repro.serve.executor.QueryExecutor` and are limited only by
its admission gate and the pool sizes.
"""

from __future__ import annotations

import os
import threading
import zlib

from repro.core.registry import create_scheme, scheme_class
from repro.core.store import XmlRelStore
from repro.errors import StorageError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.relational.database import Database
from repro.relational.shardmap import (
    ShardedDocument,
    ShardMap,
    pin_shard_config,
)
from repro.serve.executor import QueryExecutor, ScatterResult
from repro.serve.pool import ConnectionPool
from repro.xml.dom import Document, Node
from repro.xml.parser import ParseOptions, parse_document
from repro.xml.serialize import serialize

#: Document-placement strategies.
PLACEMENTS = ("hash", "round_robin")


class ShardedStore:
    """N single-scheme stores behind one facade, served concurrently."""

    def __init__(
        self,
        directory: str,
        catalog_db: Database,
        shard_map: ShardMap,
        writers: list[XmlRelStore],
        pools: dict[int, ConnectionPool],
        executor: QueryExecutor,
        placement: str,
        metrics: MetricsRegistry,
        tracer: Tracer,
    ) -> None:
        self.directory = directory
        self.catalog_db = catalog_db
        self.shard_map = shard_map
        self.writers = writers
        self.pools = pools
        self.executor = executor
        self.placement = placement
        self.metrics = metrics
        self.tracer = tracer
        self.scheme_name = writers[0].scheme.name
        self._write_lock = threading.Lock()
        self._rr_counter = len(shard_map)

    # -- opening ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        scheme: str = "interval",
        shards: int = 4,
        placement: str = "hash",
        profile: str = "durable",
        pool_size: int = 4,
        acquire_timeout: float = 1.0,
        max_workers: int | None = None,
        max_in_flight: int = 32,
        default_deadline: float | None = None,
        on_shard_error: str = "fail",
        tracer: Tracer | None = None,
        retry=None,
        lint: str = "default",
        fault_policy=None,
        **scheme_kwargs,
    ) -> "ShardedStore":
        """Open (creating if needed) a sharded store under *directory*.

        *shards*/*placement*/*scheme* are pinned in the store's config
        on first open; reopening with different values raises.
        *fault_policy* (a
        :class:`~repro.reliability.faults.ShardFaultPolicy`) wires the
        read pools through fault-injecting connections so degraded
        modes are testable.  Remaining arguments parallel
        :meth:`XmlRelStore.open`; ``scheme_kwargs`` pass to the scheme.
        """
        if shards < 1:
            raise StorageError("shard count must be >= 1")
        if placement not in PLACEMENTS:
            raise StorageError(
                f"unknown placement {placement!r}; available: "
                + ", ".join(PLACEMENTS)
            )
        scheme_class(scheme)  # fail fast on unknown scheme names
        os.makedirs(directory, exist_ok=True)
        catalog_db = Database(
            os.path.join(directory, "catalog.db"),
            profile=profile,
            check_same_thread=False,
            lint="off",
        )
        pin_shard_config(catalog_db, scheme, shards, placement)
        shard_map = ShardMap(catalog_db)
        metrics = tracer.metrics if tracer is not None else MetricsRegistry()
        the_tracer = tracer if tracer is not None else NULL_TRACER
        writers = []
        pools: dict[int, ConnectionPool] = {}
        for shard in range(shards):
            path = os.path.join(directory, f"shard-{shard:02d}.db")
            db = Database(
                path, profile=profile, retry=retry, tracer=the_tracer,
                lint=lint,
            )
            writers.append(
                XmlRelStore(db, create_scheme(scheme, db, **scheme_kwargs))
            )
            pools[shard] = ConnectionPool(
                path,
                scheme,
                size=pool_size,
                acquire_timeout=acquire_timeout,
                profile=profile,
                lint="off",
                name=f"shard{shard}",
                metrics=metrics,
                database_factory=(
                    fault_policy.factory(shard) if fault_policy else None
                ),
                scheme_kwargs=scheme_kwargs,
            )
        executor = QueryExecutor(
            pools,
            max_workers=max_workers,
            max_in_flight=max_in_flight,
            default_deadline=default_deadline,
            on_shard_error=on_shard_error,
            metrics=metrics,
            tracer=the_tracer,
        )
        return cls(
            directory,
            catalog_db,
            shard_map,
            writers,
            pools,
            executor,
            placement,
            metrics,
            the_tracer,
        )

    # -- placement ----------------------------------------------------------------

    def place(self, name: str) -> int:
        """The shard that owns (or would own) a document named *name*."""
        if self.placement == "hash":
            return zlib.crc32(name.encode("utf-8")) % len(self.writers)
        shard = self._rr_counter % len(self.writers)
        return shard

    # -- storing ------------------------------------------------------------------

    def store(self, document: Document, name: str = "document") -> int:
        """Shred *document* onto its shard; returns the global doc id."""
        with self._write_lock:
            shard = self.place(name)
            local = self.writers[shard].store(document, name)
            doc_id = self.shard_map.register(shard, local, name)
            self._rr_counter += 1
            self._after_write(shard)
            self.metrics.counter("serve.documents_stored").inc()
            return doc_id

    def store_text(self, text: str, name: str = "document") -> int:
        return self.store(
            parse_document(text, ParseOptions(keep_whitespace=True)), name
        )

    def store_many(
        self,
        documents: list[Document],
        names: list[str] | None = None,
    ) -> list[int]:
        """Store many documents, bulk-loading per shard.

        Documents are partitioned by placement, each shard's batch goes
        through that writer's bulk session (one transaction, one
        ANALYZE), then the shard map is registered in input order so
        global ids stay store-ordered.
        """
        if names is not None and len(names) != len(documents):
            raise StorageError(
                f"{len(documents)} document(s) but {len(names)} name(s)"
            )
        with self._write_lock:
            placed: list[tuple[int, str]] = []
            batches: dict[int, list[tuple[int, Document, str]]] = {}
            for position, document in enumerate(documents):
                name = (
                    names[position] if names is not None
                    else f"document-{position}"
                )
                shard = self.place(name)
                self._rr_counter += 1
                placed.append((shard, name))
                batches.setdefault(shard, []).append(
                    (position, document, name)
                )
            locals_by_position: dict[int, int] = {}
            for shard, batch in batches.items():
                with self.writers[shard].bulk_session() as session:
                    for position, document, name in batch:
                        result = session.store(document, name)
                        locals_by_position[position] = result.doc_id
                self._after_write(shard)
            doc_ids = []
            for position, (shard, name) in enumerate(placed):
                doc_ids.append(
                    self.shard_map.register(
                        shard, locals_by_position[position], name
                    )
                )
            self.metrics.counter("serve.documents_stored").inc(
                len(documents)
            )
            return doc_ids

    def delete(self, doc_id: int) -> None:
        """Remove a document from its shard and the shard map."""
        with self._write_lock:
            record = self.shard_map.resolve(doc_id)
            self.writers[record.shard].delete(record.local_doc_id)
            self.shard_map.remove(doc_id)
            self._after_write(record.shard)

    def _after_write(self, shard: int) -> None:
        """Keep pooled readers' cached plans honest for schemes whose
        translations depend on stored data (universal's label columns,
        binary's partition tables): their write-side plan invalidation
        bumps an epoch the read connections never see, so the pool's
        shared cache is cleared outright."""
        if self.writers[shard].scheme.translation_depends_on_data:
            self.pools[shard].plan_cache.clear()

    # -- catalog ------------------------------------------------------------------

    def documents(self) -> list[ShardedDocument]:
        """Shard-map rows of every stored document."""
        return self.shard_map.records()

    def resolve(self, doc_id: int) -> ShardedDocument:
        """Where *doc_id* lives (raises
        :class:`~repro.errors.DocumentNotFoundError` if unknown)."""
        return self.shard_map.resolve(doc_id)

    def shard_counts(self) -> dict[int, int]:
        """Documents per shard, zero-filled."""
        return self.shard_map.shard_counts(len(self.writers))

    @property
    def shard_count(self) -> int:
        return len(self.writers)

    # -- querying -----------------------------------------------------------------

    def query_pres(
        self, doc_id: int, xpath: str, deadline: float | None = None
    ) -> list[int]:
        """Matching node ids of one document — pruned to its shard,
        executed on a pooled read connection."""
        record = self.shard_map.resolve(doc_id)
        result = self.executor.query(
            xpath,
            {record.shard: [(doc_id, record.local_doc_id)]},
            deadline=deadline,
        )
        return result.pres

    def query(
        self, doc_id: int, xpath: str, deadline: float | None = None
    ) -> list[Node]:
        """Matching nodes of one document, reconstructed over a pooled
        read connection (admission-gated like every serving read)."""
        record = self.shard_map.resolve(doc_id)
        return self.executor.run_on_shard(
            record.shard,
            lambda session: session.scheme.query_nodes(
                record.local_doc_id, xpath
            ),
            timeout=deadline,
        )

    def query_xml(
        self, doc_id: int, xpath: str, deadline: float | None = None
    ) -> list[str]:
        """Matching nodes of one document as serialized fragments."""
        return [
            serialize(node)
            for node in self.query(doc_id, xpath, deadline=deadline)
        ]

    def query_all(
        self, xpath: str, deadline: float | None = None
    ) -> ScatterResult:
        """Scatter *xpath* to every shard; gather ``(doc_id, pre)``
        rows merged in (document, document-order).  Every shard is
        queried — including empty ones, which simply contribute nothing.
        """
        targets = {
            shard: self.shard_map.docs_for_shard(shard)
            for shard in self.pools
        }
        return self.executor.query(xpath, targets, deadline=deadline)

    def reconstruct(self, doc_id: int) -> Document:
        """Rebuild one document from its shard."""
        record = self.shard_map.resolve(doc_id)
        return self.executor.run_on_shard(
            record.shard,
            lambda session: session.scheme.reconstruct(
                record.local_doc_id
            ),
        )

    def reconstruct_xml(self, doc_id: int) -> str:
        return serialize(self.reconstruct(doc_id))

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self.executor.close()
        for pool in self.pools.values():
            pool.close()
        for writer in self.writers:
            writer.close()
        self.catalog_db.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_sharded(directory: str, **kwargs) -> ShardedStore:
    """Module-level convenience alias of :meth:`ShardedStore.open`."""
    return ShardedStore.open(directory, **kwargs)
