"""Scatter-gather query execution over sharded stores.

A :class:`QueryExecutor` owns a thread pool and one
:class:`~repro.serve.pool.ConnectionPool` per shard.  A query arrives
with its *targets* — ``{shard: [(global_doc_id, local_doc_id), ...]}``,
computed by the shard map — and either

* **prunes to one shard** (doc-scoped query: exactly one target shard),
  running inline on the calling thread with no fan-out overhead, or
* **scatters** one task per shard onto the worker pool and **gathers**
  the partial answers, merging them into ``(doc_id, pre)`` pairs sorted
  by global doc id then document order — the natural order key, since
  ``pre`` *is* document order within one document.

Admission control and deadlines:

* at most ``max_in_flight`` queries run at once; the next one is shed
  immediately with :class:`~repro.errors.Overloaded` (no queueing — a
  loaded server answering late is worse than one answering "retry"),
* a per-query deadline (seconds) bounds the whole scatter-gather;
  missing it raises :class:`~repro.errors.DeadlineExceeded`.  Work still
  running on other shards is abandoned (its connections return to the
  pools when it finishes) — a deadline miss never blocks the caller
  further.

Degraded modes (``on_shard_error``): ``"fail"`` raises a typed
:class:`~repro.errors.ShardError` on the first shard failure;
``"partial"`` returns the surviving shards' rows with
``ScatterResult.partial`` set and the failures listed — the caller
decides whether a partial answer is better than none.  Deadline misses
always raise: a partial answer is a *complete* answer from fewer
shards, never a timing accident.

Replica routing (``read_from="replica"``): when a shard has shipped
read replicas (``replica_pools``), its read lands on one of them
(round-robin) instead of the primary, and the answer carries the
replica's *staleness bound* — how many committed writes it is behind
and how old its snapshot is (from
:class:`~repro.relational.shardmap.ShardState`).  A replica that is
down or overloaded falls back to the primary
(``serve.replica_fallbacks`` counts these), so replica reads degrade to
primary reads, never to failures the primary could have answered.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (
    ALL_COMPLETED,
    FIRST_EXCEPTION,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import (
    DeadlineExceeded,
    Overloaded,
    ServingError,
    ShardError,
    StorageError,
    XmlRelError,
)
from repro.obs.events import RequestLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, RequestContext, Tracer
from repro.serve.pool import ConnectionPool, ReadSession

#: Request outcomes used as the dimension on ``serve.query_seconds.*``
#: histograms, ``serve.query.outcome.*`` counters, and wide events.
QUERY_OUTCOMES = (
    "ok", "partial", "overloaded", "deadline_exceeded", "shard_error",
    "error",
)

#: Degraded-mode policies for shard failures during scatter-gather.
SHARD_ERROR_MODES = ("fail", "partial")

#: Where reads land by default: the shard primary, or its replicas
#: (with primary fallback).
READ_FROM_MODES = ("primary", "replica")


@dataclass(frozen=True)
class _ShardAnswer:
    """One shard's rows plus where they were read from."""

    rows: list
    replica: int | None = None
    lag_writes: int | None = None
    age_seconds: float | None = None


@dataclass(frozen=True)
class ScatterResult:
    """The merged answer of one scatter-gather (or doc-scoped) query.

    ``rows`` are ``(doc_id, pre)`` pairs — global document id and the
    node's pre-order id — sorted by ``(doc_id, pre)``, i.e. by document
    then document order.  ``partial`` is True when at least one shard
    failed under the ``"partial"`` degraded mode; ``failed_shards``
    then carries ``(shard, error message)`` pairs.

    ``replica_reads`` counts shards answered from a read replica; when
    any were, ``max_replica_lag_writes`` / ``max_replica_age_seconds``
    bound how stale the answer can be — the worst replica's committed
    writes behind its primary and snapshot age at ship time.
    """

    rows: tuple
    shards_queried: int
    elapsed_seconds: float
    partial: bool = False
    failed_shards: tuple = ()
    replica_reads: int = 0
    max_replica_lag_writes: int | None = None
    max_replica_age_seconds: float | None = None

    @property
    def pres(self) -> list[int]:
        """Just the node ids (useful for doc-scoped queries)."""
        return [pre for _, pre in self.rows]

    def doc_ids(self) -> list[int]:
        """Distinct matching document ids, in order."""
        return list(dict.fromkeys(doc for doc, _ in self.rows))


class QueryExecutor:
    """Thread-pool scatter-gather over per-shard connection pools."""

    def __init__(
        self,
        pools: dict[int, ConnectionPool],
        max_workers: int | None = None,
        max_in_flight: int = 32,
        default_deadline: float | None = None,
        on_shard_error: str = "fail",
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        replica_pools: dict[int, list[ConnectionPool]] | None = None,
        read_from: str = "primary",
        shard_state=None,
        request_log: RequestLog | None = None,
    ) -> None:
        if not pools:
            raise StorageError("executor needs at least one shard pool")
        if max_in_flight < 1:
            raise StorageError("max_in_flight must be >= 1")
        if on_shard_error not in SHARD_ERROR_MODES:
            raise StorageError(
                f"unknown shard-error mode {on_shard_error!r}; available: "
                + ", ".join(SHARD_ERROR_MODES)
            )
        if read_from not in READ_FROM_MODES:
            raise StorageError(
                f"unknown read-from mode {read_from!r}; available: "
                + ", ".join(READ_FROM_MODES)
            )
        self.pools = dict(pools)
        #: Per-shard replica pools; the owning store attaches entries as
        #: replica snapshots ship, so routing sees them appear live.
        self.replica_pools = dict(replica_pools or {})
        self.read_from = read_from
        #: :class:`~repro.relational.shardmap.ShardState` (or None) —
        #: the staleness bookkeeping replica-served answers report from.
        self.shard_state = shard_state
        self._replica_rr: dict[int, int] = {}
        self._replica_lock = threading.Lock()
        self.max_in_flight = max_in_flight
        self.default_deadline = default_deadline
        self.on_shard_error = on_shard_error
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Lazy caches for instruments with formatted names — the warm
        # query path must not rebuild "serve.shardN.query_seconds"
        # strings on every request.  Lazy (not eager) so an untouched
        # shard or outcome never materializes an empty instrument.
        self._shard_seconds: dict = {}
        self._outcome_instruments: dict = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional wide-event sink: one structured record per query.
        self.request_log = request_log
        self._gate = threading.Semaphore(max_in_flight)
        self._threads = ThreadPoolExecutor(
            max_workers=max_workers or max(4, len(self.pools)),
            thread_name_prefix="xmlrel-serve",
        )
        self._closed = False

    # -- admission control --------------------------------------------------------

    @contextmanager
    def _admitted(self):
        """One slot of the max-in-flight gate, or immediate shed."""
        if not self._gate.acquire(blocking=False):
            self.metrics.counter("serve.overloaded").inc()
            raise Overloaded(
                f"serving layer at max in-flight capacity "
                f"({self.max_in_flight})",
                in_flight=self.max_in_flight,
                limit=self.max_in_flight,
            )
        self.metrics.gauge("serve.in_flight").add(1)
        try:
            yield
        finally:
            self.metrics.gauge("serve.in_flight").add(-1)
            self._gate.release()

    def _shard_histogram(self, shard: int):
        """``serve.shard{N}.query_seconds``, resolved once per shard."""
        histogram = self._shard_seconds.get(shard)
        if histogram is None:
            histogram = self._shard_seconds[shard] = self.metrics.histogram(
                f"serve.shard{shard}.query_seconds"
            )
        return histogram

    def _outcome_pair(self, outcome: str):
        """The ``(histogram, counter)`` pair for one query outcome."""
        pair = self._outcome_instruments.get(outcome)
        if pair is None:
            pair = self._outcome_instruments[outcome] = (
                self.metrics.histogram(f"serve.query_seconds.{outcome}"),
                self.metrics.counter(f"serve.query.outcome.{outcome}"),
            )
        return pair

    # -- per-shard work -----------------------------------------------------------

    def _pick_replica(self, shard: int) -> tuple[ConnectionPool, int] | None:
        """The next replica pool for *shard*, round-robin, if any."""
        replicas = self.replica_pools.get(shard)
        if not replicas:
            return None
        with self._replica_lock:
            index = self._replica_rr.get(shard, 0) % len(replicas)
            self._replica_rr[shard] = index + 1
        return replicas[index], index

    def _query_shard(
        self,
        shard: int,
        docs: list[tuple[int, int]],
        xpath: str,
        deadline_at: float | None,
        deadline_budget: float | None,
        read_from: str,
        ctx: RequestContext | None = None,
        breakdown: dict | None = None,
    ) -> _ShardAnswer:
        """Run *xpath* over every targeted document of one shard.

        Routes to a read replica when asked (and one exists), falling
        back to the primary if the replica is down or overloaded.

        *ctx* is the request's trace context (adopted here, so this
        shard's spans nest under the request root even on a pool
        thread); *breakdown* — when the wide-event log is on — collects
        this shard's entry of the per-shard fan-out record (latency,
        replica choice, plan-cache warmth, lint verdict, outcome).
        """
        if not docs:
            return _ShardAnswer(rows=[])
        with self.tracer.adopt(ctx):
            with self.tracer.span(
                "serve.shard", shard=shard, docs=len(docs)
            ) as span:
                return self._query_shard_traced(
                    shard, docs, xpath, deadline_at, deadline_budget,
                    read_from, span, breakdown,
                )

    def _query_shard_traced(
        self,
        shard: int,
        docs: list[tuple[int, int]],
        xpath: str,
        deadline_at: float | None,
        deadline_budget: float | None,
        read_from: str,
        span,
        breakdown: dict | None,
    ) -> _ShardAnswer:
        started = time.perf_counter()
        info: dict | None = None
        if breakdown is not None:
            info = {"shard": shard, "docs": len(docs), "read_from": "primary"}
            breakdown[shard] = info
        try:
            answer = self._route_shard_read(
                shard, docs, xpath, deadline_at, deadline_budget,
                read_from, info,
            )
        except XmlRelError as error:
            elapsed = time.perf_counter() - started
            self._shard_histogram(shard).observe(elapsed)
            if info is not None:
                info["elapsed_seconds"] = elapsed
                info["outcome"] = "error"
                info["error"] = f"{type(error).__name__}: {error}"
            raise
        elapsed = time.perf_counter() - started
        self._shard_histogram(shard).observe(elapsed)
        if span:
            span.set(rows=len(answer.rows))
            if answer.replica is not None:
                span.set(replica=answer.replica)
        if info is not None:
            info["elapsed_seconds"] = elapsed
            info["outcome"] = "ok"
            info["rows"] = len(answer.rows)
            if answer.replica is not None:
                info["read_from"] = "replica"
                info["replica"] = answer.replica
                info["replica_lag_writes"] = answer.lag_writes
                info["replica_age_seconds"] = answer.age_seconds
            pool = self.pools[shard]
            plans = pool.plan_cache.peek(
                (pool.scheme_name, pool.epoch, xpath)
            )
            info["plan_cached"] = plans is not None
            info["lint"] = self._lint_verdict(pool, plans)
        return answer

    def _route_shard_read(
        self,
        shard: int,
        docs: list[tuple[int, int]],
        xpath: str,
        deadline_at: float | None,
        deadline_budget: float | None,
        read_from: str,
        info: dict | None,
    ) -> _ShardAnswer:
        """Replica-or-primary routing (the pre-telemetry body of
        ``_query_shard``)."""
        picked = (
            self._pick_replica(shard) if read_from == "replica" else None
        )
        if picked is not None:
            pool, replica = picked
            try:
                with self.tracer.span("serve.replica_read", replica=replica):
                    rows = self._query_on_pool(
                        pool, docs, xpath, deadline_at, deadline_budget
                    )
            except (Overloaded, StorageError):
                # The replica could not answer; its primary still can.
                self.metrics.counter("serve.replica_fallbacks").inc()
                if info is not None:
                    info["replica_fallback"] = True
            else:
                self.metrics.counter("serve.replica_reads").inc()
                lag = age = None
                if self.shard_state is not None:
                    staleness = self.shard_state.staleness(shard, replica)
                    if staleness is not None:
                        lag, age = staleness
                return _ShardAnswer(
                    rows=rows,
                    replica=replica,
                    lag_writes=lag,
                    age_seconds=age,
                )
        with self.tracer.span("serve.execute", shard=shard):
            rows = self._query_on_pool(
                self.pools[shard], docs, xpath, deadline_at, deadline_budget
            )
        return _ShardAnswer(rows=rows)

    @staticmethod
    def _lint_verdict(pool: ConnectionPool, plans) -> str:
        """The plan linter's word on this query's cached plans:
        ``off`` (linting disabled on the pool), ``unknown`` (no cached
        plan to inspect), ``clean``, ``warn``, or ``error``."""
        if pool.lint == "off":
            return "off"
        if plans is None:
            return "unknown"
        diagnostics = [d for plan in plans for d in plan.diagnostics]
        if any(d.is_error for d in diagnostics):
            return "error"
        if diagnostics:
            return "warn"
        return "clean"

    def _query_on_pool(
        self,
        pool: ConnectionPool,
        docs: list[tuple[int, int]],
        xpath: str,
        deadline_at: float | None,
        deadline_budget: float | None,
    ) -> list[tuple[int, int]]:
        """Returns ``(global_doc_id, pre)`` pairs.  Checks the deadline
        between documents so a slow shard stops burning its pool slot
        once the query has already missed."""
        timeout = pool.acquire_timeout
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise self._deadline_error(deadline_budget, deadline_at)
            timeout = min(timeout, remaining)
        session = pool.acquire(timeout=timeout)
        try:
            rows: list[tuple[int, int]] = []
            for global_doc, local_doc in docs:
                if (
                    deadline_at is not None
                    and time.monotonic() > deadline_at
                ):
                    raise self._deadline_error(deadline_budget, deadline_at)
                for pre in session.scheme.query_pres(local_doc, xpath):
                    rows.append((global_doc, pre))
            return rows
        finally:
            pool.release(session)

    def _deadline_error(
        self, budget: float | None, deadline_at: float
    ) -> DeadlineExceeded:
        elapsed = (budget or 0.0) + (time.monotonic() - deadline_at)
        return DeadlineExceeded(
            f"query exceeded its {budget if budget is not None else 0.0:.3f}s "
            f"deadline",
            deadline_seconds=budget or 0.0,
            elapsed=elapsed,
        )

    # -- the public query paths ---------------------------------------------------

    def query(
        self,
        xpath: str,
        targets: dict[int, list[tuple[int, int]]],
        deadline: float | None = None,
        read_from: str | None = None,
        ctx: RequestContext | None = None,
    ) -> ScatterResult:
        """Execute *xpath* against *targets* and merge the answers.

        *targets* maps each shard to its ``(global_doc_id,
        local_doc_id)`` pairs; a single-shard target set is the pruned
        doc-scoped fast lane (no thread handoff), anything else
        scatters across the worker pool.  *read_from* overrides the
        executor default per query (``"primary"`` or ``"replica"``).
        *ctx* carries an upstream request's identity (e.g. the
        gateway's): the wide event and span tree reuse its request id
        instead of minting a fresh one.

        Every exit — success, Overloaded shed, deadline miss, shard
        failure — lands in ``serve.query_seconds`` (plus the
        outcome-dimensioned ``serve.query_seconds.<outcome>`` /
        ``serve.query.outcome.<outcome>`` series) and, when a
        :class:`~repro.obs.events.RequestLog` is attached, emits one
        wide event carrying the full per-shard breakdown.
        """
        if self._closed:
            raise StorageError("query executor is closed")
        route = self.read_from if read_from is None else read_from
        if route not in READ_FROM_MODES:
            raise StorageError(
                f"unknown read-from mode {route!r}; available: "
                + ", ".join(READ_FROM_MODES)
            )
        budget = self.default_deadline if deadline is None else deadline
        deadline_at = (
            None if budget is None else time.monotonic() + budget
        )
        started = time.perf_counter()
        breakdown: dict | None = (
            {} if self.request_log is not None else None
        )
        upstream_id = ctx.request_id if ctx is not None else None
        ctx = None
        result: ScatterResult | None = None
        outcome = "error"
        error_text: str | None = None
        try:
            with self._admitted():
                self.metrics.counter("serve.queries").inc()
                with self.tracer.span(
                    "serve.query", xpath=str(xpath), shards=len(targets)
                ) as root:
                    ctx = self.tracer.capture(request_id=upstream_id)
                    if root:
                        root.set(request_id=ctx.request_id)
                    if len(targets) <= 1:
                        self.metrics.counter(
                            "serve.doc_scoped_queries"
                        ).inc()
                        result = self._run_single(
                            xpath, targets, deadline_at, budget, started,
                            route, ctx, breakdown,
                        )
                    else:
                        self.metrics.counter("serve.scatter_queries").inc()
                        result = self._scatter(
                            xpath, targets, deadline_at, budget, started,
                            route, ctx, breakdown,
                        )
                    if root:
                        root.set(rows=len(result.rows))
            outcome = "partial" if result.partial else "ok"
            return result
        except Overloaded as error:
            outcome, error_text = "overloaded", str(error)
            raise
        except DeadlineExceeded as error:
            outcome, error_text = "deadline_exceeded", str(error)
            raise
        except ShardError as error:
            outcome, error_text = "shard_error", str(error)
            raise
        except BaseException as error:
            error_text = f"{type(error).__name__}: {error}"
            raise
        finally:
            self._finish_query(
                xpath=xpath,
                targets=targets,
                route=route,
                budget=budget,
                started=started,
                outcome=outcome,
                error_text=error_text,
                result=result,
                ctx=ctx,
                breakdown=breakdown,
            )

    def _finish_query(
        self,
        xpath,
        targets,
        route: str,
        budget: float | None,
        started: float,
        outcome: str,
        error_text: str | None,
        result: ScatterResult | None,
        ctx: RequestContext | None,
        breakdown: dict | None,
    ) -> None:
        """Latency + outcome accounting and the wide event, on every
        exit path of :meth:`query` (success and all raises alike)."""
        elapsed = (
            result.elapsed_seconds if result is not None
            else time.perf_counter() - started
        )
        self.metrics.histogram("serve.query_seconds").observe(elapsed)
        outcome_histogram, outcome_counter = self._outcome_pair(outcome)
        outcome_histogram.observe(elapsed)
        outcome_counter.inc()
        if self.request_log is None:
            return
        request_id = (
            ctx.request_id if ctx is not None
            else self.tracer.capture().request_id
        )
        event = {
            "event": "query",
            "request_id": request_id,
            "ts": time.time(),
            "xpath": str(xpath),
            "read_from": route,
            "shards": len(targets),
            "docs": sum(len(docs) for docs in targets.values()),
            "outcome": outcome,
            "elapsed_seconds": elapsed,
            "deadline_seconds": budget,
            "deadline_slack_seconds": (
                None if budget is None else budget - elapsed
            ),
        }
        if error_text is not None:
            event["error"] = error_text
        if result is not None:
            event["rows"] = len(result.rows)
            event["partial"] = result.partial
            if result.failed_shards:
                event["failed_shards"] = list(result.failed_shards)
            event["replica_reads"] = result.replica_reads
            if result.max_replica_lag_writes is not None:
                event["max_replica_lag_writes"] = (
                    result.max_replica_lag_writes
                )
            if result.max_replica_age_seconds is not None:
                event["max_replica_age_seconds"] = (
                    result.max_replica_age_seconds
                )
        if breakdown:
            event["per_shard"] = [
                breakdown[shard] for shard in sorted(breakdown)
            ]
        self.request_log.emit(event)

    @staticmethod
    def _merge(
        answers: list[_ShardAnswer],
        shards_queried: int,
        started: float,
        failures: list[tuple[int, str]],
    ) -> ScatterResult:
        """Fold per-shard answers into one sorted, staleness-bounded
        result."""
        rows: list[tuple[int, int]] = []
        replica_reads = 0
        max_lag: int | None = None
        max_age: float | None = None
        for answer in answers:
            rows.extend(answer.rows)
            if answer.replica is not None:
                replica_reads += 1
                if answer.lag_writes is not None:
                    max_lag = (
                        answer.lag_writes if max_lag is None
                        else max(max_lag, answer.lag_writes)
                    )
                if answer.age_seconds is not None:
                    max_age = (
                        answer.age_seconds if max_age is None
                        else max(max_age, answer.age_seconds)
                    )
        return ScatterResult(
            rows=tuple(sorted(rows)),
            shards_queried=shards_queried,
            elapsed_seconds=time.perf_counter() - started,
            partial=bool(failures),
            failed_shards=tuple(failures),
            replica_reads=replica_reads,
            max_replica_lag_writes=max_lag,
            max_replica_age_seconds=max_age,
        )

    def _run_single(
        self, xpath, targets, deadline_at, budget, started, read_from,
        ctx=None, breakdown=None,
    ) -> ScatterResult:
        """The pruned path: one shard, executed on the calling thread."""
        failures: list[tuple[int, str]] = []
        answers: list[_ShardAnswer] = []
        for shard, docs in targets.items():  # 0 or 1 iterations
            try:
                answers.append(
                    self._query_shard(
                        shard, docs, xpath, deadline_at, budget,
                        read_from, ctx, breakdown,
                    )
                )
            except DeadlineExceeded:
                self.metrics.counter("serve.deadline_exceeded").inc()
                raise
            except XmlRelError as error:
                self._note_shard_failure(shard, error, failures)
        with self.tracer.span("serve.merge", answers=len(answers)):
            return self._merge(answers, len(targets), started, failures)

    def _scatter(
        self, xpath, targets, deadline_at, budget, started, read_from,
        ctx=None, breakdown=None,
    ) -> ScatterResult:
        """Fan out one task per shard; gather, merge, and sort."""
        futures = {
            self._threads.submit(
                self._query_shard,
                shard,
                docs,
                xpath,
                deadline_at,
                budget,
                read_from,
                ctx,
                breakdown,
            ): shard
            for shard, docs in targets.items()
        }
        remaining = (
            None if deadline_at is None
            else max(0.0, deadline_at - time.monotonic())
        )
        # Fail-fast wakes on the first failure; partial mode must sit
        # out the full fan-out (a late shard is still a good shard).
        return_when = (
            FIRST_EXCEPTION if self.on_shard_error == "fail"
            else ALL_COMPLETED
        )
        done, not_done = wait(
            futures, timeout=remaining, return_when=return_when
        )
        if not_done:
            for future in not_done:
                future.cancel()  # abandon; running tasks self-abort
            failed = next(
                (f for f in done if f.exception() is not None), None
            )
            if failed is None:
                # Nothing failed — the fan-out simply missed the clock.
                self.metrics.counter("serve.deadline_exceeded").inc()
                raise self._deadline_error(budget, deadline_at or 0.0)
            error = failed.exception()
            if isinstance(error, DeadlineExceeded):
                self.metrics.counter("serve.deadline_exceeded").inc()
                raise error
            if isinstance(error, XmlRelError):
                self._note_shard_failure(futures[failed], error, [])
            raise error
        answers: list[_ShardAnswer] = []
        failures: list[tuple[int, str]] = []
        for future in futures:
            shard = futures[future]
            try:
                answers.append(future.result())
            except DeadlineExceeded:
                self.metrics.counter("serve.deadline_exceeded").inc()
                raise
            except XmlRelError as error:
                self._note_shard_failure(shard, error, failures)
        with self.tracer.span("serve.merge", answers=len(answers)):
            return self._merge(answers, len(targets), started, failures)

    def _note_shard_failure(
        self,
        shard: int,
        error: XmlRelError,
        failures: list[tuple[int, str]],
    ) -> None:
        """Record one shard's failure, or raise in fail-fast mode."""
        self.metrics.counter("serve.shard_failures").inc()
        if self.on_shard_error == "fail":
            if isinstance(error, ServingError):
                raise error
            raise ShardError(shard, error) from error
        failures.append((shard, str(error)))

    def stream(
        self,
        xpath: str,
        targets: dict[int, list[tuple[int, int]]],
        deadline: float | None = None,
        read_from: str | None = None,
        ctx: RequestContext | None = None,
    ) -> "ScatterStream":
        """Begin an *incremental* scatter: per-shard futures surfaced to
        the caller as they run, instead of one materialized
        :class:`ScatterResult`.

        Admission, deadlines, replica routing, tracing, and outcome
        accounting all match :meth:`query`; what changes is delivery —
        the caller (the network gateway) folds each shard's rows into
        its response the moment that shard completes.  *ctx* optionally
        parents the ``serve.query`` span under an outer request span.

        Caller contract: consume the handle's futures (collecting each
        through :meth:`ScatterStream.collect`), then call
        :meth:`ScatterStream.finish` exactly once — on success *and* on
        error paths — to release the admission slot and land the
        latency/outcome metrics and the wide event.
        """
        if self._closed:
            raise StorageError("query executor is closed")
        route = self.read_from if read_from is None else read_from
        if route not in READ_FROM_MODES:
            raise StorageError(
                f"unknown read-from mode {route!r}; available: "
                + ", ".join(READ_FROM_MODES)
            )
        budget = self.default_deadline if deadline is None else deadline
        deadline_at = (
            None if budget is None else time.monotonic() + budget
        )
        started = time.perf_counter()
        if not self._gate.acquire(blocking=False):
            self.metrics.counter("serve.overloaded").inc()
            error = Overloaded(
                f"serving layer at max in-flight capacity "
                f"({self.max_in_flight})",
                in_flight=self.max_in_flight,
                limit=self.max_in_flight,
            )
            self._finish_query(
                xpath=xpath, targets=targets, route=route, budget=budget,
                started=started, outcome="overloaded",
                error_text=str(error), result=None, ctx=ctx,
                breakdown=None,
            )
            raise error
        self.metrics.gauge("serve.in_flight").add(1)
        self.metrics.counter("serve.queries").inc()
        self.metrics.counter("serve.streamed_queries").inc()
        if len(targets) <= 1:
            self.metrics.counter("serve.doc_scoped_queries").inc()
        else:
            self.metrics.counter("serve.scatter_queries").inc()
        try:
            return ScatterStream(
                self, xpath, targets, route, budget, deadline_at,
                started, ctx,
            )
        except BaseException:
            self.metrics.gauge("serve.in_flight").add(-1)
            self._gate.release()
            raise

    def run_on_shard(
        self, shard: int, fn, timeout: float | None = None
    ):
        """Run ``fn(session)`` on one shard's pooled connection, under
        the admission gate — the door for read work that is not a plain
        pre-id query (node reconstruction, verification, raw reads)."""
        result, _ = self.run_on_shard_routed(shard, fn, timeout=timeout)
        return result

    def run_on_shard_routed(
        self,
        shard: int,
        fn,
        timeout: float | None = None,
        read_from: str = "primary",
    ) -> tuple:
        """Like :meth:`run_on_shard`, but routable to a replica.

        Returns ``(result, replica)`` where ``replica`` is the replica
        index that served (None when the primary did — including after
        a replica fallback)."""
        if self._closed:
            raise StorageError("query executor is closed")
        with self._admitted():
            picked = (
                self._pick_replica(shard)
                if read_from == "replica" else None
            )
            if picked is not None:
                pool, replica = picked
                try:
                    session = pool.acquire(timeout=timeout)
                except (Overloaded, StorageError):
                    self.metrics.counter("serve.replica_fallbacks").inc()
                else:
                    try:
                        result = fn(session)
                    finally:
                        pool.release(session)
                    self.metrics.counter("serve.replica_reads").inc()
                    return result, replica
            pool = self.pools[shard]
            session = pool.acquire(timeout=timeout)
            try:
                return fn(session), None
            finally:
                pool.release(session)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting queries and release the worker threads.

        Does not close the pools — their owner (the sharded store)
        does.
        """
        self._closed = True
        self._threads.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def outcome_for(error: BaseException) -> str:
    """The :data:`QUERY_OUTCOMES` dimension one error lands in."""
    if isinstance(error, Overloaded):
        return "overloaded"
    if isinstance(error, DeadlineExceeded):
        return "deadline_exceeded"
    if isinstance(error, ShardError):
        return "shard_error"
    return "error"


class ScatterStream:
    """One in-flight incremental scatter, created by
    :meth:`QueryExecutor.stream`.

    Holds the admission slot from construction until :meth:`finish`;
    exposes the per-shard ``concurrent.futures`` handles in
    :attr:`futures` so an async caller can wrap and await them in
    completion order.  Rows flow shard-by-shard through
    :meth:`collect`; the handle accumulates answers/failures so the
    terminal :meth:`finish` can report the same merged
    :class:`ScatterResult`, metrics, and wide event the materialized
    path would have.

    The ``serve.query`` root span is opened and closed *synchronously*
    at construction (the creating thread may be an event loop
    interleaving many requests, so no span can stay open across a
    suspension point); per-shard child spans attach to it cross-thread
    via the captured :class:`~repro.obs.trace.RequestContext`, and the
    request's wall time lives in ``serve.query_seconds`` as always.
    """

    def __init__(
        self,
        executor: QueryExecutor,
        xpath: str,
        targets: dict[int, list[tuple[int, int]]],
        route: str,
        budget: float | None,
        deadline_at: float | None,
        started: float,
        parent_ctx: RequestContext | None,
    ) -> None:
        self.executor = executor
        self.xpath = xpath
        self.targets = targets
        self.route = route
        self.budget = budget
        self.deadline_at = deadline_at
        self.started = started
        self.breakdown: dict | None = (
            {} if executor.request_log is not None else None
        )
        self._answers: list[_ShardAnswer] = []
        self._failures: list[tuple[int, str]] = []
        self._finished = False
        self._result: ScatterResult | None = None
        tracer = executor.tracer
        upstream_id = (
            parent_ctx.request_id if parent_ctx is not None else None
        )
        with tracer.adopt(parent_ctx):
            with tracer.span(
                "serve.query",
                xpath=str(xpath),
                shards=len(targets),
                streaming=True,
            ) as root:
                self.ctx = tracer.capture(
                    root if root else None, request_id=upstream_id
                )
                if root:
                    root.set(request_id=self.ctx.request_id)
        #: ``{future: shard}`` — all submitted at construction; a shard
        #: with no targeted documents still gets a (trivial) task so
        #: the stream always announces every shard it covers.
        self.futures = {
            executor._threads.submit(
                executor._query_shard,
                shard,
                docs,
                xpath,
                deadline_at,
                budget,
                route,
                self.ctx,
                self.breakdown,
            ): shard
            for shard, docs in targets.items()
        }

    @property
    def request_id(self) -> str:
        return self.ctx.request_id

    def deadline_remaining(self) -> float | None:
        """Seconds left on the budget (None: no deadline)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.monotonic())

    def expire(self) -> DeadlineExceeded:
        """The typed error for a stream that missed its deadline."""
        self.executor.metrics.counter("serve.deadline_exceeded").inc()
        return self.executor._deadline_error(
            self.budget, self.deadline_at or 0.0
        )

    def collect(self, future) -> tuple[int, list | None]:
        """Fold one *completed* future into the stream.

        Returns ``(shard, rows)``; ``rows`` is ``None`` when the shard
        failed under the ``"partial"`` degraded mode (the failure is
        recorded for the terminal event).  Fail-fast mode and deadline
        misses raise, exactly like the materialized gather.
        """
        shard = self.futures[future]
        try:
            answer = future.result()
        except DeadlineExceeded:
            self.executor.metrics.counter("serve.deadline_exceeded").inc()
            raise
        except XmlRelError as error:
            self.executor._note_shard_failure(shard, error, self._failures)
            return shard, None
        self._answers.append(answer)
        return shard, answer.rows

    def failures(self) -> list[tuple[int, str]]:
        """Shard failures recorded so far (``partial`` mode only)."""
        return list(self._failures)

    def finish(
        self, error: BaseException | None = None
    ) -> ScatterResult | None:
        """Terminate the stream: release the admission slot and land
        the outcome metrics plus the wide event.

        With no *error*, merges the collected answers into the
        :class:`ScatterResult` the materialized path would have
        returned.  Idempotent — the first call wins.
        """
        if self._finished:
            return self._result
        self._finished = True
        for future in self.futures:
            future.cancel()  # abandon stragglers; running tasks self-abort
        error_text: str | None = None
        if error is None:
            tracer = self.executor.tracer
            with tracer.adopt(self.ctx):
                with tracer.span(
                    "serve.merge", answers=len(self._answers)
                ):
                    self._result = QueryExecutor._merge(
                        self._answers,
                        len(self.targets),
                        self.started,
                        self._failures,
                    )
            outcome = "partial" if self._result.partial else "ok"
        else:
            outcome = outcome_for(error)
            error_text = f"{type(error).__name__}: {error}"
        self.executor.metrics.gauge("serve.in_flight").add(-1)
        self.executor._gate.release()
        self.executor._finish_query(
            xpath=self.xpath,
            targets=self.targets,
            route=self.route,
            budget=self.budget,
            started=self.started,
            outcome=outcome,
            error_text=error_text,
            result=self._result,
            ctx=self.ctx,
            breakdown=self.breakdown,
        )
        return self._result
