"""Concurrent serving layer: sharding, read pools, scatter-gather.

The pieces, bottom-up:

* :class:`~repro.serve.pool.ConnectionPool` — a bounded per-shard pool
  of read-only WAL connections, health-checked on acquire, sharing one
  thread-safe plan cache.
* :class:`~repro.serve.executor.QueryExecutor` — thread-pool
  scatter-gather with per-query deadlines, a max-in-flight admission
  gate, and configurable degraded modes for shard failures.
* :class:`~repro.serve.replicas.ReplicaSet` — N snapshot-shipped read
  replicas per shard (atomic-rename ships, generation-recycled pools).
* :class:`~repro.serve.sharded.ShardedStore` — documents partitioned
  across N shard databases behind the familiar store API, with a
  persistent shard-map catalog, serialized per-shard writes, journaled
  online rebalancing, and crash recovery.
"""

from repro.serve.executor import (
    READ_FROM_MODES,
    SHARD_ERROR_MODES,
    QueryExecutor,
    ScatterResult,
    ScatterStream,
    outcome_for,
)
from repro.serve.gateway import ClientQuotas, Gateway
from repro.serve.pool import ConnectionPool, ReadSession
from repro.serve.protocol import (
    QuerySpec,
    error_body,
    parse_query_payload,
    result_body,
)
from repro.serve.replicas import ReplicaSet, replica_fault_key
from repro.serve.sharded import (
    PLACEMENTS,
    RecoveryReport,
    ShardedDocument,
    ShardedStore,
    ShardMap,
    open_sharded,
)

__all__ = [
    "READ_FROM_MODES",
    "SHARD_ERROR_MODES",
    "PLACEMENTS",
    "ClientQuotas",
    "ConnectionPool",
    "Gateway",
    "QueryExecutor",
    "QuerySpec",
    "ReadSession",
    "RecoveryReport",
    "ReplicaSet",
    "ScatterResult",
    "ScatterStream",
    "ShardMap",
    "ShardedDocument",
    "ShardedStore",
    "error_body",
    "open_sharded",
    "outcome_for",
    "parse_query_payload",
    "result_body",
    "replica_fault_key",
]
