"""Concurrent serving layer: sharding, read pools, scatter-gather.

The pieces, bottom-up:

* :class:`~repro.serve.pool.ConnectionPool` — a bounded per-shard pool
  of read-only WAL connections, health-checked on acquire, sharing one
  thread-safe plan cache.
* :class:`~repro.serve.executor.QueryExecutor` — thread-pool
  scatter-gather with per-query deadlines, a max-in-flight admission
  gate, and configurable degraded modes for shard failures.
* :class:`~repro.serve.sharded.ShardedStore` — documents partitioned
  across N shard databases behind the familiar store API, with a
  persistent shard-map catalog.
"""

from repro.serve.executor import (
    SHARD_ERROR_MODES,
    QueryExecutor,
    ScatterResult,
)
from repro.serve.pool import ConnectionPool, ReadSession
from repro.serve.sharded import (
    PLACEMENTS,
    ShardedDocument,
    ShardedStore,
    ShardMap,
    open_sharded,
)

__all__ = [
    "SHARD_ERROR_MODES",
    "PLACEMENTS",
    "ConnectionPool",
    "QueryExecutor",
    "ReadSession",
    "ScatterResult",
    "ShardMap",
    "ShardedDocument",
    "ShardedStore",
    "open_sharded",
]
