"""The gateway's wire protocol: request shapes, response envelopes,
and the streaming NDJSON framing.

One request shape serves both transports the gateway accepts:

* ``POST /query`` with a JSON body,
* ``GET /query?xpath=...&doc=...`` with URL parameters (curl-able).

Both normalize into a :class:`QuerySpec`; validation failures raise the
typed :class:`~repro.errors.ProtocolError` which the status table in
:mod:`repro.errors` maps to HTTP 400 — the gateway never hand-rolls a
status code.

**Streaming framing.**  A streamed response is ``application/x-ndjson``
sent with chunked transfer-encoding: one JSON object per line, rows
flushed *per shard as each shard completes* instead of after the full
scatter-gather materializes.

::

    {"event": "start", "request_id": "...", "shards": 3}
    {"event": "rows",  "shard": 1, "rows": [[doc, pre], ...]}
    {"event": "rows",  "shard": 0, "rows": [[doc, pre], ...]}
    {"event": "shard_error", "shard": 2, "message": "..."}      # partial mode
    {"event": "end", "outcome": "partial", "rows": 7, ...}

The ``end`` event is the stream's status line: by the time a mid-flight
error surfaces the HTTP 200 header is long gone, so clients must treat
a terminal ``error`` event (or a missing ``end``) as failure.  Rows
arrive in per-shard completion order, **not** global document order —
streaming trades the merge-sort for first-byte latency; clients that
need document order sort the union themselves or use the materialized
endpoint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ProtocolError, error_payload
from repro.serve.executor import READ_FROM_MODES

#: Content type of streamed responses.
NDJSON_CONTENT_TYPE = "application/x-ndjson"

#: Content type of materialized (and error) responses.
JSON_CONTENT_TYPE = "application/json"

#: Largest accepted request body; anything bigger is a 400, not an OOM.
MAX_BODY_BYTES = 1 << 20

#: Hard cap on a single deadline a client may request, seconds.
MAX_DEADLINE_SECONDS = 300.0

#: Header naming the quota principal; falls back to the JSON ``client``
#: field, then to the catch-all bucket.
CLIENT_HEADER = "x-client-id"

#: Quota principal used when the request names none.
ANONYMOUS_CLIENT = "anonymous"


@dataclass(frozen=True)
class QuerySpec:
    """One validated query request, transport-independent."""

    xpath: str
    doc_id: int | None = None
    deadline: float | None = None
    read_from: str | None = None
    stream: bool = False
    client: str = ANONYMOUS_CLIENT


def _bad(message: str) -> ProtocolError:
    return ProtocolError(message)


def _coerce_deadline(value) -> float | None:
    if value is None:
        return None
    try:
        deadline = float(value)
    except (TypeError, ValueError):
        raise _bad(f"deadline_seconds must be a number, got {value!r}")
    if deadline <= 0:
        raise _bad("deadline_seconds must be > 0")
    return min(deadline, MAX_DEADLINE_SECONDS)


def _coerce_doc_id(value) -> int | None:
    if value is None:
        return None
    if isinstance(value, bool):
        raise _bad("doc_id must be an integer")
    try:
        return int(value)
    except (TypeError, ValueError):
        raise _bad(f"doc_id must be an integer, got {value!r}")


def _coerce_bool(value, name: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off", ""):
            return False
    raise _bad(f"{name} must be a boolean, got {value!r}")


def parse_query_payload(
    payload: dict, default_client: str = ANONYMOUS_CLIENT
) -> QuerySpec:
    """Validate one request *payload* (parsed JSON object or flattened
    URL parameters) into a :class:`QuerySpec`.

    *default_client* is the transport-level principal (the
    ``X-Client-Id`` header); an explicit ``client`` field wins.
    """
    if not isinstance(payload, dict):
        raise _bad("request body must be a JSON object")
    known = {
        "xpath", "doc_id", "deadline_seconds", "read_from", "stream",
        "client",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise _bad(f"unknown request field(s): {', '.join(unknown)}")
    xpath = payload.get("xpath")
    if not isinstance(xpath, str) or not xpath.strip():
        raise _bad("xpath must be a non-empty string")
    read_from = payload.get("read_from")
    if read_from is not None and read_from not in READ_FROM_MODES:
        raise _bad(
            f"unknown read_from {read_from!r}; available: "
            + ", ".join(READ_FROM_MODES)
        )
    client = payload.get("client", default_client)
    if not isinstance(client, str) or not client:
        raise _bad("client must be a non-empty string")
    return QuerySpec(
        xpath=xpath,
        doc_id=_coerce_doc_id(payload.get("doc_id")),
        deadline=_coerce_deadline(payload.get("deadline_seconds")),
        read_from=read_from,
        stream=_coerce_bool(payload.get("stream", False), "stream"),
        client=client,
    )


def parse_json_body(body: bytes, default_client: str) -> QuerySpec:
    """Parse a ``POST /query`` body."""
    if len(body) > MAX_BODY_BYTES:
        raise _bad(
            f"request body exceeds {MAX_BODY_BYTES} bytes"
        )
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _bad(f"request body is not valid JSON: {exc}")
    return parse_query_payload(payload, default_client=default_client)


def parse_query_params(
    params: dict[str, str], default_client: str
) -> QuerySpec:
    """Parse ``GET /query`` URL parameters (``doc`` aliases ``doc_id``)."""
    payload: dict = dict(params)
    if "doc" in payload:
        payload["doc_id"] = payload.pop("doc")
    if "deadline" in payload:
        payload["deadline_seconds"] = payload.pop("deadline")
    return parse_query_payload(payload, default_client=default_client)


# -- response bodies ----------------------------------------------------------------


def ndjson_line(obj: dict) -> bytes:
    """One streaming event, encoded: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":"), default=str).encode(
        "utf-8"
    ) + b"\n"


def result_body(result, request_id: str, short_circuit: bool = False) -> dict:
    """The materialized-response envelope for one
    :class:`~repro.serve.executor.ScatterResult`."""
    body = {
        "request_id": request_id,
        "rows": [list(row) for row in result.rows],
        "row_count": len(result.rows),
        "shards_queried": result.shards_queried,
        "elapsed_seconds": result.elapsed_seconds,
        "partial": result.partial,
    }
    if result.partial:
        body["failed_shards"] = [
            {"shard": shard, "message": message}
            for shard, message in result.failed_shards
        ]
    if result.replica_reads:
        body["replica_reads"] = result.replica_reads
        body["max_replica_lag_writes"] = result.max_replica_lag_writes
        body["max_replica_age_seconds"] = result.max_replica_age_seconds
    if short_circuit:
        body["short_circuit"] = True
    return body


def error_body(error: BaseException, request_id: str | None = None) -> dict:
    """The error envelope: :func:`repro.errors.error_payload` plus the
    request id when one was minted before the failure."""
    payload = error_payload(error)
    if request_id is not None:
        payload["request_id"] = request_id
    return payload
