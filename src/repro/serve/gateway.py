"""``repro.serve.gateway`` — the async network front door.

Everything below :class:`Gateway` is a library; this module is the
socket.  An asyncio HTTP/1.1 server (stdlib only, own event loop on a
named daemon thread) fronts a :class:`~repro.serve.sharded.ShardedStore`
with a small JSON protocol (:mod:`repro.serve.protocol`):

* ``POST /query`` / ``GET /query?xpath=...`` — execute an XPath over
  the store: one document (``doc_id``) or a full scatter-gather.
* ``stream=true`` — chunked NDJSON: rows flushed per shard *as each
  shard completes* instead of after the whole scatter materializes, so
  first-byte latency tracks the fastest shard, not the slowest.
* ``GET /healthz`` — the store's health document (200/503).
* ``GET /stats`` — gateway-side counters and quota occupancy.

**Division of labour.**  The event loop does only cheap, non-blocking
work: HTTP parsing, XPath parsing, the optional DTD/path-summary lint
(unsatisfiable queries short-circuit to an empty answer with zero SQL),
per-client quota admission, and shard-map target resolution.  Execution
always happens off-loop — materialized queries dispatch the existing
thread-pool :class:`~repro.serve.executor.QueryExecutor` through a
small dispatch pool; streamed queries consume the executor's
:class:`~repro.serve.executor.ScatterStream` futures as asyncio
awaitables.  Nothing on the loop ever touches SQLite.

**Admission is layered.**  A per-client token bucket
(:class:`ClientQuotas`) sheds abusive clients *before* any work, with a
``Retry-After`` hint computed from the bucket's refill rate; requests
that pass it still face the executor's global ``max_in_flight`` gate.
Both rejections surface as the typed :class:`~repro.errors.Overloaded`
and therefore the same HTTP 429 through the one status table in
:mod:`repro.errors` — Overloaded→429, DeadlineExceeded→504,
ShardError→502; a ``partial``-mode degraded answer is HTTP 206.

**Observability.**  Every request opens a ``gateway.request`` span on
the loop (closed before the first suspension point — an event loop
interleaves requests, so spans never stay open across an ``await``;
executor spans parent under it via the captured
:class:`~repro.obs.trace.RequestContext`), lands in ``gateway.*``
windowed metrics (per-route latency, status counts, quota rejections),
and emits one ``http`` wide event when the store carries a request log.

**Lock discipline.**  This module owns one lock — the quota table's —
registered as class ``pool`` in
:data:`repro.analysis.concurrency.LOCK_SITES`; only bucket arithmetic
runs under it.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor

from repro.errors import (
    Overloaded,
    ProtocolError,
    StorageError,
    XmlRelError,
    error_payload,
    http_status,
)
from repro.serve.executor import outcome_for
from repro.serve.protocol import (
    ANONYMOUS_CLIENT,
    CLIENT_HEADER,
    JSON_CONTENT_TYPE,
    MAX_BODY_BYTES,
    NDJSON_CONTENT_TYPE,
    QuerySpec,
    error_body,
    ndjson_line,
    parse_json_body,
    parse_query_params,
    result_body,
)
from repro.xpath.parser import parse_xpath

#: Reason phrases for the statuses the gateway emits.
_REASONS = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Route labels used in ``gateway.route.<route>.seconds`` histograms.
ROUTES = ("query", "query_stream", "healthz", "stats", "other")


class ClientQuotas:
    """Per-client token-bucket admission, layered *before* the
    executor's global max-in-flight gate.

    Each client id refills at *rate* tokens/second up to *burst*; a
    request costs one token.  :meth:`try_admit` returns ``None`` when
    admitted, else the seconds until the next token — the gateway's
    ``Retry-After``.  With ``rate=None`` the table admits everything
    (quotas off).

    The table is bounded: past *max_clients* distinct ids the stalest
    bucket is evicted (an evicted client simply restarts with a full
    burst — quotas bound throughput, they are not an audit log).
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        max_clients: int = 4096,
    ) -> None:
        if rate is not None and rate <= 0:
            raise StorageError("quota rate must be > 0 (or None: off)")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 1.0))
        if rate is not None and self.burst < 1.0:
            raise StorageError("quota burst must be >= 1")
        self.max_clients = max_clients
        # Guards the bucket table.  Lock class "pool" (registered in
        # repro.analysis.concurrency.LOCK_SITES): bucket arithmetic
        # only, nothing blocking.
        self._lock = threading.Lock()
        self._buckets: dict[str, list[float]] = {}

    def try_admit(self, client: str, now: float | None = None) -> float | None:
        """Spend one token for *client*; ``None`` when admitted, else
        the retry-after seconds."""
        if self.rate is None:
            return None
        if now is None:
            now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    stalest = min(
                        self._buckets, key=lambda c: self._buckets[c][1]
                    )
                    del self._buckets[stalest]
                bucket = self._buckets[client] = [self.burst, now]
            tokens = min(
                self.burst, bucket[0] + (now - bucket[1]) * self.rate
            )
            bucket[1] = now
            if tokens >= 1.0:
                bucket[0] = tokens - 1.0
                return None
            bucket[0] = tokens
            return (1.0 - tokens) / self.rate

    def stats(self) -> dict:
        with self._lock:
            clients = len(self._buckets)
        return {
            "rate_per_second": self.rate,
            "burst": self.burst,
            "clients": clients,
            "max_clients": self.max_clients,
        }


class Gateway:
    """The HTTP/JSON front end over one sharded store.

    :param store: the :class:`~repro.serve.sharded.ShardedStore` served.
    :param quota_rate: per-client admitted requests/second (None: off).
    :param quota_burst: per-client burst allowance (default: the rate).
    :param default_deadline: deadline applied when a request names none
        (the executor's own default still applies underneath).
    :param analyzer: optional
        :class:`~repro.analysis.xpathlint.XPathAnalyzer`; queries it
        proves unsatisfiable short-circuit on the event loop with an
        empty answer and zero SQL.
    :param idle_timeout: seconds a keep-alive connection may sit idle.

    ``start()`` binds the socket and runs the event loop on a named
    daemon thread; the gateway is usable from synchronous code (tests,
    benchmarks, ``curl``) immediately after.  ``stop()`` (or the
    owning store's ``close()``) shuts it down.
    """

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        quota_rate: float | None = None,
        quota_burst: float | None = None,
        default_deadline: float | None = None,
        analyzer=None,
        max_dispatch_workers: int | None = None,
        idle_timeout: float = 30.0,
    ) -> None:
        self.store = store
        self.executor = store.executor
        self.metrics = store.metrics
        self.tracer = store.tracer
        self.host = host
        self.requested_port = port
        self.default_deadline = default_deadline
        self.analyzer = analyzer
        self.idle_timeout = idle_timeout
        self.quotas = ClientQuotas(quota_rate, quota_burst)
        self._dispatch = ThreadPoolExecutor(
            max_workers=max_dispatch_workers
            or max(4, len(store.pools)),
            thread_name_prefix="xmlrel-gateway-dispatch",
        )
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._port: int | None = None
        self._route_seconds: dict = {}
        self._status_counters: dict = {}

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "Gateway":
        """Bind and serve; returns once the socket accepts connections."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop,
            name="xmlrel-gateway",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise StorageError("gateway failed to start within 10s")
        if self._startup_error is not None:
            raise StorageError(
                f"gateway failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # surfaced to start()/stop()
            self._startup_error = error
        finally:
            self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port
        )
        self._port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop_event.wait()

    def stop(self) -> None:
        """Shut the listener and the dispatch pool down; idempotent."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._dispatch.shutdown(wait=False, cancel_futures=True)

    @property
    def port(self) -> int:
        if self._port is None:
            raise StorageError("gateway is not started")
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- metrics ------------------------------------------------------------------

    def _route_histogram(self, route: str):
        histogram = self._route_seconds.get(route)
        if histogram is None:
            histogram = self._route_seconds[route] = (
                self.metrics.histogram(f"gateway.route.{route}.seconds")
            )
        return histogram

    def _status_counter(self, status: int):
        counter = self._status_counters.get(status)
        if counter is None:
            counter = self._status_counters[status] = (
                self.metrics.counter(f"gateway.status.{status}")
            )
        return counter

    def _observe(
        self,
        route: str,
        status: int,
        started: float,
        request_id: str | None,
        client: str | None,
        xpath: str | None = None,
        first_byte: float | None = None,
        rows: int | None = None,
    ) -> None:
        """Per-request accounting: route histogram, status counter,
        and the ``http`` wide event."""
        elapsed = time.perf_counter() - started
        self.metrics.counter("gateway.requests").inc()
        self._route_histogram(route).observe(elapsed)
        self._status_counter(status).inc()
        if first_byte is not None:
            self.metrics.histogram("gateway.first_byte_seconds").observe(
                first_byte - started
            )
        log = self.executor.request_log
        if log is not None:
            event = {
                "event": "http",
                "ts": time.time(),
                "route": route,
                "status": status,
                "elapsed_seconds": elapsed,
            }
            if request_id is not None:
                event["request_id"] = request_id
            if client is not None:
                event["client"] = client
            if xpath is not None:
                event["xpath"] = xpath
            if first_byte is not None:
                event["first_byte_seconds"] = first_byte - started
            if rows is not None:
                event["rows"] = rows
            log.emit(event)

    # -- connection handling ------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.metrics.gauge("gateway.connections").add(1)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                    if request is None:
                        break
                    close = await self._route_request(writer, *request)
                except XmlRelError as error:
                    # Wire-level failures (malformed request line,
                    # health probe errors): typed status, then close.
                    await self._respond_json(
                        writer,
                        http_status(error),
                        error_body(error),
                        keep_alive=False,
                    )
                    close = True
                if close:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            TimeoutError,
        ):
            pass
        finally:
            self.metrics.gauge("gateway.connections").add(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """One HTTP request off the wire: ``(method, path, params,
        headers, body)``, or None at EOF/idle timeout."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.idle_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            return None
        except ValueError:
            # readline() raises ValueError past the stream limit.
            raise ProtocolError("request line too long") from None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ProtocolError(f"malformed request line: {line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.idle_timeout
                )
            except ValueError:
                raise ProtocolError("request header too long") from None
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 100:
                raise ProtocolError("too many request headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "").strip()
        if raw_length:
            try:
                length = int(raw_length)
            except ValueError:
                raise ProtocolError(
                    f"invalid Content-Length: {raw_length!r}"
                ) from None
            if length < 0:
                raise ProtocolError(
                    f"negative Content-Length: {length}"
                )
        else:
            length = 0
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        split = urllib.parse.urlsplit(target)
        params = dict(urllib.parse.parse_qsl(split.query))
        return method, split.path, params, headers, body

    async def _route_request(
        self, writer, method, path, params, headers, body
    ) -> bool:
        """Dispatch one parsed request; returns True when the
        connection must close (streams always close)."""
        keep_alive = headers.get("connection", "").lower() != "close"
        if path == "/query":
            return await self._handle_query(
                writer, method, params, headers, body, keep_alive
            )
        started = time.perf_counter()
        if path == "/healthz":
            # Health probes acquire pooled connections — off-loop work.
            health = await asyncio.get_running_loop().run_in_executor(
                self._dispatch, self.store.health
            )
            status = 200 if health.get("status") == "ok" else 503
            await self._respond_json(
                writer, status, health, keep_alive=keep_alive
            )
            self._observe("healthz", status, started, None, None)
            return not keep_alive
        if path == "/stats":
            await self._respond_json(
                writer, 200, self.snapshot(), keep_alive=keep_alive
            )
            self._observe("stats", 200, started, None, None)
            return not keep_alive
        await self._respond_json(
            writer,
            404,
            {"error": "NotFound", "message": f"no route {path}",
             "status": 404},
            keep_alive=keep_alive,
        )
        self._observe("other", 404, started, None, None)
        return not keep_alive

    # -- the query route ----------------------------------------------------------

    def _prepare(self, method, params, headers, body):
        """The on-loop phases: protocol validation, XPath parse, the
        optional satisfiability lint, quota admission, and shard-map
        target resolution.  Purely synchronous — runs under the
        ``gateway.request`` span, raises typed errors only."""
        default_client = headers.get(CLIENT_HEADER, ANONYMOUS_CLIENT)
        with self.tracer.span("gateway.parse"):
            if method == "POST":
                spec = parse_json_body(body, default_client)
            elif method == "GET":
                spec = parse_query_params(params, default_client)
            else:
                raise ProtocolError(
                    f"method {method} not allowed on /query"
                )
            if spec.deadline is None and self.default_deadline is not None:
                spec = QuerySpec(
                    xpath=spec.xpath,
                    doc_id=spec.doc_id,
                    deadline=self.default_deadline,
                    read_from=spec.read_from,
                    stream=spec.stream,
                    client=spec.client,
                )
            parsed = parse_xpath(spec.xpath)
        with self.tracer.span("gateway.admit", client=spec.client):
            retry_after = self.quotas.try_admit(spec.client)
        if retry_after is not None:
            self.metrics.counter("gateway.quota_rejections").inc()
            error = Overloaded(
                f"client {spec.client!r} exceeded its admission quota "
                f"({self.quotas.rate:g}/s, burst {self.quotas.burst:g})"
            )
            error.retry_after = retry_after
            raise error
        short_circuit = False
        if self.analyzer is not None:
            with self.tracer.span("gateway.lint"):
                short_circuit = self.analyzer.satisfiable(parsed) is False
            if short_circuit:
                self.metrics.counter("gateway.short_circuits").inc()
        if spec.doc_id is not None:
            record = self.store.shard_map.resolve(spec.doc_id)
            targets = {record.shard: [(spec.doc_id, record.local_doc_id)]}
        else:
            targets = {
                shard: self.store.shard_map.docs_for_shard(shard)
                for shard in self.store.pools
            }
        return spec, targets, short_circuit

    async def _handle_query(
        self, writer, method, params, headers, body, keep_alive
    ) -> bool:
        started = time.perf_counter()
        # detached=False: this root legitimately originates on the
        # event-loop thread — it IS the request origin, not broken
        # cross-thread propagation (which the tracer would flag).
        root = self.tracer.start_span(
            "gateway.request", method=method, detached=False
        )
        ctx = self.tracer.capture()
        request_id = ctx.request_id
        route = "query"
        status = 500
        spec = None
        first_byte = None
        rows = None
        close = not keep_alive
        try:
            try:
                spec, targets, short_circuit = self._prepare(
                    method, params, headers, body
                )
                if root:
                    root.set(
                        xpath=spec.xpath,
                        client=spec.client,
                        stream=spec.stream,
                    )
            finally:
                # The loop interleaves requests: no span survives an
                # await.  Children attach via the captured context.
                self.tracer.end_span(root)
            route = "query_stream" if spec.stream else "query"
            if spec.stream:
                # Streamed responses (short-circuit ones included) are
                # chunked with Connection: close — never reuse.
                close = True
            if short_circuit:
                status, rows = await self._respond_short_circuit(
                    writer, spec, request_id, started, keep_alive
                )
            elif spec.stream:
                status, first_byte, rows = await self._stream_query(
                    writer, spec, targets, ctx, request_id
                )
            else:
                status, rows = await self._materialized_query(
                    writer, spec, targets, ctx, request_id, keep_alive
                )
        except XmlRelError as error:
            status = http_status(error)
            extra = {}
            if isinstance(error, Overloaded):
                retry_after = getattr(error, "retry_after", None) or 1.0
                extra["Retry-After"] = str(
                    max(1, math.ceil(retry_after))
                )
            await self._respond_json(
                writer,
                status,
                error_body(error, request_id),
                keep_alive=keep_alive,
                extra_headers=extra,
            )
        if root:
            root.set(status=status)
        self._observe(
            route,
            status,
            started,
            request_id,
            spec.client if spec is not None else None,
            xpath=spec.xpath if spec is not None else None,
            first_byte=first_byte,
            rows=rows,
        )
        return close

    async def _respond_short_circuit(
        self, writer, spec, request_id, started, keep_alive
    ):
        """An unsatisfiable query answered from the loop: zero rows,
        zero SQL, zero executor occupancy."""
        body = {
            "request_id": request_id,
            "rows": [],
            "row_count": 0,
            "shards_queried": 0,
            "elapsed_seconds": time.perf_counter() - started,
            "partial": False,
            "short_circuit": True,
        }
        if spec.stream:
            head = self._head(200, NDJSON_CONTENT_TYPE, chunked=True)
            writer.write(head)
            await self._chunk(
                writer,
                ndjson_line(
                    {"event": "start", "request_id": request_id,
                     "shards": 0, "short_circuit": True}
                ),
            )
            await self._chunk(
                writer,
                ndjson_line(
                    {"event": "end", "outcome": "ok", "rows": 0,
                     "short_circuit": True}
                ),
            )
            await self._end_chunks(writer)
        else:
            await self._respond_json(
                writer, 200, body, keep_alive=keep_alive
            )
        return 200, 0

    async def _materialized_query(
        self, writer, spec, targets, ctx, request_id, keep_alive
    ):
        """Dispatch the classic materialized scatter to the executor's
        thread world; the loop only awaits the handoff future."""
        loop = asyncio.get_running_loop()

        def run():
            with self.tracer.adopt(ctx):
                return self.executor.query(
                    spec.xpath,
                    targets,
                    deadline=spec.deadline,
                    read_from=spec.read_from,
                    ctx=ctx,
                )

        result = await loop.run_in_executor(self._dispatch, run)
        status = 206 if result.partial else 200
        await self._respond_json(
            writer,
            status,
            result_body(result, request_id),
            keep_alive=keep_alive,
        )
        return status, len(result.rows)

    async def _stream_query(self, writer, spec, targets, ctx, request_id):
        """The incremental path: NDJSON rows per shard as each
        completes, a terminal ``end`` (or ``error``) event as the
        in-band status line."""
        stream = self.executor.stream(
            spec.xpath,
            targets,
            deadline=spec.deadline,
            read_from=spec.read_from,
            ctx=ctx,
        )
        # The stream owns an admission slot from here on: every write —
        # including the head and the start event, where a client hangup
        # raises — must sit under the try so finish() releases it.
        first_byte = None
        rows_sent = 0
        try:
            writer.write(
                self._head(200, NDJSON_CONTENT_TYPE, chunked=True)
            )
            await self._chunk(
                writer,
                ndjson_line(
                    {
                        "event": "start",
                        "request_id": stream.request_id,
                        "shards": len(targets),
                        "xpath": spec.xpath,
                    }
                ),
            )
            first_byte = time.perf_counter()
            pending = {}
            for future in stream.futures:
                wrapped = asyncio.wrap_future(future)
                # Consume late results/exceptions so abandoned shard
                # tasks never log "exception was never retrieved".
                wrapped.add_done_callback(
                    lambda f: f.cancelled() or f.exception()
                )
                pending[wrapped] = future
            while pending:
                done, _ = await asyncio.wait(
                    pending,
                    timeout=stream.deadline_remaining(),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    raise stream.expire()
                for wrapped in done:
                    shard, rows = stream.collect(pending.pop(wrapped))
                    if rows is None:
                        message = dict(stream.failures()).get(
                            shard, "shard failed"
                        )
                        await self._chunk(
                            writer,
                            ndjson_line(
                                {"event": "shard_error", "shard": shard,
                                 "message": message}
                            ),
                        )
                        continue
                    rows_sent += len(rows)
                    await self._chunk(
                        writer,
                        ndjson_line(
                            {"event": "rows", "shard": shard,
                             "rows": [list(row) for row in rows]}
                        ),
                    )
            result = stream.finish()
            end_event = {
                "event": "end",
                "outcome": "partial" if result.partial else "ok",
                "rows": len(result.rows),
                "elapsed_seconds": result.elapsed_seconds,
            }
            if result.partial:
                end_event["failed_shards"] = [
                    {"shard": shard, "message": message}
                    for shard, message in result.failed_shards
                ]
            await self._chunk(writer, ndjson_line(end_event))
            await self._end_chunks(writer)
            return (
                206 if result.partial else 200, first_byte, rows_sent,
            )
        except XmlRelError as error:
            stream.finish(error)
            await self._chunk(
                writer,
                ndjson_line(
                    {"event": "error", **error_body(error, request_id)}
                ),
            )
            await self._end_chunks(writer)
            return http_status(error), first_byte, rows_sent
        except BaseException as error:
            # Client hangup / loop shutdown: still release the slot.
            # finish() is idempotent, so a write failure after the
            # happy-path merge cannot double-release.
            stream.finish(error)
            raise

    # -- response plumbing --------------------------------------------------------

    @staticmethod
    def _head(
        status: int,
        content_type: str,
        length: int | None = None,
        chunked: bool = False,
        keep_alive: bool = False,
        extra_headers: dict | None = None,
    ) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
        ]
        if chunked:
            lines.append("Transfer-Encoding: chunked")
            lines.append("Connection: close")
        else:
            lines.append(f"Content-Length: {length or 0}")
            lines.append(
                "Connection: keep-alive" if keep_alive
                else "Connection: close"
            )
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _respond_json(
        self,
        writer,
        status: int,
        obj: dict,
        keep_alive: bool = False,
        extra_headers: dict | None = None,
    ) -> None:
        body = ndjson_line(obj)  # compact JSON + trailing newline
        writer.write(
            self._head(
                status,
                JSON_CONTENT_TYPE,
                length=len(body),
                keep_alive=keep_alive,
                extra_headers=extra_headers,
            )
        )
        writer.write(body)
        await writer.drain()
        self.metrics.counter("gateway.bytes_sent").inc(len(body))

    async def _chunk(self, writer, payload: bytes) -> None:
        writer.write(
            f"{len(payload):x}\r\n".encode("latin-1")
            + payload + b"\r\n"
        )
        await writer.drain()
        self.metrics.counter("gateway.bytes_sent").inc(len(payload))

    @staticmethod
    async def _end_chunks(writer) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- introspection ------------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/stats`` document: where the gateway sits, what it has
        served, and the quota table's occupancy."""
        return {
            "url": self.url,
            "store": {
                "scheme": self.store.scheme_name,
                "shards": len(self.store.pools),
                "documents": len(self.store.shard_map),
            },
            "quotas": self.quotas.stats(),
            "default_deadline": self.default_deadline,
            "metrics": self.metrics.snapshot(prefix="gateway."),
        }
