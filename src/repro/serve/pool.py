"""Per-shard pools of read-only WAL connections.

A :class:`ConnectionPool` owns up to ``size`` read-only
:class:`~repro.relational.database.Database` connections to one shard
file, each paired with its own scheme instance (translators and
reconstruction need one).  Connections are built lazily, handed out
LIFO (the most recently used connection has the warmest page cache),
health-checked on acquire, and shared across threads — every pooled
database is opened with ``check_same_thread=False`` and is used by at
most one thread at a time between ``acquire`` and ``release``.

All pooled connections of a shard share one thread-safe
:class:`~repro.relational.plancache.PlanCache`, so the first query to
translate an XPath warms it for the whole pool.

Exhaustion policy: ``acquire`` blocks up to ``acquire_timeout`` seconds
for a connection, then raises :class:`~repro.errors.Overloaded` — the
caller (the scatter-gather executor) treats that exactly like any other
shed load.

Two invalidation channels exist for writable shards:

* **Plan epoch** — the pool carries a shard-local epoch counter; a
  write on this shard bumps it (:meth:`ConnectionPool.bump_epoch`) and
  ``acquire`` stamps it onto the handed-out scheme's ``plan_epoch``, so
  cached plans from before the write become unreachable *on this shard
  only* — other shards' pools keep serving their cached plans.
* **Generation** — :meth:`ConnectionPool.recycle` retires every pooled
  connection (idle now, checked-out ones at release) after the shard
  file is atomically replaced underneath the pool (replica snapshot
  ship); new acquires build connections against the new file.

A fresh connection failing its health check normally means the shard is
down; with a ``retry`` policy the pool backs off and rebuilds up to
``max_attempts`` times before reporting shard-down, riding out
transient stalls.

Pool state is observable through gauges/counters in the owning
:class:`~repro.obs.metrics.MetricsRegistry`, namespaced by pool name:
``pool.<name>.in_use``, ``pool.<name>.open`` (gauges),
``pool.<name>.acquires``, ``pool.<name>.releases``,
``pool.<name>.timeouts``, ``pool.<name>.health_failures``,
``pool.<name>.health_retries``, ``pool.<name>.recycled`` (counters).
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from collections.abc import Callable

from repro.core.registry import create_scheme
from repro.errors import Overloaded, StorageError, XmlRelError
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.relational.plancache import PlanCache
from repro.relational.retry import RetryPolicy
from repro.relational.shardmap import connection_alive


class ReadSession:
    """One pooled read-only connection plus its scheme instance.

    Handed out by :meth:`ConnectionPool.acquire`; use ``session.scheme``
    for queries (``query_pres``/``query_nodes``/``reconstruct``) and
    ``session.db`` for raw reads.  Must be given back with
    :meth:`ConnectionPool.release` (or use
    :meth:`ConnectionPool.connection`).
    """

    __slots__ = ("db", "scheme", "fresh", "generation")

    def __init__(self, db: Database, scheme, generation: int = 0) -> None:
        self.db = db
        self.scheme = scheme
        #: True only between construction and first release — a fresh
        #: connection that fails its health check is a hard error (the
        #: shard is down), not a stale-connection retry.
        self.fresh = True
        #: The pool generation this connection was built under; a
        #: :meth:`ConnectionPool.recycle` bumps the pool's generation so
        #: stale connections are discarded instead of re-pooled.
        self.generation = generation

    def close(self) -> None:
        self.db.close()


class ConnectionPool:
    """A bounded pool of read-only connections to one shard file."""

    def __init__(
        self,
        path: str,
        scheme: str,
        size: int = 4,
        acquire_timeout: float = 1.0,
        profile: str = "durable",
        lint: str = "off",
        name: str = "shard",
        metrics: MetricsRegistry | None = None,
        database_factory: Callable | None = None,
        scheme_kwargs: dict | None = None,
        retry: RetryPolicy | None = None,
        tracer=None,
    ) -> None:
        if size < 1:
            raise StorageError("pool size must be >= 1")
        self.path = path
        self.scheme_name = scheme
        self.size = size
        self.acquire_timeout = acquire_timeout
        self.profile = profile
        self.lint = lint
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Builds the underlying database; tests swap in fault-injecting
        #: factories (see
        #: :meth:`repro.reliability.faults.ShardFaultPolicy.factory`).
        self.database_factory = database_factory
        self.scheme_kwargs = dict(scheme_kwargs or {})
        #: Backoff for fresh-connection health failures (None: report
        #: shard-down on the first one, the pre-retry behaviour).
        self.retry = retry
        #: Tracer threaded into every pooled Database so per-statement
        #: ``sql.statement`` spans nest under adopted request roots.
        self.tracer = tracer
        #: One warm translation cache for the whole pool.
        self.plan_cache = PlanCache()
        self._idle: queue.LifoQueue[ReadSession] = queue.LifoQueue()
        self._lock = threading.Lock()
        self._created = 0
        self._closed = False
        self._epoch = 0
        self._generation = 0

    # -- metrics helpers ----------------------------------------------------------

    def _counter(self, suffix: str):
        return self.metrics.counter(f"pool.{self.name}.{suffix}")

    def _gauge(self, suffix: str):
        return self.metrics.gauge(f"pool.{self.name}.{suffix}")

    # -- connection lifecycle -----------------------------------------------------

    def _build(self) -> ReadSession:
        factory = self.database_factory or Database
        kwargs = dict(
            profile=self.profile,
            lint=self.lint,
            read_only=True,
            check_same_thread=False,
            plan_cache=self.plan_cache,
        )
        # Only pass the tracer when one was provided — injected
        # database factories (fault policies) may not accept the kwarg.
        if self.tracer is not None:
            kwargs["tracer"] = self.tracer
        db = factory(self.path, **kwargs)
        try:
            scheme = create_scheme(self.scheme_name, db, **self.scheme_kwargs)
        except BaseException:
            db.close()
            raise
        self._counter("created").inc()
        with self._lock:
            generation = self._generation
        return ReadSession(db, scheme, generation)

    def _healthy(self, session: ReadSession) -> bool:
        """One cheap round trip proving the connection still answers."""
        return connection_alive(session.db)

    def _stale(self, session: ReadSession) -> bool:
        with self._lock:
            return session.generation != self._generation

    def _discard(self, session: ReadSession) -> None:
        with self._lock:
            self._created -= 1
            self._gauge("open").set(self._created)
        try:
            session.close()
        except XmlRelError:
            pass

    def _drain_idle(self, recycled: bool = False) -> None:
        """Discard every currently idle session."""
        while True:
            try:
                session = self._idle.get_nowait()
            except queue.Empty:
                break
            if recycled:
                self._counter("recycled").inc()
            self._discard(session)

    # -- acquire / release --------------------------------------------------------

    def acquire(self, timeout: float | None = None) -> ReadSession:
        """Check out a healthy read session, waiting at most *timeout*
        seconds (default: the pool's ``acquire_timeout``).

        Raises :class:`~repro.errors.Overloaded` when every connection
        stays busy past the timeout, and :class:`StorageError` when the
        shard itself is unhealthy (even freshly built connections fail
        their health check, through the retry budget if one is set).
        """
        if self._closed:
            raise StorageError(f"pool {self.name!r} is closed")
        budget = self.acquire_timeout if timeout is None else timeout
        deadline = time.monotonic() + max(budget, 0.0)
        self._counter("acquires").inc()
        fresh_failures = 0
        while True:
            session = self._checkout(deadline)
            if self._stale(session):
                # Built before the last recycle() — the shard file was
                # replaced underneath it; never hand it out again.
                self._counter("recycled").inc()
                self._discard(session)
                continue
            if self._healthy(session):
                session.fresh = False
                with self._lock:
                    session.scheme.plan_epoch = self._epoch
                self._gauge("in_use").add(1)
                return session
            was_fresh = session.fresh
            self._counter("health_failures").inc()
            self._discard(session)
            if was_fresh:
                # A brand-new connection failing means the shard itself
                # is unhealthy, not that this connection went stale.
                # With a retry policy, back off and rebuild — a
                # transiently-stalled shard (mid-recovery, mid-ship)
                # answers on a later attempt; without one, or once the
                # attempts run out, report the shard down.
                fresh_failures += 1
                attempts = (
                    self.retry.max_attempts if self.retry is not None else 1
                )
                if fresh_failures < attempts:
                    self._counter("health_retries").inc()
                    self.retry.backoff(fresh_failures)
                    continue
                raise StorageError(
                    f"shard pool {self.name!r}: fresh connection failed "
                    f"its health check ({fresh_failures} attempt(s); "
                    f"shard down?)"
                )

    def _checkout(self, deadline: float) -> ReadSession:
        """An idle session, a newly built one, or a timed wait."""
        try:
            session = self._idle.get_nowait()
            session.fresh = False
            return session
        except queue.Empty:
            pass
        with self._lock:
            can_build = self._created < self.size
            if can_build:
                self._created += 1
                self._gauge("open").set(self._created)
        if can_build:
            try:
                return self._build()
            except BaseException:
                with self._lock:
                    self._created -= 1
                    self._gauge("open").set(self._created)
                raise
        remaining = deadline - time.monotonic()
        try:
            if remaining <= 0:
                session = self._idle.get_nowait()
            else:
                session = self._idle.get(timeout=remaining)
            session.fresh = False
            return session
        except queue.Empty:
            self._counter("timeouts").inc()
            raise Overloaded(
                f"shard pool {self.name!r}: no connection available "
                f"within the acquire timeout "
                f"({self.size} connections, all busy)",
                in_flight=self.size,
                limit=self.size,
            ) from None

    def release(self, session: ReadSession) -> None:
        """Return a session to the pool (closes it if the pool closed,
        or was recycled, while it was out)."""
        self._gauge("in_use").add(-1)
        self._counter("releases").inc()
        if self._closed or self._stale(session):
            self._discard(session)
            return
        self._idle.put(session)
        if self._closed:
            # close() may have set the flag and drained the queue
            # between our check above and the put — drain again so no
            # connection outlives the pool.  (Found by the concurrency
            # audit: the same window for recycle() is benign, because
            # acquire() re-checks staleness at checkout.)
            self._drain_idle()

    @contextmanager
    def connection(self, timeout: float | None = None):
        """``with pool.connection() as session:`` acquire/release pair."""
        session = self.acquire(timeout)
        try:
            yield session
        finally:
            self.release(session)

    # -- invalidation --------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The shard-local plan epoch stamped onto acquired schemes."""
        with self._lock:
            return self._epoch

    def bump_epoch(self) -> int:
        """Invalidate cached plans for *this shard only*: plans cached
        under earlier epochs become unreachable (the cache key includes
        ``plan_epoch``) without touching other shards' caches."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def recycle(self) -> None:
        """Retire every pooled connection: idle ones now, checked-out
        ones when released.  Called after the shard file was atomically
        replaced (replica snapshot ship) so no connection keeps reading
        the unlinked old file."""
        with self._lock:
            self._generation += 1
        self._drain_idle(recycled=True)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse further acquires.

        Sessions currently checked out are closed at their release.
        """
        self._closed = True
        self._drain_idle()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict[str, int]:
        """Point-in-time pool accounting (plus plan-cache stats)."""
        with self._lock:
            open_count = self._created
            epoch = self._epoch
            generation = self._generation
        return {
            "open": open_count,
            "idle": self._idle.qsize(),
            "size": self.size,
            "epoch": epoch,
            "generation": generation,
            "plan_cache": self.plan_cache.stats(),
        }
