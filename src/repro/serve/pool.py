"""Per-shard pools of read-only WAL connections.

A :class:`ConnectionPool` owns up to ``size`` read-only
:class:`~repro.relational.database.Database` connections to one shard
file, each paired with its own scheme instance (translators and
reconstruction need one).  Connections are built lazily, handed out
LIFO (the most recently used connection has the warmest page cache),
health-checked on acquire, and shared across threads — every pooled
database is opened with ``check_same_thread=False`` and is used by at
most one thread at a time between ``acquire`` and ``release``.

All pooled connections of a shard share one thread-safe
:class:`~repro.relational.plancache.PlanCache`, so the first query to
translate an XPath warms it for the whole pool.

Exhaustion policy: ``acquire`` blocks up to ``acquire_timeout`` seconds
for a connection, then raises :class:`~repro.errors.Overloaded` — the
caller (the scatter-gather executor) treats that exactly like any other
shed load.

Pool state is observable through gauges/counters in the owning
:class:`~repro.obs.metrics.MetricsRegistry`, namespaced by pool name:
``pool.<name>.in_use``, ``pool.<name>.open`` (gauges),
``pool.<name>.acquires``, ``pool.<name>.releases``,
``pool.<name>.timeouts``, ``pool.<name>.health_failures`` (counters).
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from collections.abc import Callable

from repro.core.registry import create_scheme
from repro.errors import Overloaded, StorageError, XmlRelError
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.relational.plancache import PlanCache
from repro.relational.shardmap import connection_alive


class ReadSession:
    """One pooled read-only connection plus its scheme instance.

    Handed out by :meth:`ConnectionPool.acquire`; use ``session.scheme``
    for queries (``query_pres``/``query_nodes``/``reconstruct``) and
    ``session.db`` for raw reads.  Must be given back with
    :meth:`ConnectionPool.release` (or use
    :meth:`ConnectionPool.connection`).
    """

    __slots__ = ("db", "scheme", "fresh")

    def __init__(self, db: Database, scheme) -> None:
        self.db = db
        self.scheme = scheme
        #: True only between construction and first release — a fresh
        #: connection that fails its health check is a hard error (the
        #: shard is down), not a stale-connection retry.
        self.fresh = True

    def close(self) -> None:
        self.db.close()


class ConnectionPool:
    """A bounded pool of read-only connections to one shard file."""

    def __init__(
        self,
        path: str,
        scheme: str,
        size: int = 4,
        acquire_timeout: float = 1.0,
        profile: str = "durable",
        lint: str = "off",
        name: str = "shard",
        metrics: MetricsRegistry | None = None,
        database_factory: Callable | None = None,
        scheme_kwargs: dict | None = None,
    ) -> None:
        if size < 1:
            raise StorageError("pool size must be >= 1")
        self.path = path
        self.scheme_name = scheme
        self.size = size
        self.acquire_timeout = acquire_timeout
        self.profile = profile
        self.lint = lint
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Builds the underlying database; tests swap in fault-injecting
        #: factories (see
        #: :meth:`repro.reliability.faults.ShardFaultPolicy.factory`).
        self.database_factory = database_factory
        self.scheme_kwargs = dict(scheme_kwargs or {})
        #: One warm translation cache for the whole pool.
        self.plan_cache = PlanCache()
        self._idle: queue.LifoQueue[ReadSession] = queue.LifoQueue()
        self._lock = threading.Lock()
        self._created = 0
        self._closed = False

    # -- metrics helpers ----------------------------------------------------------

    def _counter(self, suffix: str):
        return self.metrics.counter(f"pool.{self.name}.{suffix}")

    def _gauge(self, suffix: str):
        return self.metrics.gauge(f"pool.{self.name}.{suffix}")

    # -- connection lifecycle -----------------------------------------------------

    def _build(self) -> ReadSession:
        factory = self.database_factory or Database
        db = factory(
            self.path,
            profile=self.profile,
            lint=self.lint,
            read_only=True,
            check_same_thread=False,
            plan_cache=self.plan_cache,
        )
        try:
            scheme = create_scheme(self.scheme_name, db, **self.scheme_kwargs)
        except BaseException:
            db.close()
            raise
        self._counter("created").inc()
        return ReadSession(db, scheme)

    def _healthy(self, session: ReadSession) -> bool:
        """One cheap round trip proving the connection still answers."""
        return connection_alive(session.db)

    def _discard(self, session: ReadSession) -> None:
        with self._lock:
            self._created -= 1
            self._gauge("open").set(self._created)
        try:
            session.close()
        except XmlRelError:
            pass

    # -- acquire / release --------------------------------------------------------

    def acquire(self, timeout: float | None = None) -> ReadSession:
        """Check out a healthy read session, waiting at most *timeout*
        seconds (default: the pool's ``acquire_timeout``).

        Raises :class:`~repro.errors.Overloaded` when every connection
        stays busy past the timeout, and :class:`StorageError` when the
        shard itself is unhealthy (even a freshly built connection fails
        its health check).
        """
        if self._closed:
            raise StorageError(f"pool {self.name!r} is closed")
        budget = self.acquire_timeout if timeout is None else timeout
        deadline = time.monotonic() + max(budget, 0.0)
        self._counter("acquires").inc()
        while True:
            session = self._checkout(deadline)
            if self._healthy(session):
                session.fresh = False
                self._gauge("in_use").add(1)
                return session
            was_fresh = session.fresh
            self._counter("health_failures").inc()
            self._discard(session)
            if was_fresh:
                # A brand-new connection failing means the shard is
                # down, not that this connection went stale — retrying
                # would spin until the timeout for the same answer.
                raise StorageError(
                    f"shard pool {self.name!r}: fresh connection failed "
                    f"its health check (shard down?)"
                )

    def _checkout(self, deadline: float) -> ReadSession:
        """An idle session, a newly built one, or a timed wait."""
        try:
            session = self._idle.get_nowait()
            session.fresh = False
            return session
        except queue.Empty:
            pass
        with self._lock:
            can_build = self._created < self.size
            if can_build:
                self._created += 1
                self._gauge("open").set(self._created)
        if can_build:
            try:
                return self._build()
            except BaseException:
                with self._lock:
                    self._created -= 1
                    self._gauge("open").set(self._created)
                raise
        remaining = deadline - time.monotonic()
        try:
            if remaining <= 0:
                session = self._idle.get_nowait()
            else:
                session = self._idle.get(timeout=remaining)
            session.fresh = False
            return session
        except queue.Empty:
            self._counter("timeouts").inc()
            raise Overloaded(
                f"shard pool {self.name!r}: no connection available "
                f"within the acquire timeout "
                f"({self.size} connections, all busy)",
                in_flight=self.size,
                limit=self.size,
            ) from None

    def release(self, session: ReadSession) -> None:
        """Return a session to the pool (closes it if the pool closed
        while it was out)."""
        self._gauge("in_use").add(-1)
        self._counter("releases").inc()
        if self._closed:
            self._discard(session)
            return
        self._idle.put(session)

    @contextmanager
    def connection(self, timeout: float | None = None):
        """``with pool.connection() as session:`` acquire/release pair."""
        session = self.acquire(timeout)
        try:
            yield session
        finally:
            self.release(session)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse further acquires.

        Sessions currently checked out are closed at their release.
        """
        self._closed = True
        while True:
            try:
                session = self._idle.get_nowait()
            except queue.Empty:
                break
            self._discard(session)

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict[str, int]:
        """Point-in-time pool accounting (plus plan-cache stats)."""
        with self._lock:
            open_count = self._created
        return {
            "open": open_count,
            "idle": self._idle.qsize(),
            "size": self.size,
            "plan_cache": self.plan_cache.stats(),
        }
