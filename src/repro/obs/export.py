"""Exporters for recorded traces.

Three formats, all derived from the same :class:`~repro.obs.trace.Tracer`
state:

* :func:`format_span_tree` — an indented, human-readable tree with
  millisecond durations (what you print after a session),
* :func:`to_jsonl` — one JSON object per finished span / point event,
  in completion order (machine-readable log; what CI archives),
* :func:`to_chrome_trace` — the Chrome Trace Event format
  (``chrome://tracing`` / Perfetto "load trace" compatible): complete
  (``"ph": "X"``) events with microsecond timestamps.
"""

from __future__ import annotations

import json

from repro.obs.trace import Span, Tracer

#: Attributes rendered inline in the span tree (in this order).
_TREE_ATTRS = ("scheme", "xpath", "rows", "retries", "params", "error")


def _format_attrs(span: Span) -> str:
    parts = []
    for key in _TREE_ATTRS:
        if key in span.attributes:
            parts.append(f"{key}={span.attributes[key]}")
    statement = span.attributes.get("sql")
    if statement:
        first_line = str(statement).strip().splitlines()[0]
        if len(first_line) > 60:
            first_line = first_line[:57] + "..."
        parts.append(f"sql={first_line!r}")
    return f"  [{', '.join(parts)}]" if parts else ""


def format_span_tree(tracer: Tracer) -> str:
    """Render the tracer's span forest as an indented text tree."""
    lines: list[str] = []
    for root in tracer.roots:
        for span in root.walk():
            indent = "  " * span.depth
            lines.append(
                f"{indent}{span.name}  {span.duration * 1000:.3f} ms"
                f"{_format_attrs(span)}"
            )
    return "\n".join(lines)


def span_to_dict(tracer: Tracer, span: Span) -> dict:
    """One finished span as a flat JSON-able record."""
    return {
        "type": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "depth": span.depth,
        "thread_id": span.thread_id,
        "start": round(tracer.relative(span.start), 9),
        "duration": round(span.duration, 9),
        "attributes": span.attributes,
    }


def to_jsonl(tracer: Tracer) -> str:
    """All finished spans (completion order) + point events, one JSON
    object per line."""
    lines = [
        json.dumps(span_to_dict(tracer, span), default=str)
        for span in tracer.finished
    ]
    lines.extend(
        json.dumps({"type": "event", **event}, default=str)
        for event in tracer.events
    )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path: str) -> str:
    """Write :func:`to_jsonl` output to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(tracer))
    return path


def to_chrome_trace(tracer: Tracer) -> dict:
    """The trace as a Chrome Trace Event JSON object.

    Load the serialized form in ``chrome://tracing`` or
    https://ui.perfetto.dev to see the pipeline phases on a timeline.
    Each OS thread that produced spans gets its own stable track
    (``tid`` assigned in first-appearance order), so a scatter-gather
    request renders as parallel per-shard lanes; span/parent ids ride
    along in ``args`` to keep the tree reconstructable from the export.
    """
    events = []
    # Map raw threading.get_ident() values (large, non-deterministic)
    # to small stable tids in first-appearance order over `finished`.
    tids: dict[int, int] = {}
    for span in tracer.finished:
        tid = tids.setdefault(span.thread_id, len(tids) + 1)
        args = {str(k): str(v) for k, v in span.attributes.items()}
        args["span_id"] = str(span.span_id)
        if span.parent_id is not None:
            args["parent_id"] = str(span.parent_id)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": tracer.relative(span.start) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    for event in tracer.events:
        args = {
            str(k): str(v)
            for k, v in event.items()
            if k not in ("name", "ts", "parent_id")
        }
        events.append(
            {
                "name": event["name"],
                "ph": "i",
                "ts": event["ts"] * 1e6,
                "s": "t",
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Serialize :func:`to_chrome_trace` to *path*; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle)
    return path
