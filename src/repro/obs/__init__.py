"""``repro.obs`` — zero-dependency observability for the engine.

The package instruments the whole store/translate/execute pipeline:

* :class:`Tracer` / :class:`Span` — hierarchical spans with monotonic
  timings (:mod:`repro.obs.trace`),
* :class:`MetricsRegistry` — counters, gauges, and percentile
  histograms (:mod:`repro.obs.metrics`),
* exporters — human-readable span tree, JSON Lines, Chrome trace
  (:mod:`repro.obs.export`),
* :class:`QueryReport` / :class:`Explanation` — per-query cost records
  (:mod:`repro.obs.report`).

Quickstart::

    from repro import XmlRelStore
    from repro.obs import Tracer, format_span_tree

    tracer = Tracer(slow_query_threshold=0.05)
    with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
        doc_id = store.store_text("<bib><book/></bib>")
        store.query_pres(doc_id, "//book")
    print(format_span_tree(tracer))
    print(tracer.metrics.snapshot_json(indent=2))
"""

from repro.obs.export import (
    format_span_tree,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_snapshot,
)
from repro.obs.report import Explanation, QueryReport
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Explanation",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "QueryReport",
    "Span",
    "Tracer",
    "format_span_tree",
    "load_snapshot",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
