"""``repro.obs`` — zero-dependency observability for the engine.

The package instruments the whole store/translate/execute pipeline:

* :class:`Tracer` / :class:`Span` — hierarchical spans with monotonic
  timings (:mod:`repro.obs.trace`),
* :class:`MetricsRegistry` — counters, gauges, and percentile
  histograms (:mod:`repro.obs.metrics`),
* exporters — human-readable span tree, JSON Lines, Chrome trace
  (:mod:`repro.obs.export`),
* :class:`QueryReport` / :class:`Explanation` — per-query cost records
  (:mod:`repro.obs.report`),
* :class:`WindowRing` — O(1)-memory sliding-window aggregation behind
  ``Histogram.window()`` / ``Counter.rate()`` (:mod:`repro.obs.window`),
* :class:`RequestContext` — cross-thread trace propagation
  (``tracer.capture()`` / ``tracer.adopt()``; :mod:`repro.obs.trace`),
* :class:`RequestLog` — bounded non-blocking wide-event sink
  (:mod:`repro.obs.events`),
* :class:`OpsServer` / :func:`to_prometheus` / :func:`parse_prometheus`
  — the live ``/metrics`` + ``/snapshot`` + ``/healthz`` endpoint
  (:mod:`repro.obs.ops`), with ``python -m repro.obs.top`` as the
  matching terminal dashboard.

Quickstart::

    from repro import XmlRelStore
    from repro.obs import Tracer, format_span_tree

    tracer = Tracer(slow_query_threshold=0.05)
    with XmlRelStore.open(scheme="interval", tracer=tracer) as store:
        doc_id = store.store_text("<bib><book/></bib>")
        store.query_pres(doc_id, "//book")
    print(format_span_tree(tracer))
    print(tracer.metrics.snapshot_json(indent=2))
"""

from repro.obs.events import RequestLog
from repro.obs.export import (
    format_span_tree,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_snapshot,
)
from repro.obs.ops import OpsServer, parse_prometheus, to_prometheus
from repro.obs.report import Explanation, QueryReport
from repro.obs.trace import NULL_TRACER, RequestContext, Span, Tracer
from repro.obs.window import WindowRing

__all__ = [
    "Counter",
    "Explanation",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "OpsServer",
    "QueryReport",
    "RequestContext",
    "RequestLog",
    "Span",
    "Tracer",
    "WindowRing",
    "format_span_tree",
    "load_snapshot",
    "parse_prometheus",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "write_chrome_trace",
    "write_jsonl",
]
