"""Sliding-window aggregation in O(1) memory.

A :class:`WindowRing` is a ring of per-second time buckets, each holding
a fixed-size log-binned value histogram plus count/sum/min/max.  It
answers "what were p50/p99/qps over the *last N seconds*" — the question
lifetime histograms (:class:`repro.obs.metrics.Histogram`) cannot,
because their summaries average over the whole process life and a
latency regression five seconds ago drowns in an hour of history.

Memory is constant: ``slots × (bins + a few scalars)`` regardless of
traffic (no per-observation storage).  Values land in log-spaced bins
(:data:`SUB_BINS` per octave above :data:`BASE_VALUE`), so windowed
percentiles are estimates with a bounded relative error of
``2^(1/SUB_BINS) - 1`` (~9% at the default 8 bins/octave) — the right
trade for an ops dashboard, where "p99 jumped 10x" matters and the
fourth significant digit does not.

Everything takes an injectable *clock* so tests can drive time by hand;
production uses :func:`time.monotonic`.
"""

from __future__ import annotations

import math
import threading
import time
from array import array

#: Values at or below this land in bin 0 (1 microsecond for latencies).
BASE_VALUE = 1e-6

#: Log bins per octave (value doubling); bounds percentile error ~9%.
SUB_BINS = 8

#: Total bins: 28 octaves above BASE_VALUE covers 1 µs .. ~268 s.
N_BINS = 28 * SUB_BINS

#: Default ring width — windows up to this many seconds are answerable.
DEFAULT_WIDTH_SECONDS = 120.0


def _bin_index(value: float) -> int:
    """The log bin *value* lands in (clamped to the ring's range)."""
    if value <= BASE_VALUE:
        return 0
    index = int(math.log2(value / BASE_VALUE) * SUB_BINS) + 1
    return index if index < N_BINS else N_BINS - 1


def _bin_value(index: int) -> float:
    """A representative value for bin *index* (geometric midpoint)."""
    if index <= 0:
        return BASE_VALUE
    return BASE_VALUE * 2.0 ** ((index - 0.5) / SUB_BINS)


class _Bucket:
    """One time slot of the ring."""

    __slots__ = ("bucket_id", "count", "total", "min", "max", "bins")

    def __init__(self, bins: bool) -> None:
        self.bucket_id = -1
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.bins = array("I", bytes(4 * N_BINS)) if bins else None

    def reset(self, bucket_id: int) -> None:
        self.bucket_id = bucket_id
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        if self.bins is not None:
            for i in range(N_BINS):
                self.bins[i] = 0


class WindowRing:
    """A sliding window of per-second aggregates over recent values.

    With ``bins=True`` (the default) each bucket carries the log-binned
    histogram needed for windowed percentiles; ``bins=False`` keeps only
    count/sum (enough for rates — what counters need).
    """

    def __init__(
        self,
        width_seconds: float = DEFAULT_WIDTH_SECONDS,
        bucket_seconds: float = 1.0,
        bins: bool = True,
        clock=time.monotonic,
    ) -> None:
        if width_seconds <= 0 or bucket_seconds <= 0:
            raise ValueError("window width and bucket size must be > 0")
        self.width_seconds = width_seconds
        self.bucket_seconds = bucket_seconds
        self._clock = clock
        # One extra slot so a full-width window plus the partial current
        # bucket never alias onto each other.
        self._slots = [
            _Bucket(bins)
            for _ in range(int(math.ceil(width_seconds / bucket_seconds)) + 1)
        ]
        self._lock = threading.Lock()

    # -- writing ------------------------------------------------------------------

    def _current(self, now: float) -> _Bucket:
        """The bucket for *now*, reset if it last held an older second
        (lock held by the caller)."""
        bucket_id = int(now // self.bucket_seconds)
        slot = self._slots[bucket_id % len(self._slots)]
        if slot.bucket_id != bucket_id:
            slot.reset(bucket_id)
        return slot

    def observe(self, value: float) -> None:
        """Record one value (a latency, a size) at the current time."""
        with self._lock:
            self._observe_locked(value)

    def add(self, amount: float = 1.0) -> None:
        """Record *amount* events at the current time (rate counting —
        does not touch the value bins)."""
        with self._lock:
            self._add_locked(amount)

    def _observe_locked(self, value: float) -> None:
        """:meth:`observe` body with :attr:`_lock` already held — the
        metrics instruments share their lock with the ring so one
        acquisition covers both lifetime and windowed state."""
        slot = self._current(self._clock())
        slot.count += 1
        slot.total += value
        if slot.min is None or value < slot.min:
            slot.min = value
        if slot.max is None or value > slot.max:
            slot.max = value
        if slot.bins is not None:
            slot.bins[_bin_index(value)] += 1

    def _add_locked(self, amount: float) -> None:
        """:meth:`add` body with :attr:`_lock` already held."""
        slot = self._current(self._clock())
        slot.count += int(amount)
        slot.total += amount

    # -- reading ------------------------------------------------------------------

    def _merge(self, window_seconds: float):
        """Fold the buckets of the last *window_seconds* together."""
        window = min(window_seconds, self.width_seconds)
        now = self._clock()
        current_id = int(now // self.bucket_seconds)
        oldest_id = current_id - int(
            math.ceil(window / self.bucket_seconds)
        ) + 1
        count = 0
        total = 0.0
        low: float | None = None
        high: float | None = None
        merged: list[int] | None = None
        with self._lock:
            for slot in self._slots:
                if not oldest_id <= slot.bucket_id <= current_id:
                    continue
                count += slot.count
                total += slot.total
                if slot.min is not None and (low is None or slot.min < low):
                    low = slot.min
                if slot.max is not None and (high is None or slot.max > high):
                    high = slot.max
                if slot.bins is not None:
                    if merged is None:
                        merged = [0] * N_BINS
                    for i in range(N_BINS):
                        merged[i] += slot.bins[i]
        return window, count, total, low, high, merged

    def count(self, window_seconds: float | None = None) -> int:
        """Events observed in the last *window_seconds*."""
        window = window_seconds or self.width_seconds
        _, count, _, _, _, _ = self._merge(window)
        return count

    def rate(self, window_seconds: float | None = None) -> float:
        """Events per second over the last *window_seconds*."""
        window = window_seconds or self.width_seconds
        window, count, _, _, _, _ = self._merge(window)
        return count / window if window else 0.0

    def summary(self, window_seconds: float | None = None) -> dict:
        """Windowed count/qps/mean/min/max plus p50/p90/p99 estimates.

        Percentile values are ``None`` when the ring has no value bins
        (rate-only mode) or the window saw nothing.
        """
        window = window_seconds or self.width_seconds
        window, count, total, low, high, merged = self._merge(window)
        summary = {
            "window_seconds": window,
            "count": count,
            "qps": count / window if window else 0.0,
            "mean": (total / count) if count else None,
            "min": low,
            "max": high,
        }
        for p in (50, 90, 99):
            summary[f"p{p}"] = self._percentile_from(merged, count, p)
        # Percentile estimates never exceed the exact extremes.
        if high is not None:
            for p in (50, 90, 99):
                if summary[f"p{p}"] is not None:
                    summary[f"p{p}"] = min(summary[f"p{p}"], high)
        return summary

    @staticmethod
    def _percentile_from(
        merged: list[int] | None, count: int, p: float
    ) -> float | None:
        if not merged or not count:
            return None
        rank = max(1, math.ceil(p / 100.0 * count))
        seen = 0
        for index, bin_count in enumerate(merged):
            seen += bin_count
            if seen >= rank:
                return _bin_value(index)
        return _bin_value(N_BINS - 1)
