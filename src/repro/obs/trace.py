"""Hierarchical tracing for the store/translate/execute pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
pipeline phase (``store`` → ``shred``/``insert``, ``query`` →
``translate``/``execute``/``reconstruct``) down to individual SQL
statements (``sql.statement`` spans emitted by
:class:`~repro.relational.database.Database`).  Spans carry monotonic
timings (:func:`time.perf_counter`), arbitrary attributes, and
parent/child nesting; point events (no duration) share the same record
stream.

Everything is in-process and zero-dependency: the tracer is a plain
object handed to :meth:`repro.XmlRelStore.open` (``tracer=``) and
threaded down through the :class:`~repro.relational.database.Database`.
A *disabled* tracer (``Tracer(enabled=False)``, or the module-level
:data:`NULL_TRACER` default) records nothing and keeps no per-call
state, so the instrumented hot paths cost one attribute check when
tracing is off.

The tracer is thread-safe in a lock-free-per-thread way: every thread
gets its *own* span stack (so nesting is always within one thread and
never interleaves across threads), while the shared collections —
:attr:`Tracer.roots`, :attr:`Tracer.finished`, :attr:`Tracer.events`,
and the span-id counter — are guarded by one small lock taken only at
span completion.  Spans started on a worker thread therefore become
their own roots rather than children of whatever the submitting thread
had open; the serving layer's scatter-gather workers rely on exactly
this (their per-shard spans must not nest under a sibling shard's).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """One timed phase: a named interval with attributes and children."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: Nesting depth: 0 for a root span.
    depth: int = 0

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attributes) -> "Span":
        """Attach attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def walk(self):
        """Yield this span and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """The span handed out by a disabled tracer: accepts the full Span
    surface, records nothing, and is shared (no per-call allocation)."""

    __slots__ = ()

    name = ""
    span_id = -1
    parent_id = None
    start = 0.0
    end = 0.0
    depth = 0
    duration = 0.0
    finished = True

    @property
    def attributes(self) -> dict:
        return {}

    @property
    def children(self) -> list:
        return []

    def set(self, **attributes) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        # Lets instrumentation write `if span:` to guard enabled-only work.
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager pairing ``start_span``/``end_span``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and "error" not in self._span.attributes:
            self._span.attributes["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer.end_span(self._span)
        return None


class Tracer:
    """Collects spans and point events for one pipeline/session.

    Use :meth:`span` as a context manager for well-scoped phases, or the
    explicit :meth:`start_span`/:meth:`end_span` pair where the interval
    does not map onto a ``with`` block.  Finished spans are kept both as
    a tree (:attr:`roots`) and in completion order (:attr:`finished`);
    the exporters in :mod:`repro.obs.export` consume either.
    """

    def __init__(
        self,
        enabled: bool = True,
        slow_query_threshold: float | None = None,
        max_sql_length: int = 2000,
    ) -> None:
        #: Master switch; a disabled tracer records nothing.
        self.enabled = enabled
        #: Statements slower than this (seconds) get their
        #: ``EXPLAIN QUERY PLAN`` captured into the statement span.
        #: ``None`` disables plan capture; ``0.0`` captures every plan.
        self.slow_query_threshold = slow_query_threshold
        #: SQL text longer than this is truncated in span attributes.
        self.max_sql_length = max_sql_length
        #: Metrics accumulated alongside the spans.
        self.metrics = MetricsRegistry()
        #: Completed root spans, in start order.
        self.roots: list[Span] = []
        #: All completed spans, in completion order.
        self.finished: list[Span] = []
        #: Point events (dicts with ``name``/``ts``/attributes).
        self.events: list[dict] = []
        #: Guards the shared collections and the span-id counter; the
        #: per-thread span stacks need no locking.
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._epoch = time.perf_counter()

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle -----------------------------------------------------------

    def start_span(self, name: str, **attributes) -> Span:
        """Open a span nested under the current one (explicit form)."""
        if not self.enabled:
            return NULL_SPAN  # type: ignore[return-value]
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            start=time.perf_counter(),
            attributes=dict(attributes),
            depth=len(stack),
        )
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close *span* (and any unclosed children left on the stack)."""
        if not self.enabled or span is NULL_SPAN:
            return
        stack = self._stack
        while stack:
            top = stack.pop()
            top.end = time.perf_counter()
            parent = stack[-1] if stack else None
            if parent is not None:
                # Parent is on this thread's stack: no lock needed to
                # attach the child.
                parent.children.append(top)
                with self._lock:
                    self.finished.append(top)
            else:
                with self._lock:
                    self.roots.append(top)
                    self.finished.append(top)
            if top is span:
                return
        # span was not on the stack (double end): record it standalone.
        if span.end is None:
            span.end = time.perf_counter()

    def span(self, name: str, **attributes):
        """Context manager form of :meth:`start_span`/:meth:`end_span`.

        .. code-block:: python

            with tracer.span("store", scheme="interval") as span:
                ...
                span.set(rows=result.total_rows)
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, self.start_span(name, **attributes))

    # -- point events -------------------------------------------------------------

    def event(self, name: str, **attributes) -> None:
        """Record an instantaneous event under the current span."""
        if not self.enabled:
            return
        stack = self._stack
        parent = stack[-1] if stack else None
        record = {
            "name": name,
            "ts": time.perf_counter() - self._epoch,
            "parent_id": parent.span_id if parent else None,
            **attributes,
        }
        with self._lock:
            self.events.append(record)

    # -- helpers -------------------------------------------------------------------

    def clip_sql(self, sql: str) -> str:
        """Truncate statement text for span attributes."""
        if len(sql) <= self.max_sql_length:
            return sql
        return sql[: self.max_sql_length] + f"... [{len(sql)} chars]"

    def relative(self, t: float) -> float:
        """Convert a perf_counter reading to seconds since tracer start."""
        return t - self._epoch

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def max_depth(self) -> int:
        """Deepest nesting level across finished spans (root = 1)."""
        return max((s.depth + 1 for s in self.finished), default=0)

    def spans_named(self, name: str) -> list[Span]:
        """All finished spans called *name*, in completion order."""
        return [s for s in self.finished if s.name == name]

    def reset(self) -> None:
        """Drop all recorded spans, events, and metrics.

        Only the calling thread's open-span stack is cleared; other
        threads' stacks drain naturally as their spans end.
        """
        with self._lock:
            self.roots.clear()
            self.finished.clear()
            self.events.clear()
        self._stack.clear()
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()


#: Shared disabled tracer — the default for every Database/XmlRelStore.
NULL_TRACER = Tracer(enabled=False)
