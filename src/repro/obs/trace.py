"""Hierarchical tracing for the store/translate/execute pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
pipeline phase (``store`` → ``shred``/``insert``, ``query`` →
``translate``/``execute``/``reconstruct``) down to individual SQL
statements (``sql.statement`` spans emitted by
:class:`~repro.relational.database.Database`).  Spans carry monotonic
timings (:func:`time.perf_counter`), arbitrary attributes, and
parent/child nesting; point events (no duration) share the same record
stream.

Everything is in-process and zero-dependency: the tracer is a plain
object handed to :meth:`repro.XmlRelStore.open` (``tracer=``) and
threaded down through the :class:`~repro.relational.database.Database`.
A *disabled* tracer (``Tracer(enabled=False)``, or the module-level
:data:`NULL_TRACER` default) records nothing and keeps no per-call
state, so the instrumented hot paths cost one attribute check when
tracing is off.

The tracer is thread-safe in a lock-free-per-thread way: every thread
gets its *own* span stack (so nesting is always within one thread and
never interleaves across threads).  The shared state is nearly
lock-free too — span/request ids come from atomic counters, and
:attr:`Tracer.roots`/:attr:`Tracer.finished` are plain lists whose
appends are atomic under the interpreter lock.  The tracer's one lock
is taken only where threads genuinely meet: attaching a child to a
parent span owned by *another* thread (an adopted request root) and
appending point events.

**Cross-thread propagation.**  A span started on a bare worker thread
has no parent there, so it would become its own root — orphaned from
the request that submitted the work.  The serving layer instead
*captures* the request's span into a :class:`RequestContext`
(:meth:`Tracer.capture`) and each worker *adopts* it
(:meth:`Tracer.adopt`): the captured span is pushed onto the worker's
stack as a borrowed frame, so everything the worker records nests under
the request's root — one coherent tree across the whole scatter
fan-out.  Borrowed frames are never closed by the borrowing thread;
only the owner ends them.  Root spans that *do* start on a foreign
thread without adoption are tagged ``detached=true``, so broken
propagation shows up in every export instead of silently flattening the
tree.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry


class Span:
    """One timed phase: a named interval with attributes and children.

    A hand-rolled ``__slots__`` class rather than a dataclass: the
    serving layer opens several spans per request, and the dataclass
    keyword-processing ``__init__`` costs ~4x a plain positional one on
    the warm-query path.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start", "end", "attributes",
        "children", "depth", "thread_id",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        end: float | None = None,
        attributes: dict | None = None,
        children: list["Span"] | None = None,
        depth: int = 0,
        thread_id: int = 0,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attributes = {} if attributes is None else attributes
        self.children = [] if children is None else children
        #: Nesting depth: 0 for a root span.
        self.depth = depth
        #: ``threading.get_ident()`` of the thread that started the
        #: span (0 for spans created outside a tracer, e.g. in tests).
        self.thread_id = thread_id

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, span_id={self.span_id}, "
            f"parent_id={self.parent_id}, depth={self.depth}, "
            f"attributes={self.attributes!r})"
        )

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attributes) -> "Span":
        """Attach attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def walk(self):
        """Yield this span and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NullSpan:
    """The span handed out by a disabled tracer: accepts the full Span
    surface, records nothing, and is shared (no per-call allocation)."""

    __slots__ = ()

    name = ""
    span_id = -1
    parent_id = None
    start = 0.0
    end = 0.0
    depth = 0
    duration = 0.0
    finished = True

    @property
    def attributes(self) -> dict:
        return {}

    @property
    def children(self) -> list:
        return []

    def set(self, **attributes) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        # Lets instrumentation write `if span:` to guard enabled-only work.
        return False


NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class RequestContext:
    """A capturable handle to one request's trace position.

    Produced by :meth:`Tracer.capture` on the submitting thread and
    handed (by value) to worker threads, which enter
    :meth:`Tracer.adopt` with it so their spans nest under
    :attr:`span`.  ``span`` is ``None`` when the tracer is disabled or
    nothing was open — adoption is then a no-op, keeping the
    disabled-tracer hot path free.
    """

    request_id: str
    span: "Span | None" = None


class _Adoption:
    """Context manager that borrows a foreign span onto this thread's
    stack (see :meth:`Tracer.adopt`)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: "Span | None") -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "Span | None":
        span = self._span
        if span is None:
            return None
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] is span:
            # Already adopted (or running inline on the owner thread
            # with the span on top): nothing to borrow.
            self._span = None
            return span
        stack.append(span)
        tracer._borrowed.add(id(span))
        return span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        if span is None:
            return None
        tracer = self._tracer
        stack = tracer._stack
        # Close anything the worker left open above the borrowed frame,
        # then drop the frame itself — never ending the borrowed span
        # (its owner does that).
        while stack and stack[-1] is not span:
            tracer.end_span(stack[-1])
        if stack and stack[-1] is span:
            stack.pop()
        tracer._borrowed.discard(id(span))
        return None


class _SpanContext:
    """Context manager pairing ``start_span``/``end_span``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and "error" not in self._span.attributes:
            self._span.attributes["error"] = f"{type(exc).__name__}: {exc}"
        self._tracer.end_span(self._span)
        return None


class Tracer:
    """Collects spans and point events for one pipeline/session.

    Use :meth:`span` as a context manager for well-scoped phases, or the
    explicit :meth:`start_span`/:meth:`end_span` pair where the interval
    does not map onto a ``with`` block.  Finished spans are kept both as
    a tree (:attr:`roots`) and in completion order (:attr:`finished`);
    the exporters in :mod:`repro.obs.export` consume either.
    """

    def __init__(
        self,
        enabled: bool = True,
        slow_query_threshold: float | None = None,
        max_sql_length: int = 2000,
    ) -> None:
        #: Master switch; a disabled tracer records nothing.
        self.enabled = enabled
        #: Statements slower than this (seconds) get their
        #: ``EXPLAIN QUERY PLAN`` captured into the statement span.
        #: ``None`` disables plan capture; ``0.0`` captures every plan.
        self.slow_query_threshold = slow_query_threshold
        #: SQL text longer than this is truncated in span attributes.
        self.max_sql_length = max_sql_length
        #: Metrics accumulated alongside the spans.
        self.metrics = MetricsRegistry()
        #: Completed root spans, in start order.
        self.roots: list[Span] = []
        #: All completed spans, in completion order.
        self.finished: list[Span] = []
        #: Point events (dicts with ``name``/``ts``/attributes).
        self.events: list[dict] = []
        #: Guards cross-thread child attachment and the event list; the
        #: per-thread span stacks need no locking, and the id counters
        #: are atomic (``itertools.count`` increments in C).
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = itertools.count(1)
        self._next_request = itertools.count(1)
        #: The thread that built the tracer — roots started elsewhere
        #: without adoption are tagged ``detached=true``.
        self._home_thread = threading.get_ident()
        self._epoch = time.perf_counter()

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def _borrowed(self) -> set[int]:
        """ids of spans this thread borrowed via :meth:`adopt` — frames
        :meth:`end_span` must never pop or close."""
        borrowed = getattr(self._local, "borrowed", None)
        if borrowed is None:
            borrowed = self._local.borrowed = set()
        return borrowed

    # -- cross-thread propagation ---------------------------------------------------

    def capture(
        self, span: Span | None = None, request_id: str | None = None
    ) -> RequestContext:
        """Freeze the current trace position into a :class:`RequestContext`.

        *span* anchors the context (default: this thread's innermost
        open span).  A fresh ``req-NNNNNN`` id is minted when none is
        given — ids are stable for the request's lifetime and stamped
        onto every wide event and exported span tree.
        """
        if request_id is None:
            request_id = f"req-{next(self._next_request):06d}"
        if not self.enabled:
            return RequestContext(request_id=request_id, span=None)
        anchor = span if isinstance(span, Span) else self.current_span
        return RequestContext(request_id=request_id, span=anchor)

    def adopt(self, context: RequestContext | None) -> _Adoption:
        """Continue *context*'s trace on this thread.

        .. code-block:: python

            ctx = tracer.capture()          # submitting thread
            ...
            with tracer.adopt(ctx):         # worker thread
                with tracer.span("serve.shard", shard=n):
                    ...

        The captured span is pushed as a *borrowed* frame: spans the
        worker starts nest under it, but :meth:`end_span` never closes
        it from here — the owner thread ends it.  No-op when the tracer
        is disabled or the context carries no span.
        """
        if not self.enabled or context is None:
            return _Adoption(self, None)
        return _Adoption(self, context.span)

    # -- span lifecycle -----------------------------------------------------------

    def start_span(self, name: str, **attributes) -> Span:
        """Open a span nested under the current one (explicit form).

        The parent may be a borrowed frame from :meth:`adopt` — depth
        continues from the parent's, not from this thread's stack size.
        A parentless span on a thread other than the tracer's home
        thread is tagged ``detached=true``: it means cross-thread work
        started without adopting its request context, and the tag makes
        that visible in every export instead of silently flattening the
        trace into disconnected roots.
        """
        if not self.enabled:
            return NULL_SPAN  # type: ignore[return-value]
        stack = self._stack
        parent = stack[-1] if stack else None
        thread_id = threading.get_ident()
        # *attributes* is this call's own kwargs dict — safe to own.
        if parent is not None:
            parent_id = parent.span_id
            depth = parent.depth + 1
        else:
            parent_id = None
            depth = 0
            if thread_id != self._home_thread:
                attributes.setdefault("detached", True)
        span = Span(
            name,
            next(self._next_id),
            parent_id,
            time.perf_counter(),
            None,
            attributes,
            None,
            depth,
            thread_id,
        )
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close *span* (and any unclosed children left on the stack).

        Borrowed frames (pushed by :meth:`adopt`) are a hard floor: the
        pop loop never closes them, so a worker double-ending spans can
        never close its request's root out from under the owner.
        """
        if not self.enabled or span is NULL_SPAN:
            return
        stack = self._stack
        borrowed = self._borrowed
        thread_id = threading.get_ident()
        while stack:
            top = stack[-1]
            if id(top) in borrowed:
                break
            stack.pop()
            top.end = time.perf_counter()
            parent = stack[-1] if stack else None
            if parent is None:
                # roots/finished are plain lists — append is atomic
                # under the interpreter lock, and readers only iterate.
                self.roots.append(top)
            elif parent.thread_id != thread_id:
                # The parent is a span borrowed from another thread
                # (adopted request root): the owner or a sibling worker
                # may be attaching to it concurrently, so serialize.
                with self._lock:
                    parent.children.append(top)
            else:
                # Same-thread parent: nobody else can reach it yet.
                parent.children.append(top)
            self.finished.append(top)
            if top is span:
                return
        # span was not on the stack (double end, or it sits below a
        # borrowed frame): record it standalone.
        if span.end is None:
            span.end = time.perf_counter()

    def span(self, name: str, **attributes):
        """Context manager form of :meth:`start_span`/:meth:`end_span`.

        .. code-block:: python

            with tracer.span("store", scheme="interval") as span:
                ...
                span.set(rows=result.total_rows)
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, self.start_span(name, **attributes))

    # -- point events -------------------------------------------------------------

    def event(self, name: str, **attributes) -> None:
        """Record an instantaneous event under the current span."""
        if not self.enabled:
            return
        stack = self._stack
        parent = stack[-1] if stack else None
        record = {
            "name": name,
            "ts": time.perf_counter() - self._epoch,
            "parent_id": parent.span_id if parent else None,
            **attributes,
        }
        with self._lock:
            self.events.append(record)

    # -- helpers -------------------------------------------------------------------

    def clip_sql(self, sql: str) -> str:
        """Truncate statement text for span attributes."""
        if len(sql) <= self.max_sql_length:
            return sql
        return sql[: self.max_sql_length] + f"... [{len(sql)} chars]"

    def relative(self, t: float) -> float:
        """Convert a perf_counter reading to seconds since tracer start."""
        return t - self._epoch

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def max_depth(self) -> int:
        """Deepest nesting level across finished spans (root = 1)."""
        return max((s.depth + 1 for s in self.finished), default=0)

    def spans_named(self, name: str) -> list[Span]:
        """All finished spans called *name*, in completion order."""
        return [s for s in self.finished if s.name == name]

    def reset(self) -> None:
        """Drop all recorded spans, events, and metrics.

        Only the calling thread's open-span stack is cleared; other
        threads' stacks drain naturally as their spans end.
        """
        with self._lock:
            self.roots.clear()
            self.finished.clear()
            self.events.clear()
        self._stack.clear()
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()


#: Shared disabled tracer — the default for every Database/XmlRelStore.
NULL_TRACER = Tracer(enabled=False)
