"""Counters, gauges, and histograms for the storage engine.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (statements
  executed, rows shredded, transactions committed, retries, injected
  faults, ``plan_cache.hits``/``plan_cache.misses`` from the XPath→SQL
  translation cache, ``bulk.sessions``/``bulk.documents`` from bulk
  loading),
* :class:`Gauge` — last-written values (current savepoint depth),
* :class:`Histogram` — distributions with percentile summaries
  (per-statement latency).

``snapshot()`` renders everything into plain JSON-able dicts;
``snapshot_json()``/``load_snapshot`` round-trip through JSON so a
benchmark run can persist its metrics next to the trace.

Counters and histograms additionally feed an O(1)-memory
:class:`~repro.obs.window.WindowRing`, so every instrument answers both
"how many ever" (lifetime) and "how many *lately*" —
``Counter.rate(60)`` is events/sec over the last minute,
``Histogram.window(60)`` is windowed count/qps/p50/p90/p99, and
``MetricsRegistry.windows_snapshot(60)`` renders the whole namespace's
recent behaviour for the ops endpoint.

The registry is thread-safe: instrument creation is guarded by a
registry lock and each instrument serializes its own updates, so the
serving layer's pool/executor threads can hammer one shared registry
without lost updates (``+=`` on a plain attribute is not atomic under
the interpreter — it is a read, an add, and a write).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.obs.window import WindowRing


def _rate_ring() -> WindowRing:
    return WindowRing(bins=False)


def _value_ring() -> WindowRing:
    return WindowRing(bins=True)


@dataclass
class Counter:
    """A monotonically increasing total (with a windowed rate)."""

    name: str
    value: int = 0
    window_ring: WindowRing = field(
        default_factory=_rate_ring, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Share the ring's lock: one acquisition per inc() covers both
        # the lifetime total and the windowed rate (hot-path cost).
        self._lock = self.window_ring._lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount
            self.window_ring._add_locked(amount)

    def window_count(self, seconds: float = 60.0) -> int:
        """Increments observed over the last *seconds*."""
        return self.window_ring.count(seconds)

    def rate(self, seconds: float = 60.0) -> float:
        """Increments per second over the last *seconds*."""
        return self.window_ring.rate(seconds)


@dataclass
class Gauge:
    """A last-value-wins measurement (plus its high-water mark)."""

    name: str
    value: float = 0.0
    high_water: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value

    def add(self, delta: float) -> float:
        """Atomically shift the gauge by *delta*; returns the new value
        (the serving layer's in-flight/in-use gauges move both ways)."""
        with self._lock:
            self.value += delta
            if self.value > self.high_water:
                self.high_water = self.value
            return self.value


#: Percentiles reported in every histogram summary.
PERCENTILES = (50, 90, 99)

#: Observations kept per histogram; beyond this the reservoir keeps the
#: first MAX_OBSERVATIONS samples (the summary still counts and sums
#: everything).  Statement counts in this repo are far below the cap.
MAX_OBSERVATIONS = 65536


@dataclass
class Histogram:
    """A distribution with exact percentiles over retained samples,
    plus a sliding window of recent behaviour (:meth:`window`)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    observations: list[float] = field(default_factory=list)
    window_ring: WindowRing = field(
        default_factory=_value_ring, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # As with Counter: one lock acquisition per observation.
        self._lock = self.window_ring._lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self.observations) < MAX_OBSERVATIONS:
                self.observations.append(value)
            self.window_ring._observe_locked(value)

    def window(self, seconds: float = 60.0) -> dict:
        """Windowed count/qps/mean/min/max/p50/p90/p99 over the last
        *seconds* (log-binned estimates; see :mod:`repro.obs.window`)."""
        return self.window_ring.summary(seconds)

    def percentile(self, p: float) -> float | None:
        """The *p*-th percentile (nearest-rank) of retained samples."""
        if not self.observations:
            return None
        with self._lock:
            ordered = sorted(self.observations)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """JSON-able summary: count/total/min/max/mean plus percentiles."""
        summary = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
        }
        for p in PERCENTILES:
            summary[f"p{p}"] = self.percentile(p)
        return summary


class MetricsRegistry:
    """A thread-safe namespace of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access (create on first use) -----------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return histogram

    # -- reading --------------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter else 0

    def counter_window_count(
        self, name: str, seconds: float = 60.0
    ) -> int:
        """Windowed count of counter *name* — 0 when the counter was
        never touched, *without* creating it (readers like health
        checks must not add instruments to the registry)."""
        counter = self._counters.get(name)
        return counter.window_count(seconds) if counter else 0

    def is_empty(self) -> bool:
        """True when no instrument was ever touched."""
        return not (self._counters or self._gauges or self._histograms)

    def snapshot(self, prefix: str | None = None) -> dict:
        """Everything as plain JSON-able dicts (sorted names).

        *prefix* restricts the snapshot to instruments whose name starts
        with it — e.g. ``snapshot(prefix="serve.")`` for just the
        serving layer, or ``prefix=f"pool.shard{n}."`` for one shard's
        pool, without dragging every other subsystem's instruments into
        a report.
        """
        # Freeze the instrument sets under the lock so a concurrent
        # first-touch creation never changes a dict mid-iteration.
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        if prefix is not None:
            counters = {
                name: counter for name, counter in counters.items()
                if name.startswith(prefix)
            }
            gauges = {
                name: gauge for name, gauge in gauges.items()
                if name.startswith(prefix)
            }
            histograms = {
                name: histogram for name, histogram in histograms.items()
                if name.startswith(prefix)
            }
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {
                name: {
                    "value": gauges[name].value,
                    "high_water": gauges[name].high_water,
                }
                for name in sorted(gauges)
            },
            "histograms": {
                name: histograms[name].summary()
                for name in sorted(histograms)
            },
        }

    def windows_snapshot(
        self, seconds: float = 60.0, prefix: str | None = None
    ) -> dict:
        """Recent behaviour of every instrument: windowed summaries for
        histograms, windowed count + rate for counters.

        Unlike :meth:`snapshot` this is time-dependent (it reads the
        sliding windows), so it is reported separately — snapshots stay
        reproducible and JSON-round-trippable, windows answer "what is
        the system doing *now*" for ``/metrics`` and ``/snapshot``.
        """
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        if prefix is not None:
            counters = {
                name: counter for name, counter in counters.items()
                if name.startswith(prefix)
            }
            histograms = {
                name: histogram for name, histogram in histograms.items()
                if name.startswith(prefix)
            }
        return {
            "window_seconds": seconds,
            "counters": {
                name: {
                    "count": counters[name].window_count(seconds),
                    "rate": counters[name].rate(seconds),
                }
                for name in sorted(counters)
            },
            "histograms": {
                name: histograms[name].window(seconds)
                for name in sorted(histograms)
            },
        }

    def snapshot_json(self, indent: int | None = None) -> str:
        """The snapshot serialized as JSON (the metrics exporter)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def load_snapshot(text: str) -> dict:
    """Parse a snapshot produced by :meth:`MetricsRegistry.snapshot_json`.

    Returns the same structure :meth:`~MetricsRegistry.snapshot` built, so
    ``load_snapshot(registry.snapshot_json()) == registry.snapshot()``.
    """
    return json.loads(text)
