"""Per-query introspection records.

:class:`Explanation` answers "what SQL does this XPath become, and how
will the engine run it?" without executing the query
(:meth:`repro.XmlRelStore.explain`).  :class:`QueryReport` additionally
runs the query and carries the paper's per-query cost signals —
translation time, SQL length, structural join count (experiment E8),
plan lines (experiment E11), execution time, and result cardinality
(:meth:`repro.XmlRelStore.query_report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Explanation:
    """Translated SQL plus the engine's query plan for one XPath."""

    xpath: str
    scheme: str
    sql: str
    params: tuple
    #: ``EXPLAIN QUERY PLAN`` detail lines (index usage, scan order).
    plan: tuple[str, ...]

    def uses_index(self, name: str) -> bool:
        """True when any plan line mentions index *name*."""
        return any(name in line for line in self.plan)

    def format(self) -> str:
        lines = [
            f"xpath:  {self.xpath}",
            f"scheme: {self.scheme}",
            "sql:",
        ]
        lines.extend("    " + line for line in self.sql.splitlines())
        if self.params:
            lines.append(f"params: {list(self.params)!r}")
        lines.append("plan:")
        lines.extend("    " + line for line in self.plan)
        return "\n".join(lines)


@dataclass(frozen=True)
class QueryReport:
    """Everything measured about one executed query."""

    xpath: str
    scheme: str
    sql: str
    params: tuple
    #: Structural joins in the generated statement (experiment E8).
    join_count: int
    #: ``EXPLAIN QUERY PLAN`` detail lines.
    plan: tuple[str, ...]
    #: Seconds spent in XPath→SQL translation (plan + render).
    translate_seconds: float
    #: Seconds spent executing the SQL and fetching ids.
    execute_seconds: float
    #: Number of matching nodes.
    row_count: int
    #: The matching ``pre`` ids, in document order.
    pres: tuple[int, ...] = field(default=(), repr=False)
    #: True when the translation came from the plan cache.
    cache_hit: bool = False
    #: Lifetime plan-cache hits of the store's database.
    cache_hits: int = 0
    #: Lifetime plan-cache misses of the store's database.
    cache_misses: int = 0
    #: Plan-linter diagnostics for the executed statement
    #: (:class:`repro.analysis.Diagnostic` records; empty when linting
    #: is off or the plan is clean).
    analysis: tuple = ()
    #: Where a sharded store answered from: ``"primary"`` or
    #: ``"replica"`` (empty for single-file stores).
    read_from: str = ""
    #: When replica-served: committed writes the replica's snapshot is
    #: behind its primary (the staleness bound in writes).
    replica_lag_writes: int | None = None
    #: When replica-served: seconds since the replica's snapshot
    #: shipped (the staleness bound in time).
    replica_age_seconds: float | None = None

    @property
    def sql_length(self) -> int:
        """Length of the generated SQL text (plan-complexity proxy)."""
        return len(self.sql)

    @property
    def total_seconds(self) -> float:
        return self.translate_seconds + self.execute_seconds

    def format(self) -> str:
        return "\n".join(
            [
                f"xpath:     {self.xpath}",
                f"scheme:    {self.scheme}",
                f"rows:      {self.row_count}",
                f"joins:     {self.join_count}",
                f"sql chars: {self.sql_length}",
                f"translate: {self.translate_seconds * 1000:.3f} ms",
                f"execute:   {self.execute_seconds * 1000:.3f} ms",
                f"plan cache: {'hit' if self.cache_hit else 'miss'} "
                f"({self.cache_hits} hits / {self.cache_misses} misses)",
                *(
                    [
                        f"read from: {self.read_from}"
                        + (
                            f" (lag {self.replica_lag_writes} write(s), "
                            f"age {self.replica_age_seconds:.3f}s)"
                            if self.replica_lag_writes is not None
                            and self.replica_age_seconds is not None
                            else ""
                        )
                    ]
                    if self.read_from
                    else []
                ),
                "plan:",
                *("    " + line for line in self.plan),
                *(
                    ["analysis:"]
                    + ["    " + d.format() for d in self.analysis]
                    if self.analysis
                    else []
                ),
            ]
        )
