"""Live ops surface: Prometheus text exposition + an embedded endpoint.

:func:`to_prometheus` renders a :class:`~repro.obs.metrics.MetricsRegistry`
as Prometheus text exposition format 0.0.4 — counters as ``_total``,
gauges as-is, histograms as summaries (``{quantile="0.5"}`` series plus
``_sum``/``_count``), and each instrument's *sliding window* as a
separate ``_window`` family labelled ``window="60s"`` so dashboards can
plot "p99 over the last minute" next to the lifetime p99.

:func:`parse_prometheus` is the matching validator: a strict-enough
parser of the exposition format used by the tests and the CI smoke job
to assert the endpoint serves well-formed output (no scrape stack in
this zero-dependency repo, so we check our own homework).

:class:`OpsServer` mounts three read-only endpoints on a daemon
``ThreadingHTTPServer``:

* ``GET /metrics``  — Prometheus text (``text/plain; version=0.0.4``),
* ``GET /snapshot`` — one JSON document: lifetime snapshot, windowed
  snapshot, health, and the recent wide-event tail,
* ``GET /healthz``  — liveness JSON; HTTP 200 when ``status == "ok"``,
  503 otherwise, so a load balancer can act on the status code alone.

The server binds 127.0.0.1 on an ephemeral port by default and runs
entirely on stdlib ``http.server`` — no dependency, no framework.
"""

from __future__ import annotations

import http.server
import json
import re
import threading
import time

from repro.errors import error_payload, http_status
from repro.obs.events import RequestLog
from repro.obs.metrics import MetricsRegistry

#: Prefix for every exported metric family.
PROM_PREFIX = "xmlrel_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Quantiles exported for histogram summaries (lifetime and windowed).
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _prom_name(name: str) -> str:
    """A registry instrument name as a valid Prometheus metric name."""
    return PROM_PREFIX + _NAME_RE.sub("_", name)


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def to_prometheus(
    registry: MetricsRegistry,
    windows: tuple[float, ...] = (60.0,),
    extra: dict | None = None,
) -> str:
    """Render *registry* in Prometheus text exposition format 0.0.4.

    *windows* lists the sliding-window widths (seconds) to export next
    to the lifetime series; *extra* adds flat ``name -> value`` gauges
    (e.g. health facts) without registering instruments.
    """
    snapshot = registry.snapshot()
    lines: list[str] = []

    for name, value in snapshot["counters"].items():
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")

    for name, gauge in snapshot["gauges"].items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauge['value'])}")
        lines.append(
            f"{metric}_high_water {_prom_value(gauge['high_water'])}"
        )

    for name, summary in snapshot["histograms"].items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in _QUANTILES:
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_prom_value(summary.get(key))}"
            )
        lines.append(f"{metric}_sum {_prom_value(summary['total'])}")
        lines.append(f"{metric}_count {_prom_value(summary['count'])}")

    for seconds in windows:
        windowed = registry.windows_snapshot(seconds)
        label = f'window="{seconds:g}s"'
        for name, data in windowed["counters"].items():
            metric = _prom_name(name) + "_window"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(
                f'{metric}_count{{{label}}} {_prom_value(data["count"])}'
            )
            lines.append(
                f'{metric}_rate{{{label}}} {_prom_value(data["rate"])}'
            )
        for name, summary in windowed["histograms"].items():
            metric = _prom_name(name) + "_window"
            lines.append(f"# TYPE {metric} gauge")
            for quantile, key in _QUANTILES:
                lines.append(
                    f'{metric}{{{label},quantile="{quantile}"}} '
                    f"{_prom_value(summary.get(key))}"
                )
            lines.append(
                f'{metric}_count{{{label}}} {_prom_value(summary["count"])}'
            )
            lines.append(
                f'{metric}_qps{{{label}}} {_prom_value(summary["qps"])}'
            )

    if extra:
        for name, value in extra.items():
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(value)}")

    return "\n".join(lines) + "\n"


#: ``metric_name{labels} value`` — the sample shape we emit and accept.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)

_LABEL_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"$'
)


def parse_prometheus(text: str) -> dict:
    """Parse exposition-format *text*; raises ``ValueError`` on malformed
    lines.

    Returns ``{"samples": [{"name", "labels", "value"}...],
    "types": {family: type}}``.  Used by the tests and the CI ops-smoke
    job to assert ``/metrics`` output is well-formed.
    """
    samples: list[dict] = []
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            if parts[3] not in (
                "counter", "gauge", "summary", "histogram", "untyped"
            ):
                raise ValueError(
                    f"line {lineno}: unknown metric type {parts[3]!r}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        labels: dict[str, str] = {}
        body = match.group("labels")
        if body:
            for pair in body.split(","):
                pair = pair.strip()
                label = _LABEL_RE.match(pair)
                if not label:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}"
                    )
                labels[label.group("key")] = label.group("value")
        value_text = match.group("value")
        if value_text == "NaN":
            value = float("nan")
        else:
            try:
                value = float(value_text)
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno}: malformed value {value_text!r}"
                ) from exc
        samples.append(
            {"name": match.group("name"), "labels": labels, "value": value}
        )
    return {"samples": samples, "types": types}


class OpsServer:
    """An embedded HTTP ops endpoint over a registry (+ optional health,
    snapshot extras, and request-log tail).

    :param metrics: the registry behind ``/metrics`` and ``/snapshot``.
    :param health_fn: zero-arg callable returning a JSON-able dict with
        at least ``{"status": "ok" | ...}``; absent → always ok.
    :param snapshot_fn: zero-arg callable returning extra JSON-able
        state merged into ``/snapshot`` under ``"server"``.
    :param request_log: recent wide events served in ``/snapshot``.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        health_fn=None,
        snapshot_fn=None,
        request_log: RequestLog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        windows: tuple[float, ...] = (60.0,),
        tail_events: int = 50,
    ) -> None:
        self.metrics = metrics
        self.health_fn = health_fn
        self.snapshot_fn = snapshot_fn
        self.request_log = request_log
        self.windows = windows
        self.tail_events = tail_events
        ops = self

        class _Handler(http.server.BaseHTTPRequestHandler):
            # The ops endpoint must not spam the serving process's
            # stderr on every scrape.
            def log_message(self, fmt, *args):  # noqa: ARG002
                return

            def do_GET(self):  # noqa: N802 (http.server API)
                try:
                    ops._route(self)
                except BrokenPipeError:
                    pass

        self._server = http.server.ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="ops-endpoint",
            daemon=True,
        )
        self._thread.start()

    # -- request handling -----------------------------------------------------------

    def _route(self, handler: http.server.BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = to_prometheus(
                    self.metrics, windows=self.windows
                ).encode()
                self._reply(
                    handler, 200, body,
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/snapshot":
                body = json.dumps(self.snapshot(), default=str).encode()
                self._reply(handler, 200, body, "application/json")
            elif path == "/healthz":
                health = self.health()
                status = 200 if health.get("status") == "ok" else 503
                body = json.dumps(health, default=str).encode()
                self._reply(handler, status, body, "application/json")
            else:
                body = json.dumps(
                    {"error": "NotFound",
                     "message": f"no route {path}",
                     "status": 404}
                ).encode()
                self._reply(handler, 404, body, "application/json")
        except BrokenPipeError:
            raise
        except Exception as error:
            # Typed errors carry their own status via the shared
            # repro.errors.HTTP_STATUS table (the gateway uses the
            # same one); anything else is a plain 500.
            body = json.dumps(error_payload(error), default=str).encode()
            self._reply(
                handler, http_status(error), body, "application/json"
            )

    @staticmethod
    def _reply(handler, status: int, body: bytes, content_type: str) -> None:
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    # -- documents ------------------------------------------------------------------

    def health(self) -> dict:
        if self.health_fn is None:
            return {"status": "ok"}
        try:
            return self.health_fn()
        except Exception as exc:  # health must never take the endpoint down
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}

    def snapshot(self) -> dict:
        document = {
            "generated_at": time.time(),
            "health": self.health(),
            "metrics": self.metrics.snapshot(),
            "windows": {
                f"{seconds:g}s": self.metrics.windows_snapshot(seconds)
                for seconds in self.windows
            },
        }
        if self.request_log is not None:
            document["requests"] = {
                "stats": self.request_log.stats(),
                "tail": self.request_log.tail(self.tail_events),
            }
        if self.snapshot_fn is not None:
            try:
                document["server"] = self.snapshot_fn()
            except Exception as exc:
                document["server"] = {
                    "error": f"{type(exc).__name__}: {exc}"
                }
        return document

    # -- lifecycle ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def stop(self) -> None:
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "OpsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
