"""``repro.obs.top`` — a live per-shard view of a serving store.

Polls an :class:`~repro.obs.ops.OpsServer`'s ``/snapshot`` endpoint and
renders a ``top``-style table: per-shard qps / windowed p50 / p99 /
pool occupancy / replica lag, plus request outcomes and health, updated
in place.

Run it against a store started with ``ShardedStore.serve_ops()``::

    python -m repro.obs.top --url http://127.0.0.1:9641

``--plain`` (or a non-tty stdout) prints one frame per poll instead of
using curses; ``--iterations N`` stops after N polls (CI/smoke use).
The rendering is a pure function (:func:`render_snapshot`) so tests can
exercise it without a terminal or a server.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
import urllib.request

_SHARD_RE = re.compile(r"^serve\.shard(\d+)\.query_seconds$")
_POOL_RE = re.compile(r"^pool\.(shard\d+)\.in_use$")
_INGEST_RE = re.compile(r"^ingest\.shard(\d+)\.load_seconds$")
_GATEWAY_ROUTE_RE = re.compile(r"^gateway\.route\.([a-z_]+)\.seconds$")
_GATEWAY_STATUS_RE = re.compile(r"^gateway\.status\.(\d{3})$")


def fetch_snapshot(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/snapshot`` and parse the JSON document."""
    target = url.rstrip("/") + "/snapshot"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _ms(value) -> str:
    if value is None:
        return "-"
    return f"{value * 1000:.2f}"


def render_snapshot(snapshot: dict) -> str:
    """Render one ``/snapshot`` document as a fixed-width text frame."""
    health = snapshot.get("health", {})
    windows = snapshot.get("windows", {})
    window_key = next(iter(windows), None)
    windowed = windows.get(window_key, {}) if window_key else {}
    win_hist = windowed.get("histograms", {})
    win_counters = windowed.get("counters", {})
    metrics = snapshot.get("metrics", {})
    gauges = metrics.get("gauges", {})

    lines = [
        f"xmlrel ops — status={health.get('status', '?')}"
        f"  window={window_key or '-'}"
        f"  in_flight="
        f"{gauges.get('serve.in_flight', {}).get('value', 0):g}",
        "",
        f"{'shard':>6} {'qps':>8} {'p50 ms':>9} {'p99 ms':>9} "
        f"{'pool in_use':>12} {'repl lag':>9} {'state':>8}",
    ]

    shard_health = {
        str(entry.get("shard")): entry
        for entry in health.get("shards", [])
    }
    shards: dict[str, dict] = {}
    for name, summary in win_hist.items():
        match = _SHARD_RE.match(name)
        if match:
            shards[match.group(1)] = summary
    for entry in health.get("shards", []):
        shards.setdefault(str(entry.get("shard")), {})

    for shard in sorted(shards, key=lambda s: int(s) if s.isdigit() else 0):
        summary = shards[shard]
        entry = shard_health.get(shard, {})
        in_use = gauges.get(f"pool.shard{shard}.in_use", {}).get("value", 0)
        pool_size = entry.get("pool", {}).get("size")
        pool_text = (
            f"{in_use:g}/{pool_size}" if pool_size is not None
            else f"{in_use:g}"
        )
        lag = entry.get("max_replica_lag_writes")
        lines.append(
            f"{shard:>6} "
            f"{summary.get('qps', 0) or 0:>8.1f} "
            f"{_ms(summary.get('p50')):>9} "
            f"{_ms(summary.get('p99')):>9} "
            f"{pool_text:>12} "
            f"{('-' if lag is None else str(lag)):>9} "
            f"{entry.get('status', '?'):>8}"
        )

    ingest_shards = {
        match.group(1): summary
        for name, summary in win_hist.items()
        if (match := _INGEST_RE.match(name))
    }
    docs_rate = win_counters.get("ingest.documents", {}).get("rate", 0) or 0
    rows_rate = win_counters.get("ingest.rows", {}).get("rate", 0) or 0
    if ingest_shards or docs_rate or rows_rate:
        depth = gauges.get("ingest.queue_depth", {}).get("value", 0)
        lines.append("")
        lines.append(
            f"ingest ({window_key}): {docs_rate:.1f} docs/s"
            f"  {rows_rate:.1f} rows/s  queue={depth:g}"
        )
        for shard in sorted(
            ingest_shards, key=lambda s: int(s) if s.isdigit() else 0
        ):
            summary = ingest_shards[shard]
            lines.append(
                f"  shard {shard}: {summary.get('count', 0)} doc(s)"
                f"  load p50={_ms(summary.get('p50'))} ms"
                f"  p99={_ms(summary.get('p99'))} ms"
            )

    gateway_routes = {
        match.group(1): summary
        for name, summary in win_hist.items()
        if (match := _GATEWAY_ROUTE_RE.match(name))
    }
    if gateway_routes:
        connections = gauges.get("gateway.connections", {}).get("value", 0)
        rejections = win_counters.get(
            "gateway.quota_rejections", {}
        ).get("count", 0)
        lines.append("")
        lines.append(
            f"gateway ({window_key}): connections={connections:g}"
            f"  quota_rejections={rejections}"
        )
        for route in sorted(gateway_routes):
            summary = gateway_routes[route]
            lines.append(
                f"  {route:<14} {summary.get('qps', 0) or 0:>7.1f} qps"
                f"  p50={_ms(summary.get('p50'))} ms"
                f"  p99={_ms(summary.get('p99'))} ms"
            )
        status_counts = {
            match.group(1): data.get("count", 0)
            for name, data in win_counters.items()
            if (match := _GATEWAY_STATUS_RE.match(name))
        }
        if status_counts:
            rendered = "  ".join(
                f"{status}={count}"
                for status, count in sorted(status_counts.items())
            )
            lines.append(f"  statuses: {rendered}")

    outcome_counts = {
        name.rsplit(".", 1)[-1]: data.get("count", 0)
        for name, data in win_counters.items()
        if name.startswith("serve.query.outcome.")
    }
    if outcome_counts:
        rendered = "  ".join(
            f"{outcome}={count}"
            for outcome, count in sorted(outcome_counts.items())
        )
        lines.append("")
        lines.append(f"outcomes ({window_key}): {rendered}")

    requests = snapshot.get("requests", {}).get("stats")
    if requests:
        lines.append(
            f"request log: emitted={requests.get('emitted', 0)}"
            f" dropped={requests.get('dropped', 0)}"
        )
    return "\n".join(lines)


def _plain_loop(url: str, interval: float, iterations: int | None) -> int:
    count = 0
    while iterations is None or count < iterations:
        try:
            frame = render_snapshot(fetch_snapshot(url))
        except OSError as exc:
            frame = f"xmlrel ops — unreachable: {exc}"
        print(frame)
        print("-" * 72)
        sys.stdout.flush()
        count += 1
        if iterations is not None and count >= iterations:
            break
        time.sleep(interval)
    return 0


def _curses_loop(url: str, interval: float, iterations: int | None) -> int:
    import curses

    def run(screen) -> None:
        curses.use_default_colors()
        screen.nodelay(True)
        count = 0
        while iterations is None or count < iterations:
            try:
                frame = render_snapshot(fetch_snapshot(url))
            except OSError as exc:
                frame = f"xmlrel ops — unreachable: {exc}"
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(frame.splitlines()):
                if y >= max_y - 1:
                    break
                screen.addnstr(y, 0, line, max_x - 1)
            screen.refresh()
            count += 1
            if screen.getch() in (ord("q"), 27):
                return
            time.sleep(interval)

    curses.wrapper(run)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live per-shard view of a serving xmlrel store.",
    )
    parser.add_argument("--url", required=True,
                        help="ops endpoint base URL (OpsServer.url)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls (default 1.0)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="stop after N frames (default: run until ^C)")
    parser.add_argument("--plain", action="store_true",
                        help="print frames instead of a curses screen")
    options = parser.parse_args(argv)

    use_plain = options.plain or not sys.stdout.isatty()
    try:
        if use_plain:
            return _plain_loop(
                options.url, options.interval, options.iterations
            )
        return _curses_loop(
            options.url, options.interval, options.iterations
        )
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
