"""Wide-event request log: one structured record per query/update.

The serving layer emits exactly one event per request — a "wide event"
carrying everything known about it (shard fan-out breakdown, per-shard
latency, replica choice + staleness, plan-cache warmth, lint verdict,
deadline slack, outcome) — instead of scattering the same facts over a
dozen log lines.  One record per request is what makes questions like
"show me the p99 queries that fell back from a replica AND missed the
plan cache" answerable with a single ``jq`` filter.

:class:`RequestLog` is the bounded, non-blocking sink those events go
through.  The serving hot path calls :meth:`RequestLog.emit`, which

* always appends to an in-memory ring (``deque(maxlen=capacity)``) —
  the tail the ops endpoint's ``/snapshot`` serves, and
* optionally stages the event for a daemon writer thread that streams
  JSON lines to a file.

``emit`` never blocks and never raises into the request path: it only
appends under a lock.  The writer drains the staged batch on a short
periodic tick rather than waking per event — a per-event queue handoff
costs two context switches and a round of interpreter-lock churn *per
request*, which measurably inflates warm query latency.  When the
staging buffer overflows (disk slower than the event rate), the oldest
staged events are *dropped* and counted (:attr:`RequestLog.dropped`):
a slow disk must degrade the log, not the queries.
"""

from __future__ import annotations

import json
import threading
from collections import deque

#: Seconds between writer-thread drains of the staged batch.
FLUSH_INTERVAL = 0.25


class RequestLog:
    """Bounded non-blocking sink for wide request events.

    :param capacity: in-memory tail size and staging-buffer bound.
    :param path: optional JSONL file; when given, a daemon thread drains
        staged events to it (one JSON object per line, appended).
    :param flush_interval: seconds between writer drains.
    """

    def __init__(
        self,
        capacity: int = 1024,
        path: str | None = None,
        flush_interval: float = FLUSH_INTERVAL,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.capacity = capacity
        self.path = path
        self.flush_interval = flush_interval
        #: Events dropped because the staging buffer overflowed.
        self.dropped = 0
        #: Events accepted into the tail, for rate accounting.
        self.emitted = 0
        self._tail: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Events staged for the writer (file mode only).
        self._pending: deque[dict] = deque(maxlen=capacity)
        self._drained = threading.Condition(self._lock)
        self._wake = threading.Event()
        self._writer: threading.Thread | None = None
        self._closed = False
        self._stopping = False
        if path is not None:
            self._writer = threading.Thread(
                target=self._drain, name="request-log-writer", daemon=True
            )
            self._writer.start()

    # -- hot path -------------------------------------------------------------------

    def emit(self, event: dict) -> bool:
        """Record *event*; returns False when a staged event was dropped.

        Never blocks: one lock acquisition, two ring appends.  The
        writer thread picks the event up on its next tick.
        """
        with self._lock:
            if self._closed:
                return False
            self.emitted += 1
            self._tail.append(event)
            if self._writer is None:
                return True
            if len(self._pending) == self.capacity:
                # deque(maxlen) silently evicts the oldest — count it.
                self.dropped += 1
                self._pending.append(event)
                return False
            self._pending.append(event)
            return True

    # -- reading --------------------------------------------------------------------

    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent *n* events (all retained when *n* is None)."""
        with self._lock:
            events = list(self._tail)
        if n is not None:
            events = events[-n:]
        return events

    def stats(self) -> dict:
        with self._lock:
            return {
                "emitted": self.emitted,
                "dropped": self.dropped,
                "retained": len(self._tail),
                "capacity": self.capacity,
                "path": self.path,
            }

    # -- writer thread --------------------------------------------------------------

    def _drain(self) -> None:
        assert self.path is not None
        with open(self.path, "a", encoding="utf-8") as handle:
            while True:
                self._wake.wait(self.flush_interval)
                self._wake.clear()
                with self._lock:
                    batch = list(self._pending)
                    self._pending.clear()
                    stopping = self._stopping
                if batch:
                    handle.write(
                        "".join(
                            json.dumps(event, default=str) + "\n"
                            for event in batch
                        )
                    )
                    handle.flush()
                with self._drained:
                    self._drained.notify_all()
                if stopping:
                    return

    def flush(self, timeout: float = 5.0) -> None:
        """Block (up to *timeout*) until staged events reached the file."""
        if self._writer is None:
            return
        self._wake.set()
        with self._drained:
            self._drained.wait_for(
                lambda: not self._pending or self._stopping and self._closed,
                timeout=timeout,
            )

    def close(self, timeout: float = 5.0) -> None:
        """Stop the writer thread (idempotent); the tail stays readable.

        Staged events are drained to the file before the writer exits.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
        if self._writer is not None:
            self._wake.set()
            self._writer.join(timeout)

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
