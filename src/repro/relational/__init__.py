"""Relational substrate over sqlite3.

A thin but complete layer the storage schemes are written against:

* :mod:`repro.relational.schema` — table/column/index descriptors with DDL
  generation,
* :mod:`repro.relational.sql` — a typed SQL AST + builder for the SELECT
  statements the query translators emit (parameterized; never string
  interpolation of user values),
* :mod:`repro.relational.database` — managed connections/transactions,
* :mod:`repro.relational.catalog` — the persisted catalog of stored
  documents.
"""

from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, Index, Table
from repro.relational.catalog import Catalog, DocumentRecord

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "DocumentRecord",
    "ForeignKey",
    "Index",
    "Table",
]
