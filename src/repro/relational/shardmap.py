"""Shard-map catalog persistence for the serving layer.

The sharded store (:mod:`repro.serve.sharded`) partitions documents
across N shard databases and records placement in a small catalog
database.  This module owns that catalog's SQL — the relational layer
is the only place allowed to speak raw SQL (lint rule L001), so the
serve layer calls in here instead of embedding statements.

Three pieces:

* :class:`ShardMap` — the ``xmlrel_shard_map`` table (global doc id →
  shard, per-shard local doc id, document name), mirrored in memory
  under a lock so query routing never touches SQLite.
* :func:`pin_shard_config` — the ``xmlrel_shard_config`` key/value
  table persisting scheme/shards/placement on first open and verifying
  them on reopen, turning a mismatched reopen into a loud error
  instead of silent misrouting.
* :func:`connection_alive` — the one-round-trip health probe the read
  pools run on every acquire.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import DocumentNotFoundError, StorageError, XmlRelError
from repro.relational.database import Database
from repro.relational.schema import Column, INTEGER, TEXT, Table

SHARD_MAP_TABLE = Table(
    name="xmlrel_shard_map",
    columns=[
        Column("doc_id", INTEGER, primary_key=True),
        Column("shard", INTEGER, nullable=False),
        Column("local_doc_id", INTEGER, nullable=False),
        Column("name", TEXT, nullable=False),
    ],
)

SHARD_CONFIG_TABLE = Table(
    name="xmlrel_shard_config",
    columns=[
        Column("key", TEXT, primary_key=True),
        Column("value", TEXT, nullable=False),
    ],
)


def connection_alive(db: Database) -> bool:
    """One cheap round trip proving a pooled connection still answers."""
    try:
        return db.scalar("SELECT 1") == 1
    except XmlRelError:
        return False


def pin_shard_config(
    catalog_db: Database, scheme: str, shards: int, placement: str
) -> None:
    """Persist scheme/shards/placement on first open; verify after."""
    catalog_db.create_table(SHARD_CONFIG_TABLE)
    wanted = {
        "scheme": scheme,
        "shards": str(shards),
        "placement": placement,
    }
    stored = dict(
        catalog_db.query("SELECT key, value FROM xmlrel_shard_config")
    )
    if not stored:
        catalog_db.executemany(
            "INSERT INTO xmlrel_shard_config (key, value) VALUES (?, ?)",
            sorted(wanted.items()),
        )
        return
    mismatches = {
        key: (stored.get(key), value)
        for key, value in wanted.items()
        if stored.get(key) != value
    }
    if mismatches:
        detail = ", ".join(
            f"{key}: stored {have!r} != requested {want!r}"
            for key, (have, want) in sorted(mismatches.items())
        )
        raise StorageError(
            f"sharded store config mismatch ({detail}); open with the "
            f"original parameters or use a fresh directory"
        )


@dataclass(frozen=True)
class ShardedDocument:
    """Shard-map row: where one document lives."""

    doc_id: int
    shard: int
    local_doc_id: int
    name: str


class ShardMap:
    """The global-doc-id → (shard, local id) catalog.

    Persisted in the catalog database, mirrored in memory under a lock
    so the executor's routing reads never race the writer (or each
    other) on a SQLite connection.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        db.create_table(SHARD_MAP_TABLE)
        self._lock = threading.Lock()
        self._docs: dict[int, ShardedDocument] = {}
        for row in db.query(
            "SELECT doc_id, shard, local_doc_id, name "
            "FROM xmlrel_shard_map ORDER BY doc_id"
        ):
            self._docs[row[0]] = ShardedDocument(*row)

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def register(self, shard: int, local_doc_id: int, name: str) -> int:
        """Persist one placement; returns the new global doc id."""
        cursor = self.db.execute(
            "INSERT INTO xmlrel_shard_map (shard, local_doc_id, name) "
            "VALUES (?, ?, ?)",
            (shard, local_doc_id, name),
        )
        doc_id = int(cursor.lastrowid)
        with self._lock:
            self._docs[doc_id] = ShardedDocument(
                doc_id, shard, local_doc_id, name
            )
        return doc_id

    def resolve(self, doc_id: int) -> ShardedDocument:
        with self._lock:
            record = self._docs.get(doc_id)
        if record is None:
            raise DocumentNotFoundError(doc_id)
        return record

    def remove(self, doc_id: int) -> None:
        self.resolve(doc_id)
        self.db.execute(
            "DELETE FROM xmlrel_shard_map WHERE doc_id = ?", (doc_id,)
        )
        with self._lock:
            self._docs.pop(doc_id, None)

    def docs_for_shard(self, shard: int) -> list[tuple[int, int]]:
        """``(global, local)`` id pairs of every document on *shard*."""
        with self._lock:
            return [
                (record.doc_id, record.local_doc_id)
                for record in self._docs.values()
                if record.shard == shard
            ]

    def records(self) -> list[ShardedDocument]:
        with self._lock:
            return sorted(self._docs.values(), key=lambda r: r.doc_id)

    def shard_counts(self, shards: int) -> dict[int, int]:
        """Documents per shard (zero-filled — empty shards count)."""
        counts = {shard: 0 for shard in range(shards)}
        with self._lock:
            for record in self._docs.values():
                counts[record.shard] += 1
        return counts
