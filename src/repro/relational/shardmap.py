"""Shard-map catalog persistence for the serving layer.

The sharded store (:mod:`repro.serve.sharded`) partitions documents
across N shard databases and records placement in a small catalog
database.  This module owns that catalog's SQL — the relational layer
is the only place allowed to speak raw SQL (lint rule L001), so the
serve layer calls in here instead of embedding statements.

Five pieces:

* :class:`ShardMap` — the ``xmlrel_shard_map`` table (global doc id →
  shard, per-shard local doc id, document name), mirrored in memory
  under a lock so query routing never touches SQLite.
* :func:`pin_shard_config` — the ``xmlrel_shard_config`` key/value
  table persisting scheme/shards/placement on first open and verifying
  them on reopen, turning a mismatched reopen into a loud error
  instead of silent misrouting.
* :class:`RebalanceJournal` — the ``xmlrel_rebalance_journal`` table:
  one row per in-flight document move, stepping through the
  ``copying → copied → flipped`` state machine so a crash at any point
  leaves enough state to roll the move back or forward on recovery
  (see :meth:`repro.serve.sharded.ShardedStore.recover`).
* :class:`ShardState` — the ``xmlrel_shard_state`` /
  ``xmlrel_replica_state`` tables: a monotonic per-shard write
  sequence number and, per read replica, the sequence/wall-time of its
  last shipped snapshot — the two numbers a staleness bound is made of.
* :func:`connection_alive` — the one-round-trip health probe the read
  pools run on every acquire.

The catalog database is one shared connection; callers (the sharded
store) serialize writes to it under their map lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import DocumentNotFoundError, StorageError
from repro.relational.database import Database
from repro.relational.schema import Column, INTEGER, REAL, TEXT, Table

SHARD_MAP_TABLE = Table(
    name="xmlrel_shard_map",
    columns=[
        Column("doc_id", INTEGER, primary_key=True),
        Column("shard", INTEGER, nullable=False),
        Column("local_doc_id", INTEGER, nullable=False),
        Column("name", TEXT, nullable=False),
    ],
)

SHARD_CONFIG_TABLE = Table(
    name="xmlrel_shard_config",
    columns=[
        Column("key", TEXT, primary_key=True),
        Column("value", TEXT, nullable=False),
    ],
)

REBALANCE_JOURNAL_TABLE = Table(
    name="xmlrel_rebalance_journal",
    columns=[
        Column("journal_id", INTEGER, primary_key=True),
        Column("doc_id", INTEGER, nullable=False),
        Column("from_shard", INTEGER, nullable=False),
        Column("from_local", INTEGER, nullable=False),
        Column("to_shard", INTEGER, nullable=False),
        Column("to_local", INTEGER),
        Column("state", TEXT, nullable=False),
        Column("name", TEXT, nullable=False),
    ],
)

SHARD_STATE_TABLE = Table(
    name="xmlrel_shard_state",
    columns=[
        Column("shard", INTEGER, primary_key=True),
        Column("write_seq", INTEGER, nullable=False),
    ],
)

REPLICA_STATE_TABLE = Table(
    name="xmlrel_replica_state",
    columns=[
        Column("shard", INTEGER, nullable=False),
        Column("replica", INTEGER, nullable=False),
        Column("shipped_seq", INTEGER, nullable=False),
        Column("shipped_at", REAL, nullable=False),
    ],
    primary_key=("shard", "replica"),
)

#: Rebalance state machine, in order.  ``copying``: journal row exists,
#: the destination copy may or may not have committed — recovery rolls
#: *back* (the orphan sweep removes any committed copy the map never
#: learned about).  ``copied``: the destination copy committed and its
#: local id is journaled — recovery rolls *forward* (flip the map, drop
#: the source copy).  ``flipped``: the map points at the destination —
#: recovery only needs to drop the source copy.
REBALANCE_STATES = ("copying", "copied", "flipped")


def connection_alive(db: Database) -> bool:
    """One cheap round trip proving a pooled connection still answers.

    Delegates to :meth:`~repro.relational.database.Database.ping` — an
    untraced, unmetered probe, so per-acquire health checks never bury
    real query spans under ``SELECT 1`` noise.
    """
    return db.ping()


def pin_shard_config(
    catalog_db: Database, scheme: str, shards: int, placement: str
) -> None:
    """Persist scheme/shards/placement on first open; verify after."""
    catalog_db.create_table(SHARD_CONFIG_TABLE)
    wanted = {
        "scheme": scheme,
        "shards": str(shards),
        "placement": placement,
    }
    stored = dict(
        catalog_db.query("SELECT key, value FROM xmlrel_shard_config")
    )
    if not stored:
        catalog_db.executemany(
            "INSERT INTO xmlrel_shard_config (key, value) VALUES (?, ?)",
            sorted(wanted.items()),
        )
        return
    mismatches = {
        key: (stored.get(key), value)
        for key, value in wanted.items()
        if stored.get(key) != value
    }
    if mismatches:
        detail = ", ".join(
            f"{key}: stored {have!r} != requested {want!r}"
            for key, (have, want) in sorted(mismatches.items())
        )
        raise StorageError(
            f"sharded store config mismatch ({detail}); open with the "
            f"original parameters or use a fresh directory"
        )


@dataclass(frozen=True)
class ShardedDocument:
    """Shard-map row: where one document lives."""

    doc_id: int
    shard: int
    local_doc_id: int
    name: str


class ShardMap:
    """The global-doc-id → (shard, local id) catalog.

    Persisted in the catalog database, mirrored in memory under a lock
    so the executor's routing reads never race the writer (or each
    other) on a SQLite connection.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        db.create_table(SHARD_MAP_TABLE)
        self._lock = threading.Lock()
        self._docs: dict[int, ShardedDocument] = {}
        for row in db.query(
            "SELECT doc_id, shard, local_doc_id, name "
            "FROM xmlrel_shard_map ORDER BY doc_id"
        ):
            self._docs[row[0]] = ShardedDocument(*row)

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def register(self, shard: int, local_doc_id: int, name: str) -> int:
        """Persist one placement; returns the new global doc id."""
        cursor = self.db.execute(
            "INSERT INTO xmlrel_shard_map (shard, local_doc_id, name) "
            "VALUES (?, ?, ?)",
            (shard, local_doc_id, name),
        )
        doc_id = int(cursor.lastrowid)
        with self._lock:
            self._docs[doc_id] = ShardedDocument(
                doc_id, shard, local_doc_id, name
            )
        return doc_id

    def resolve(self, doc_id: int) -> ShardedDocument:
        with self._lock:
            record = self._docs.get(doc_id)
        if record is None:
            raise DocumentNotFoundError(doc_id)
        return record

    def remove(self, doc_id: int) -> None:
        self.resolve(doc_id)
        self.db.execute(
            "DELETE FROM xmlrel_shard_map WHERE doc_id = ?", (doc_id,)
        )
        with self._lock:
            self._docs.pop(doc_id, None)

    def move(self, doc_id: int, shard: int, local_doc_id: int) -> None:
        """Repoint one document at a new (shard, local id) placement."""
        record = self.resolve(doc_id)
        self.db.execute(
            "UPDATE xmlrel_shard_map SET shard = ?, local_doc_id = ? "
            "WHERE doc_id = ?",
            (shard, local_doc_id, doc_id),
        )
        with self._lock:
            self._docs[doc_id] = ShardedDocument(
                doc_id, shard, local_doc_id, record.name
            )

    def docs_for_shard(self, shard: int) -> list[tuple[int, int]]:
        """``(global, local)`` id pairs of every document on *shard*."""
        with self._lock:
            return [
                (record.doc_id, record.local_doc_id)
                for record in self._docs.values()
                if record.shard == shard
            ]

    def records(self) -> list[ShardedDocument]:
        with self._lock:
            return sorted(self._docs.values(), key=lambda r: r.doc_id)

    def shard_counts(self, shards: int) -> dict[int, int]:
        """Documents per shard (zero-filled — empty shards count)."""
        counts = {shard: 0 for shard in range(shards)}
        with self._lock:
            for record in self._docs.values():
                counts[record.shard] += 1
        return counts


@dataclass(frozen=True)
class RebalanceEntry:
    """One in-flight document move, as journaled in the catalog."""

    journal_id: int
    doc_id: int
    from_shard: int
    from_local: int
    to_shard: int
    to_local: int | None
    state: str
    name: str


class RebalanceJournal:
    """Write-ahead journal for document moves between shards.

    A move writes its intent here *before* touching any shard, then
    advances the row through ``copying → copied → flipped`` as each
    step commits.  Recovery (:meth:`ShardedStore.recover`) reads the
    surviving rows and rolls each move back or forward — see
    :data:`REBALANCE_STATES` for which state implies which.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        db.create_table(REBALANCE_JOURNAL_TABLE)

    def begin(
        self,
        doc_id: int,
        from_shard: int,
        from_local: int,
        to_shard: int,
        name: str,
    ) -> int:
        """Journal intent to move *doc_id*; returns the journal id."""
        cursor = self.db.execute(
            "INSERT INTO xmlrel_rebalance_journal "
            "(doc_id, from_shard, from_local, to_shard, to_local, "
            "state, name) VALUES (?, ?, ?, ?, NULL, 'copying', ?)",
            (doc_id, from_shard, from_local, to_shard, name),
        )
        return int(cursor.lastrowid)

    def mark_copied(self, journal_id: int, to_local: int) -> None:
        """The destination copy committed under *to_local*."""
        self.db.execute(
            "UPDATE xmlrel_rebalance_journal "
            "SET state = 'copied', to_local = ? WHERE journal_id = ?",
            (to_local, journal_id),
        )

    def mark_flipped(self, journal_id: int) -> None:
        """The shard map now points at the destination copy."""
        self.db.execute(
            "UPDATE xmlrel_rebalance_journal "
            "SET state = 'flipped' WHERE journal_id = ?",
            (journal_id,),
        )

    def finish(self, journal_id: int) -> None:
        """The move fully completed; drop its journal row."""
        self.db.execute(
            "DELETE FROM xmlrel_rebalance_journal WHERE journal_id = ?",
            (journal_id,),
        )

    def pending(self) -> list[RebalanceEntry]:
        """Surviving journal rows, oldest first — crash leftovers."""
        return [
            RebalanceEntry(*row)
            for row in self.db.query(
                "SELECT journal_id, doc_id, from_shard, from_local, "
                "to_shard, to_local, state, name "
                "FROM xmlrel_rebalance_journal ORDER BY journal_id"
            )
        ]


class ShardState:
    """Per-shard write sequence and per-replica shipped positions.

    ``write_seq`` increments on every committed write to a shard's
    primary; a replica records the sequence it was snapshotted at when
    a ship completes.  The difference is the replica's staleness in
    writes, and ``now - shipped_at`` its staleness in seconds — the
    two bounds the executor surfaces on replica-served queries.
    """

    def __init__(self, db: Database, shards: int) -> None:
        self.db = db
        db.create_table(SHARD_STATE_TABLE)
        db.create_table(REPLICA_STATE_TABLE)
        for shard in range(shards):
            db.execute(
                "INSERT OR IGNORE INTO xmlrel_shard_state "
                "(shard, write_seq) VALUES (?, 0)",
                (shard,),
            )
        self._lock = threading.Lock()
        self._write_seq: dict[int, int] = {
            row[0]: row[1]
            for row in db.query(
                "SELECT shard, write_seq FROM xmlrel_shard_state"
            )
        }
        self._shipped: dict[tuple[int, int], tuple[int, float]] = {
            (row[0], row[1]): (row[2], row[3])
            for row in db.query(
                "SELECT shard, replica, shipped_seq, shipped_at "
                "FROM xmlrel_replica_state"
            )
        }

    def write_seq(self, shard: int) -> int:
        with self._lock:
            return self._write_seq.get(shard, 0)

    def bump_write(self, shard: int) -> int:
        """Record one committed write on *shard*; returns the new seq."""
        with self._lock:
            seq = self._write_seq.get(shard, 0) + 1
            self._write_seq[shard] = seq
        self.db.execute(
            "UPDATE xmlrel_shard_state SET write_seq = ? WHERE shard = ?",
            (seq, shard),
        )
        return seq

    def record_ship(
        self, shard: int, replica: int, seq: int, at: float | None = None
    ) -> None:
        """A replica snapshot of *shard* at write *seq* just landed."""
        shipped_at = time.time() if at is None else at
        self.db.execute(
            "INSERT INTO xmlrel_replica_state "
            "(shard, replica, shipped_seq, shipped_at) "
            "VALUES (?, ?, ?, ?) "
            "ON CONFLICT (shard, replica) DO UPDATE SET "
            "shipped_seq = excluded.shipped_seq, "
            "shipped_at = excluded.shipped_at",
            (shard, replica, seq, shipped_at),
        )
        with self._lock:
            self._shipped[(shard, replica)] = (seq, shipped_at)

    def replica_state(
        self, shard: int, replica: int
    ) -> tuple[int, float] | None:
        """``(shipped_seq, shipped_at)`` of a replica, if ever shipped."""
        with self._lock:
            return self._shipped.get((shard, replica))

    def staleness(self, shard: int, replica: int) -> tuple[int, float] | None:
        """``(lag_writes, age_seconds)`` of a replica, if ever shipped."""
        state = self.replica_state(shard, replica)
        if state is None:
            return None
        shipped_seq, shipped_at = state
        lag = self.write_seq(shard) - shipped_seq
        return lag, max(0.0, time.time() - shipped_at)
