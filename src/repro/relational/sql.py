"""A typed SQL AST for the SELECT statements the translators emit.

The XPath→SQL translators build queries as objects rather than strings so
that (a) user values are always bound parameters, never interpolated, and
(b) the plan-complexity experiment (E8) can *count joins* structurally
instead of parsing SQL text.

Only the SELECT surface the translators need is modelled: column refs,
parameters, comparison/boolean operators, LIKE, IN, EXISTS subqueries,
scalar functions, joins (inner/left), DISTINCT, ORDER BY, LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XmlRelError
from repro.relational.schema import quote_identifier


class SqlExpr:
    """Base class of scalar/boolean SQL expressions."""

    __slots__ = ()

    def render(self, params: list) -> str:
        raise NotImplementedError

    # Convenience builders so translators read naturally.

    def eq(self, other: "SqlExpr") -> "Comparison":
        return Comparison("=", self, other)

    def ne(self, other: "SqlExpr") -> "Comparison":
        return Comparison("<>", self, other)

    def lt(self, other: "SqlExpr") -> "Comparison":
        return Comparison("<", self, other)

    def le(self, other: "SqlExpr") -> "Comparison":
        return Comparison("<=", self, other)

    def gt(self, other: "SqlExpr") -> "Comparison":
        return Comparison(">", self, other)

    def ge(self, other: "SqlExpr") -> "Comparison":
        return Comparison(">=", self, other)


@dataclass(frozen=True)
class Col(SqlExpr):
    """A column reference ``alias.name`` (alias optional)."""

    name: str
    table: str | None = None

    def render(self, params: list) -> str:
        col = quote_identifier(self.name)
        if self.table is None:
            return col
        return f"{quote_identifier(self.table)}.{col}"


@dataclass(frozen=True)
class Param(SqlExpr):
    """A bound parameter (rendered as ``?``)."""

    value: object

    def render(self, params: list) -> str:
        params.append(self.value)
        return "?"


class _DocIdSentinel:
    """The placeholder value :class:`DocParam` leaves in a rendered
    parameter list.  :func:`bind_doc_id` swaps it for a concrete id."""

    __slots__ = ()

    def __repr__(self) -> str:  # readable in cached plan dumps
        return "<doc_id>"


#: Singleton placeholder for the document id in rendered parameter lists.
DOC_ID = _DocIdSentinel()


@dataclass(frozen=True)
class DocParam(SqlExpr):
    """The document-id bind parameter.

    Translators emit ``DocParam()`` instead of ``Param(doc_id)`` so a
    rendered ``(sql, params)`` pair is a reusable *template*: the SQL text
    and parameter shape depend only on the XPath (and scheme), never on
    which document is queried.  That is what makes the translation cache
    sound — one cached plan serves every document.  The rendered
    parameter slot holds the :data:`DOC_ID` sentinel until
    :func:`bind_doc_id` substitutes the real id at execution time.
    """

    def render(self, params: list) -> str:
        params.append(DOC_ID)
        return "?"


def bind_doc_id(params: list | tuple, doc_id: int) -> list:
    """A copy of *params* with every :data:`DOC_ID` placeholder replaced
    by the concrete *doc_id*."""
    return [doc_id if p is DOC_ID else p for p in params]


@dataclass(frozen=True)
class Raw(SqlExpr):
    """A raw SQL fragment — for constants like ``1`` or ``COUNT(*)``.

    Never used with user-supplied values (those go through :class:`Param`).
    """

    sql: str

    def render(self, params: list) -> str:
        return self.sql


@dataclass(frozen=True)
class Comparison(SqlExpr):
    op: str
    left: SqlExpr
    right: SqlExpr

    def render(self, params: list) -> str:
        return f"{self.left.render(params)} {self.op} {self.right.render(params)}"


@dataclass(frozen=True)
class Arith(SqlExpr):
    """Arithmetic: ``left op right`` with parentheses."""

    op: str
    left: SqlExpr
    right: SqlExpr

    def render(self, params: list) -> str:
        return f"({self.left.render(params)} {self.op} {self.right.render(params)})"


@dataclass(frozen=True)
class And(SqlExpr):
    operands: tuple[SqlExpr, ...]

    def render(self, params: list) -> str:
        if not self.operands:
            return "1"
        if len(self.operands) == 1:
            return self.operands[0].render(params)
        inner = " AND ".join(op.render(params) for op in self.operands)
        return f"({inner})"


@dataclass(frozen=True)
class Or(SqlExpr):
    operands: tuple[SqlExpr, ...]

    def render(self, params: list) -> str:
        if not self.operands:
            return "0"
        if len(self.operands) == 1:
            return self.operands[0].render(params)
        inner = " OR ".join(op.render(params) for op in self.operands)
        return f"({inner})"


@dataclass(frozen=True)
class Not(SqlExpr):
    operand: SqlExpr

    def render(self, params: list) -> str:
        return f"NOT ({self.operand.render(params)})"


@dataclass(frozen=True)
class Like(SqlExpr):
    """``expr LIKE pattern ESCAPE '\\'`` — pattern is always a parameter."""

    operand: SqlExpr
    pattern: str

    def render(self, params: list) -> str:
        left = self.operand.render(params)
        params.append(self.pattern)
        return f"{left} LIKE ? ESCAPE '\\'"


@dataclass(frozen=True)
class InList(SqlExpr):
    operand: SqlExpr
    values: tuple[object, ...]

    def render(self, params: list) -> str:
        left = self.operand.render(params)
        marks = ", ".join("?" for _ in self.values)
        params.extend(self.values)
        return f"{left} IN ({marks})"


@dataclass(frozen=True)
class Func(SqlExpr):
    """A scalar function call, e.g. ``xpath_num(x)`` or ``SUBSTR(...)``."""

    name: str
    args: tuple[SqlExpr, ...]

    def render(self, params: list) -> str:
        inner = ", ".join(a.render(params) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class Exists(SqlExpr):
    """``EXISTS (subquery)`` — used for existential predicates."""

    query: "Select"

    def render(self, params: list) -> str:
        sql, sub_params = self.query.render()
        params.extend(sub_params)
        return f"EXISTS ({sql})"


@dataclass(frozen=True)
class ScalarSubquery(SqlExpr):
    """``(SELECT ...)`` used as a scalar value (e.g. sibling counting)."""

    query: "Select"

    def render(self, params: list) -> str:
        sql, sub_params = self.query.render()
        params.extend(sub_params)
        return f"({sql})"


@dataclass(frozen=True)
class InSubquery(SqlExpr):
    operand: SqlExpr
    query: "Select"

    def render(self, params: list) -> str:
        left = self.operand.render(params)
        sql, sub_params = self.query.render()
        params.extend(sub_params)
        return f"{left} IN ({sql})"


# -- FROM items --------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """``table AS alias`` in a FROM clause."""

    table: str
    alias: str

    def render(self) -> str:
        if self.table == self.alias:
            return quote_identifier(self.table)
        return f"{quote_identifier(self.table)} AS {quote_identifier(self.alias)}"


@dataclass(frozen=True)
class Join:
    """A join clause appended after the first FROM item."""

    table: TableRef
    condition: SqlExpr
    kind: str = "JOIN"  # or "LEFT JOIN"


@dataclass
class Select:
    """A SELECT statement under construction.

    ``select(...)`` / ``where(...)`` / ``join(...)`` mutate and return self
    so translators can chain.  :meth:`render` produces ``(sql, params)``.
    """

    columns: list[tuple[SqlExpr, str | None]] = field(default_factory=list)
    from_item: TableRef | None = None
    joins: list[Join] = field(default_factory=list)
    conditions: list[SqlExpr] = field(default_factory=list)
    order: list[tuple[SqlExpr, bool]] = field(default_factory=list)
    distinct: bool = False
    limit_count: int | None = None

    def select(self, expr: SqlExpr, alias: str | None = None) -> "Select":
        self.columns.append((expr, alias))
        return self

    def from_table(self, table: str, alias: str | None = None) -> "Select":
        if self.from_item is not None:
            raise XmlRelError("FROM already set; use join()")
        self.from_item = TableRef(table, alias or table)
        return self

    def join(
        self,
        table: str,
        alias: str,
        condition: SqlExpr,
        kind: str = "JOIN",
    ) -> "Select":
        self.joins.append(Join(TableRef(table, alias), condition, kind))
        return self

    def where(self, condition: SqlExpr) -> "Select":
        self.conditions.append(condition)
        return self

    def order_by(self, expr: SqlExpr, ascending: bool = True) -> "Select":
        self.order.append((expr, ascending))
        return self

    def limit(self, count: int) -> "Select":
        self.limit_count = count
        return self

    @property
    def join_count(self) -> int:
        """Number of join clauses — the E8 plan-complexity metric.

        Counts joins in this statement plus any nested EXISTS/IN subqueries
        (a subquery's FROM also costs a join at execution time).
        """
        total = len(self.joins)
        for condition in self.conditions:
            total += _nested_join_count(condition)
        return total

    def render(self) -> tuple[str, list]:
        """Produce ``(sql_text, parameters)``."""
        if self.from_item is None:
            raise XmlRelError("SELECT without FROM")
        params: list = []
        cols = []
        for expr, alias in self.columns or [(Raw("*"), None)]:
            text = expr.render(params)
            if alias:
                text += f" AS {quote_identifier(alias)}"
            cols.append(text)
        parts = [
            ("SELECT DISTINCT " if self.distinct else "SELECT ")
            + ", ".join(cols)
        ]
        parts.append(f"FROM {self.from_item.render()}")
        for join in self.joins:
            parts.append(
                f"{join.kind} {join.table.render()} "
                f"ON {join.condition.render(params)}"
            )
        if self.conditions:
            parts.append(
                "WHERE " + " AND ".join(
                    c.render(params) for c in self.conditions
                )
            )
        if self.order:
            order_parts = [
                expr.render(params) + ("" if asc else " DESC")
                for expr, asc in self.order
            ]
            parts.append("ORDER BY " + ", ".join(order_parts))
        if self.limit_count is not None:
            parts.append(f"LIMIT {int(self.limit_count)}")
        return "\n".join(parts), params


@dataclass(frozen=True)
class Union:
    """``UNION ALL`` (or ``UNION``) of several SELECTs."""

    selects: tuple[Select, ...]
    all: bool = True

    def render(self) -> tuple[str, list]:
        keyword = "\nUNION ALL\n" if self.all else "\nUNION\n"
        parts: list[str] = []
        params: list = []
        for select in self.selects:
            sql, select_params = select.render()
            parts.append(sql)
            params.extend(select_params)
        return keyword.join(parts), params

    @property
    def join_count(self) -> int:
        return sum(s.join_count for s in self.selects)


@dataclass
class WithQuery:
    """A ``WITH [RECURSIVE] name AS (...), ... <final select>`` statement.

    The edge/binary translators build one CTE per location step; a
    descendant step's CTE is recursive (the transitive closure that makes
    ``//`` expensive on those mappings — experiment E4's subject).
    """

    ctes: list[tuple[str, "Select | Union"]] = field(default_factory=list)
    final: Select | None = None
    recursive: bool = False

    def add_cte(self, name: str, query: "Select | Union") -> "WithQuery":
        self.ctes.append((name, query))
        return self

    def render(self) -> tuple[str, list]:
        if self.final is None:
            raise XmlRelError("WITH query without a final SELECT")
        if not self.ctes:
            return self.final.render()
        # Parameters must be collected in render order: CTEs first.
        params: list = []
        rendered_ctes = []
        for name, query in self.ctes:
            sql, cte_params = query.render()
            indented = "\n".join("  " + line for line in sql.splitlines())
            rendered_ctes.append(f"{quote_identifier(name)} AS (\n{indented}\n)")
            params.extend(cte_params)
        final_sql, final_params = self.final.render()
        params.extend(final_params)
        keyword = "WITH RECURSIVE " if self.recursive else "WITH "
        return keyword + ",\n".join(rendered_ctes) + "\n" + final_sql, params

    @property
    def join_count(self) -> int:
        total = sum(q.join_count for _, q in self.ctes)
        if self.final is not None:
            total += self.final.join_count
        return total


def _nested_join_count(expr: SqlExpr) -> int:
    """Joins hidden inside EXISTS/IN subqueries of *expr*."""
    if isinstance(expr, (Exists, InSubquery, ScalarSubquery)):
        # The subquery itself costs one join (its FROM) plus its own joins.
        return 1 + expr.query.join_count
    if isinstance(expr, (And, Or)):
        return sum(_nested_join_count(op) for op in expr.operands)
    if isinstance(expr, Not):
        return _nested_join_count(expr.operand)
    if isinstance(expr, (Comparison, Arith)):
        return _nested_join_count(expr.left) + _nested_join_count(expr.right)
    return 0


def like_escape(text: str) -> str:
    """Escape LIKE wildcards in a user-supplied fragment."""
    return (
        text.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
    )
