"""Relational schema descriptors with DDL generation.

Storage schemes describe their relations with these objects instead of
writing raw DDL, which gives a single place for identifier quoting and
lets the benchmark harness introspect any scheme's schema (table count,
column count — inputs to the inlining experiment E9).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import StorageError

# SQLite storage classes used by this library.
INTEGER = "INTEGER"
TEXT = "TEXT"
REAL = "REAL"

_VALID_TYPES = frozenset({INTEGER, TEXT, REAL})
_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def quote_identifier(name: str) -> str:
    """Quote *name* for use as an SQL identifier.

    Plain identifiers pass through (keeps generated SQL readable); anything
    else is double-quoted with embedded quotes doubled.
    """
    if _IDENTIFIER_RE.match(name):
        return name
    return '"' + name.replace('"', '""') + '"'


@dataclass(frozen=True)
class Column:
    """One column: name, storage type, nullability."""

    name: str
    type: str = TEXT
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self) -> None:
        if self.type not in _VALID_TYPES:
            raise StorageError(f"unknown column type: {self.type!r}")

    def ddl(self) -> str:
        parts = [quote_identifier(self.name), self.type]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        elif not self.nullable:
            parts.append("NOT NULL")
        return " ".join(parts)


@dataclass(frozen=True)
class ForeignKey:
    """A (possibly composite) foreign-key constraint."""

    columns: tuple[str, ...]
    references_table: str
    references_columns: tuple[str, ...]

    def ddl(self) -> str:
        cols = ", ".join(quote_identifier(c) for c in self.columns)
        ref_cols = ", ".join(
            quote_identifier(c) for c in self.references_columns
        )
        return (
            f"FOREIGN KEY ({cols}) REFERENCES "
            f"{quote_identifier(self.references_table)} ({ref_cols})"
        )


@dataclass(frozen=True)
class Index:
    """A secondary index on one table."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False

    def ddl(self) -> str:
        unique = "UNIQUE " if self.unique else ""
        cols = ", ".join(quote_identifier(c) for c in self.columns)
        return (
            f"CREATE {unique}INDEX IF NOT EXISTS {quote_identifier(self.name)} "
            f"ON {quote_identifier(self.table)} ({cols})"
        )


@dataclass
class Table:
    """One relation: columns, optional composite PK, FKs and indexes."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    indexes: list[Index] = field(default_factory=list)
    without_rowid: bool = False

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column names in table {self.name}")
        for pk_col in self.primary_key:
            if pk_col not in names:
                raise StorageError(
                    f"primary key column {pk_col!r} not in table {self.name}"
                )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise StorageError(f"no column {name!r} in table {self.name}")

    def ddl(self) -> str:
        """The CREATE TABLE statement (without indexes)."""
        parts = [col.ddl() for col in self.columns]
        if self.primary_key:
            pk = ", ".join(quote_identifier(c) for c in self.primary_key)
            parts.append(f"PRIMARY KEY ({pk})")
        parts.extend(fk.ddl() for fk in self.foreign_keys)
        body = ",\n  ".join(parts)
        suffix = " WITHOUT ROWID" if self.without_rowid else ""
        return (
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(self.name)} (\n"
            f"  {body}\n){suffix}"
        )

    def ddl_statements(self) -> list[str]:
        """CREATE TABLE plus all CREATE INDEX statements."""
        return [self.ddl()] + [ix.ddl() for ix in self.indexes]

    def insert_sql(self) -> str:
        """A parameterized INSERT covering every column."""
        cols = ", ".join(quote_identifier(c) for c in self.column_names)
        marks = ", ".join("?" for _ in self.columns)
        return (
            f"INSERT INTO {quote_identifier(self.name)} ({cols}) "
            f"VALUES ({marks})"
        )

    def drop_sql(self) -> str:
        return f"DROP TABLE IF EXISTS {quote_identifier(self.name)}"
