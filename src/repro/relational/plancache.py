"""A bounded LRU cache for rendered XPath→SQL translations.

Repeated queries over the same scheme skip parse → plan → AST → render
entirely: the cache stores the rendered ``(sql, params-template)`` pairs
(one per top-level union arm) keyed by ``(scheme, plan_epoch, xpath)``.

The parameter templates contain the :data:`repro.relational.sql.DOC_ID`
placeholder instead of a concrete document id, so one cached plan serves
every document in the store (see
:func:`repro.relational.sql.bind_doc_id`).

Invalidation is by *epoch*: schemes whose translations depend on stored
data (universal's label columns, binary's partition tables) bump their
``plan_epoch`` on schema-affecting stores/deletes/updates, which makes
every older key unreachable; the LRU bound then ages the stale entries
out.  Data-independent schemes never need to invalidate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class CachedPlan:
    """One rendered, executable statement of a translation.

    ``params`` is a template: :data:`~repro.relational.sql.DOC_ID`
    placeholders mark where the document id goes at execution time.
    ``diagnostics`` carries the plan linter's findings for this
    statement (empty when linting is off or the plan is clean) — cached
    alongside the SQL so cache hits keep their analysis for
    :meth:`repro.XmlRelStore.query_report`.
    """

    sql: str
    params: tuple
    join_count: int
    diagnostics: tuple = ()


class PlanCache:
    """Bounded LRU mapping cache keys to ``tuple[CachedPlan, ...]``.

    A plain (non-union) XPath caches as a 1-tuple; a top-level union
    caches one plan per arm.  Hit/miss/eviction counts are kept here so
    they are observable even without an enabled tracer.

    All operations are serialized under one lock, so a cache may be
    shared by every read connection of a pool (the serving layer does
    exactly that: one warm cache per shard instead of one cold cache per
    pooled connection).  The LRU reordering makes even ``get`` a write,
    so a lock — not a reader/writer split — is the right tool.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[CachedPlan, ...]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> tuple[CachedPlan, ...] | None:
        with self._lock:
            plans = self._entries.get(key)
            if plans is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plans

    def peek(self, key: tuple) -> tuple[CachedPlan, ...] | None:
        """Look up *key* without counting a hit/miss or touching LRU
        order — for observers (the wide-event log's ``plan_cached``
        field, lint-verdict reporting) that must not perturb the cache
        statistics the serving tests assert on."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: tuple, plans: tuple[CachedPlan, ...]) -> None:
        with self._lock:
            self._entries[key] = plans
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are cumulative)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Cumulative counters plus the current size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
