"""Schema-catalog introspection for the SQL plan linter.

The plan linter (:mod:`repro.analysis.sqllint`) resolves every table and
column reference of a translated statement against what *actually
exists* in the database — including tables the schemes create
dynamically (universal's label columns, binary's partition tables,
inlining's per-DTD relations) which no static :class:`Table` definition
describes.  A :class:`SchemaCatalog` is therefore built from the live
connection via the sqlite PRAGMA surface, not from the scheme's table
list.

The catalog is cached by :meth:`repro.relational.database.Database
.schema_catalog` keyed on ``PRAGMA schema_version`` (sqlite bumps it on
every DDL statement), so steady-state translation pays one PRAGMA per
lint, not a re-introspection.  Introspection runs on the raw connection:
it must never emit ``sql.statement`` spans, which the fast-path tests
count per query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.schema import quote_identifier

#: How deep into an index's column list a join column may sit and still
#: count as covered.  Every scheme's composite indexes lead with
#: ``doc_id`` (always bound by equality in generated plans), so the
#: second position is reachable; deeper columns are not.
INDEX_PREFIX_DEPTH = 2


@dataclass(frozen=True)
class TableInfo:
    """One table or view, as the linter sees it.

    Names are lower-cased: sqlite identifiers are case-insensitive and
    the translators are not required to match the DDL's casing.
    """

    name: str
    columns: frozenset[str]
    is_view: bool = False
    #: Columns within the first :data:`INDEX_PREFIX_DEPTH` positions of
    #: some index (or the primary key) — equality joins on these are
    #: index-accelerated.
    indexed_columns: frozenset[str] = frozenset()

    def has_column(self, name: str) -> bool:
        return name.lower() in self.columns

    def covers(self, name: str) -> bool:
        """True when a join on column *name* can use an index."""
        return name.lower() in self.indexed_columns


@dataclass(frozen=True)
class SchemaCatalog:
    """Every user table/view of one database, keyed by lower-cased name."""

    tables: dict[str, TableInfo]
    #: The ``PRAGMA schema_version`` this catalog was built at — the
    #: cache-invalidation key (sqlite bumps it on every DDL statement).
    schema_version: int = 0

    def table(self, name: str) -> TableInfo | None:
        return self.tables.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.tables


def build_catalog(conn, schema_version: int = 0) -> SchemaCatalog:
    """Introspect *conn* (a raw sqlite3 connection) into a catalog."""
    tables: dict[str, TableInfo] = {}
    rows = conn.execute(
        "SELECT name, type FROM sqlite_master "
        "WHERE type IN ('table', 'view') AND name NOT LIKE 'sqlite_%'"
    ).fetchall()
    for name, kind in rows:
        quoted = quote_identifier(name)
        columns: set[str] = set()
        indexed: set[str] = set()
        pk_columns: list[tuple[int, str]] = []
        for _cid, col_name, _type, _notnull, _dflt, pk in conn.execute(
            f"PRAGMA table_info({quoted})"
        ):
            columns.add(col_name.lower())
            if pk:
                pk_columns.append((pk, col_name.lower()))
        for pk_rank, col_name in sorted(pk_columns):
            if pk_rank <= INDEX_PREFIX_DEPTH:
                indexed.add(col_name)
        if kind == "table":
            for index_row in conn.execute(f"PRAGMA index_list({quoted})"):
                index_name = index_row[1]
                members = sorted(
                    conn.execute(
                        "PRAGMA index_info("
                        f"{quote_identifier(index_name)})"
                    ).fetchall()
                )
                for seqno, _cid, col_name in members:
                    if col_name and seqno < INDEX_PREFIX_DEPTH:
                        indexed.add(col_name.lower())
        tables[name.lower()] = TableInfo(
            name=name.lower(),
            columns=frozenset(columns),
            is_view=(kind == "view"),
            indexed_columns=frozenset(indexed),
        )
    return SchemaCatalog(tables=tables, schema_version=schema_version)
