"""Persisted catalog of stored documents.

Every storage scheme shreds documents into its own relations, keyed by a
``doc_id`` issued here.  The catalog also records which scheme stored each
document so a store opened later can route queries correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DocumentNotFoundError
from repro.relational.database import Database
from repro.relational.schema import Column, INTEGER, Table, TEXT

CATALOG_TABLE = Table(
    name="xmlrel_documents",
    columns=[
        Column("doc_id", INTEGER, primary_key=True),
        Column("name", TEXT, nullable=False),
        Column("scheme", TEXT, nullable=False),
        Column("root_tag", TEXT, nullable=False),
        Column("node_count", INTEGER, nullable=False),
    ],
)


@dataclass(frozen=True)
class DocumentRecord:
    """Catalog row for one stored document."""

    doc_id: int
    name: str
    scheme: str
    root_tag: str
    node_count: int


class Catalog:
    """CRUD over the document catalog table."""

    def __init__(self, db: Database) -> None:
        self.db = db
        db.create_table(CATALOG_TABLE)

    def register(
        self, name: str, scheme: str, root_tag: str, node_count: int
    ) -> int:
        """Insert a catalog row and return the new doc_id."""
        cursor = self.db.execute(
            "INSERT INTO xmlrel_documents (name, scheme, root_tag, node_count) "
            "VALUES (?, ?, ?, ?)",
            (name, scheme, root_tag, node_count),
        )
        return int(cursor.lastrowid)

    def get(self, doc_id: int) -> DocumentRecord:
        row = self.db.query_one(
            "SELECT doc_id, name, scheme, root_tag, node_count "
            "FROM xmlrel_documents WHERE doc_id = ?",
            (doc_id,),
        )
        if row is None:
            raise DocumentNotFoundError(doc_id)
        return DocumentRecord(*row)

    def list(self, scheme: str | None = None) -> list[DocumentRecord]:
        sql = (
            "SELECT doc_id, name, scheme, root_tag, node_count "
            "FROM xmlrel_documents"
        )
        params: tuple = ()
        if scheme is not None:
            sql += " WHERE scheme = ?"
            params = (scheme,)
        sql += " ORDER BY doc_id"
        return [DocumentRecord(*row) for row in self.db.query(sql, params)]

    def remove(self, doc_id: int) -> None:
        self.get(doc_id)  # raise if absent
        self.db.execute(
            "DELETE FROM xmlrel_documents WHERE doc_id = ?", (doc_id,)
        )

    def finalize(
        self, doc_id: int, root_tag: str, node_count: int
    ) -> None:
        """Fill in the fields a streaming load only knows at the end.

        ``store_stream`` registers the catalog row first (same crash
        ordering as the DOM path: catalog row and node rows commit or
        roll back together) with placeholder root_tag/node_count, then
        patches them here once the stream is exhausted — all inside the
        same transaction.
        """
        self.db.execute(
            "UPDATE xmlrel_documents SET root_tag = ?, node_count = ? "
            "WHERE doc_id = ?",
            (root_tag, node_count, doc_id),
        )

    def update_node_count(self, doc_id: int, node_count: int) -> None:
        self.get(doc_id)
        self.db.execute(
            "UPDATE xmlrel_documents SET node_count = ? WHERE doc_id = ?",
            (node_count, doc_id),
        )
