"""Managed sqlite3 connections for the storage layer.

The :class:`Database` wrapper centralizes connection configuration
(pragmas tuned for bulk loading), offers explicit transactions, batched
inserts, and the introspection helpers the benchmark harness uses
(row counts, byte accounting for experiment E1).
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import StorageError
from repro.relational.schema import Table, quote_identifier


def _xpath_num(value) -> float | None:
    """The XPath ``number()`` conversion as an SQL scalar function.

    NaN results are represented as NULL so comparisons against them are
    never satisfied (SQL three-valued logic matches XPath's NaN rules).
    """
    if value is None:
        return None
    try:
        return float(str(value).strip())
    except ValueError:
        return None


class Database:
    """A managed sqlite3 database (file-backed or in-memory)."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.isolation_level = None  # explicit transaction control
        cursor = self._conn.cursor()
        # Bulk-load friendly settings; durability is not part of the
        # experiments (the paper's comparisons are warm-cache too).
        cursor.execute("PRAGMA journal_mode = MEMORY")
        cursor.execute("PRAGMA synchronous = OFF")
        cursor.execute("PRAGMA temp_store = MEMORY")
        cursor.execute("PRAGMA foreign_keys = ON")
        cursor.close()
        # XPath-faithful numeric conversion: returns NULL (not 0.0, as
        # CAST would) for non-numeric text, so NaN comparisons are false
        # in SQL exactly as they are in XPath.
        self._conn.create_function(
            "xpath_num", 1, _xpath_num, deterministic=True
        )

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        """Execute one statement, returning the cursor."""
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as error:
            raise StorageError(f"SQL error: {error}\nin: {sql}") from error

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        try:
            self._conn.executemany(sql, rows)
        except sqlite3.Error as error:
            raise StorageError(f"SQL error: {error}\nin: {sql}") from error

    def executescript(self, script: str) -> None:
        try:
            self._conn.executescript(script)
        except sqlite3.Error as error:
            raise StorageError(f"SQL error: {error}") from error

    def query(self, sql: str, params: Sequence = ()) -> list[tuple]:
        """Execute and fetch all rows."""
        return self.execute(sql, params).fetchall()

    def query_one(self, sql: str, params: Sequence = ()) -> tuple | None:
        """Execute and fetch the first row (or None)."""
        return self.execute(sql, params).fetchone()

    def scalar(self, sql: str, params: Sequence = ()):
        """Execute and return the single value of the single row."""
        row = self.query_one(sql, params)
        return row[0] if row is not None else None

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Run a block inside BEGIN/COMMIT (ROLLBACK on exception)."""
        self._conn.execute("BEGIN")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    # -- DDL ----------------------------------------------------------------------------

    def create_table(self, table: Table) -> None:
        """Create *table* and its indexes."""
        for statement in table.ddl_statements():
            self.execute(statement)

    def drop_table(self, name: str) -> None:
        self.execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")

    def insert_rows(self, table: Table, rows: Iterable[Sequence]) -> None:
        """Bulk-insert *rows* (each covering every column of *table*)."""
        self.executemany(table.insert_sql(), rows)

    # -- introspection ----------------------------------------------------------------------

    def table_names(self) -> list[str]:
        rows = self.query(
            "SELECT name FROM sqlite_master "
            "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name"
        )
        return [name for (name,) in rows]

    def table_exists(self, name: str) -> bool:
        return (
            self.scalar(
                "SELECT COUNT(*) FROM sqlite_master "
                "WHERE type = 'table' AND name = ?",
                (name,),
            )
            > 0
        )

    def row_count(self, table: str) -> int:
        return self.scalar(f"SELECT COUNT(*) FROM {quote_identifier(table)}")

    def table_bytes(self, table: str) -> int:
        """Approximate logical size of *table* in bytes.

        Sums the rendered length of every column value of every row — an
        engine-independent measure of the *mapping's* storage demand, which
        is what experiment E1 compares (page-level overheads would only add
        engine noise).
        """
        columns = [
            row[1]
            for row in self.query(
                f"PRAGMA table_info({quote_identifier(table)})"
            )
        ]
        if not columns:
            raise StorageError(f"no such table: {table}")
        length_sum = " + ".join(
            f"COALESCE(LENGTH(CAST({quote_identifier(c)} AS TEXT)), 0)"
            for c in columns
        )
        total = self.scalar(
            f"SELECT SUM({length_sum}) FROM {quote_identifier(table)}"
        )
        return int(total or 0)

    def database_bytes(self, tables: Iterable[str] | None = None) -> int:
        """Total logical bytes across *tables* (default: all tables)."""
        names = list(tables) if tables is not None else self.table_names()
        return sum(self.table_bytes(name) for name in names)

    def table_cells(self, table: str) -> int:
        """Row count × column count — the slot measure of a mapping.

        Engine-independent: a conventional fixed-layout RDBMS pays for
        every slot whether NULL or not, which is the published complaint
        about the universal table ("huge number of fields, most NULL").
        """
        columns = self.query(f"PRAGMA table_info({quote_identifier(table)})")
        if not columns:
            raise StorageError(f"no such table: {table}")
        return self.row_count(table) * len(columns)

    def database_cells(self, tables: Iterable[str] | None = None) -> int:
        """Total slots across *tables* (default: all tables)."""
        names = list(tables) if tables is not None else self.table_names()
        return sum(self.table_cells(name) for name in names)

    def file_bytes(self) -> int:
        """Physical size: pages in use × page size (after VACUUM).

        Unlike :meth:`database_bytes` (pure value lengths), this includes
        per-row/per-column storage overhead — the cost that penalizes
        wide sparse rows like the universal table's (experiment E1).
        Works for in-memory databases too (sqlite reports their pages).
        """
        self.execute("VACUUM")
        page_count = int(self.scalar("PRAGMA page_count"))
        page_size = int(self.scalar("PRAGMA page_size"))
        free = int(self.scalar("PRAGMA freelist_count"))
        return (page_count - free) * page_size

    def explain_plan(self, sql: str, params: Sequence = ()) -> list[str]:
        """The EXPLAIN QUERY PLAN detail lines (index-usage inspection)."""
        rows = self.query(f"EXPLAIN QUERY PLAN {sql}", params)
        return [row[-1] for row in rows]

    def analyze(self) -> None:
        """Refresh sqlite's optimizer statistics."""
        self.execute("ANALYZE")
