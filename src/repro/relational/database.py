"""Managed sqlite3 connections for the storage layer.

The :class:`Database` wrapper centralizes connection configuration
(pragmas selected by a *durability profile*), offers explicit nestable
transactions, transient-error retries, batched inserts, and the
introspection helpers the benchmark harness uses (row counts, byte
accounting for experiment E1).

When opened with a :class:`~repro.obs.trace.Tracer` every data statement
is additionally instrumented: a ``sql.statement`` span records the SQL
text, parameter/batch count, duration, row count, and per-statement
retry attempts, and statements slower than the tracer's
``slow_query_threshold`` get their ``EXPLAIN QUERY PLAN`` captured into
the span.  With the default (disabled) tracer the hot path pays a single
boolean check.

Durability profiles
-------------------

``bulk_load``
    The seed's load-tuned pragmas (in-memory journal, ``synchronous =
    OFF``).  Fastest; a crash mid-load can corrupt a file-backed
    database.  The right profile for the paper's warm-cache experiments
    and for rebuildable scratch databases.
``durable``
    WAL journal, ``synchronous = NORMAL``, a busy timeout.  Survives
    process crashes (power loss can lose the last transactions but
    never corrupts); concurrent readers don't block the writer.  The
    default for anything that outlives the process.
``paranoid``
    WAL journal with ``synchronous = FULL`` and a longer busy timeout:
    every commit is fsync'd, surviving power failure at commit
    granularity.

The load-time cost of each profile is measured by experiment E13.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from collections.abc import Callable, Iterable, Iterator, Sequence
from urllib.parse import quote

from repro.errors import (
    ReadOnlyDatabaseError,
    StorageError,
    TransientStorageError,
    XmlRelError,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.relational.introspect import SchemaCatalog, build_catalog
from repro.relational.plancache import PlanCache
from repro.relational.retry import RetryPolicy, is_transient_error, with_retries
from repro.relational.schema import Table, quote_identifier

#: Durability profile name -> ordered pragma assignments.
DURABILITY_PROFILES: dict[str, tuple[tuple[str, str], ...]] = {
    "bulk_load": (
        ("journal_mode", "MEMORY"),
        ("synchronous", "OFF"),
        ("temp_store", "MEMORY"),
    ),
    "durable": (
        ("journal_mode", "WAL"),
        ("synchronous", "NORMAL"),
        ("busy_timeout", "5000"),
    ),
    "paranoid": (
        ("journal_mode", "WAL"),
        ("synchronous", "FULL"),
        ("busy_timeout", "10000"),
    ),
}

#: Plan-lint modes: ``off`` skips linting entirely, ``default`` attaches
#: diagnostics to cached plans (and the ``translate`` span), ``strict``
#: additionally raises :class:`~repro.errors.PlanLintError` on
#: error-severity findings.
LINT_MODES = ("off", "default", "strict")

#: Statement head keywords a read-only connection rejects before the
#: engine sees them (``PRAGMA``/``EXPLAIN``/``SELECT``/``WITH`` pass).
_WRITE_KEYWORDS = frozenset(
    {
        "INSERT", "UPDATE", "DELETE", "REPLACE", "CREATE", "DROP",
        "ALTER", "VACUUM", "REINDEX", "ANALYZE",
    }
)


#: Statement-keyword memo.  The serving layer replays a small set of
#: interned SQL strings (cached plans, schema statements) thousands of
#: times; ``lstrip()`` copies the whole statement, so the scan is worth
#: remembering.  Bounded so adversarial statement churn cannot grow it.
_KEYWORD_CACHE: dict[str, str] = {}
_KEYWORD_CACHE_MAX = 4096


def _statement_keyword(sql: str) -> str:
    """The first keyword of *sql*, uppercased (empty for blank text)."""
    keyword = _KEYWORD_CACHE.get(sql)
    if keyword is None:
        head = sql.lstrip()
        end = 0
        while end < len(head) and (head[end].isalpha() or head[end] == "_"):
            end += 1
        keyword = head[:end].upper()
        if len(_KEYWORD_CACHE) < _KEYWORD_CACHE_MAX:
            _KEYWORD_CACHE[sql] = keyword
    return keyword


def _xpath_num(value) -> float | None:
    """The XPath ``number()`` conversion as an SQL scalar function.

    NaN results are represented as NULL so comparisons against them are
    never satisfied (SQL three-valued logic matches XPath's NaN rules).
    """
    if value is None:
        return None
    try:
        return float(str(value).strip())
    except ValueError:
        return None


class Database:
    """A managed sqlite3 database (file-backed or in-memory)."""

    def __init__(
        self,
        path: str = ":memory:",
        profile: str = "bulk_load",
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        lint: str = "default",
        read_only: bool = False,
        check_same_thread: bool = True,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if profile not in DURABILITY_PROFILES:
            raise StorageError(
                f"unknown durability profile {profile!r}; available: "
                + ", ".join(sorted(DURABILITY_PROFILES))
            )
        if lint not in LINT_MODES:
            raise StorageError(
                f"unknown lint mode {lint!r}; available: "
                + ", ".join(LINT_MODES)
            )
        if read_only and path == ":memory:":
            raise StorageError(
                "a read-only database must be file-backed (an in-memory "
                "database would open empty)"
            )
        self.path = path
        self.profile = profile
        self.retry = retry
        #: When True, write statements are rejected with
        #: :class:`~repro.errors.ReadOnlyDatabaseError` before reaching
        #: the engine, and the file is opened ``mode=ro`` so even a
        #: slipped-through write cannot touch it.
        self.read_only = read_only
        #: Observability sink; the shared disabled tracer by default, so
        #: instrumented paths cost one ``enabled`` check when off.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: LRU of rendered XPath→SQL translations; every scheme on this
        #: database translates through it.  Pass ``plan_cache=`` to share
        #: one (thread-safe) cache across many connections — the serving
        #: layer's pools do, so each shard warms one cache, not one per
        #: pooled connection (see :mod:`repro.relational.plancache`).
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        #: Plan-lint mode: every translation is linted before it enters
        #: the plan cache (see :mod:`repro.analysis.sqllint`).
        self.lint_mode = lint
        self._catalog_cache: SchemaCatalog | None = None
        #: Plan-lint results keyed ``(schema_version, sql)`` — rendering
        #: is deterministic, so an identical statement never re-lints.
        self.lint_memo: dict[tuple[int, str], tuple] = {}
        #: Per-thread holder of the most recent statement span, so
        #: ``query()``'s post-hoc row-count attachment never races when
        #: a connection is handed between pool threads.
        self._span_local = threading.local()
        self._txn_depth = 0
        self._savepoint_seq = 0
        if read_only:
            self._conn = sqlite3.connect(
                f"file:{quote(path)}?mode=ro",
                uri=True,
                check_same_thread=check_same_thread,
            )
        else:
            self._conn = sqlite3.connect(
                path, check_same_thread=check_same_thread
            )
        self._conn.isolation_level = None  # explicit transaction control
        cursor = self._conn.cursor()
        if read_only:
            # The journal/synchronous pragmas are write-side settings (a
            # WAL switch even writes the header); a reader only needs
            # the busy timeout, plus query_only as defense in depth.
            for pragma, value in DURABILITY_PROFILES[profile]:
                if pragma == "busy_timeout":
                    cursor.execute(f"PRAGMA {pragma} = {value}")
            cursor.execute("PRAGMA query_only = ON")
        else:
            for pragma, value in DURABILITY_PROFILES[profile]:
                cursor.execute(f"PRAGMA {pragma} = {value}")
        cursor.execute("PRAGMA foreign_keys = ON")
        cursor.close()
        # XPath-faithful numeric conversion: returns NULL (not 0.0, as
        # CAST would) for non-numeric text, so NaN comparisons are false
        # in SQL exactly as they are in XPath.
        self.create_function("xpath_num", 1, _xpath_num)

    def create_function(
        self, name: str, arity: int, fn: Callable, deterministic: bool = True
    ) -> None:
        """Register a scalar SQL function on this connection.

        The public door for translators needing engine-side helpers
        (e.g. xrel's path matcher) — reaching for the private ``_conn``
        bypasses this wrapper and trips the repo lint (L002).
        """
        try:
            self._conn.create_function(
                name, arity, fn, deterministic=deterministic
            )
        except sqlite3.Error as error:
            raise StorageError(
                f"cannot register SQL function {name!r}: {error}"
            ) from error

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -------------------------------------------------------------------

    @property
    def _last_statement_span(self):
        return getattr(self._span_local, "span", None)

    @_last_statement_span.setter
    def _last_statement_span(self, span) -> None:
        self._span_local.span = span

    def _check_writable(self, sql: str) -> None:
        """Reject write statements early on a read-only connection."""
        if self.read_only and _statement_keyword(sql) in _WRITE_KEYWORDS:
            raise ReadOnlyDatabaseError(
                f"write statement on read-only database {self.path!r}: "
                f"{sql.lstrip()[:80]}"
            )

    def _raw_execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        """Single attempt of one statement.  The fault-injection test
        double (:mod:`repro.reliability.faults`) overrides this hook, so
        every data statement — but not transaction control — passes
        through it."""
        return self._conn.execute(sql, params)

    def _raw_executemany(self, sql: str, rows) -> None:
        self._conn.executemany(sql, rows)

    def ping(self) -> bool:
        """Liveness probe: does the connection still answer ``SELECT 1``?

        Deliberately outside tracing, retries, and statement metrics —
        connection pools run this on every acquire, and a probe that
        emitted a ``sql.statement`` span per checkout would bury real
        query spans under health-check noise (and pay tracing overhead
        on the hottest path in the serving layer).  It still goes
        through :meth:`_raw_execute` so fault injection sees it.
        """
        try:
            return self._raw_execute("SELECT 1", ()).fetchone() == (1,)
        except (sqlite3.Error, XmlRelError):
            # Engine and storage-layer failures mean "not alive";
            # anything else (e.g. an injected crash) propagates so
            # callers see the shard's real failure mode.
            return False

    def _convert_error(
        self, error: BaseException, sql: str
    ) -> StorageError:
        if is_transient_error(error):
            attempts = self.retry.max_attempts if self.retry else 1
            return TransientStorageError(
                f"transient SQL error after {attempts} attempt(s): "
                f"{error}\nin: {sql}",
                attempts=attempts,
            )
        return StorageError(f"SQL error: {error}\nin: {sql}")

    def _traced_statement(
        self,
        sql: str,
        params: Sequence,
        runner: Callable,
        kind: str,
        batch_size: int | None = None,
    ):
        """Run one statement under a ``sql.statement`` span.

        Records duration, SQL text, parameter count, retry-attempt
        count (wired through :func:`with_retries`' ``on_retry`` hook),
        and — above the tracer's ``slow_query_threshold`` — the
        statement's ``EXPLAIN QUERY PLAN`` lines.
        """
        tracer = self.tracer
        metrics = tracer.metrics
        retries = 0

        def on_retry(attempt: int, error: BaseException) -> None:
            nonlocal retries
            retries += 1
            metrics.counter("db.retries").inc()
            metrics.counter("db.transient_errors").inc()

        span = tracer.start_span(
            "sql.statement",
            kind=kind,
            sql=tracer.clip_sql(sql),
            params=batch_size if batch_size is not None else len(params),
        )
        self._last_statement_span = span
        try:
            result = runner(on_retry)
        except sqlite3.Error as error:
            metrics.counter("db.errors").inc()
            if is_transient_error(error):
                metrics.counter("db.transient_errors").inc()
            span.set(retries=retries, error=str(error))
            tracer.end_span(span)
            # Failed statements spend real time too — skipping them here
            # would bias the latency distribution toward successes.
            metrics.histogram("db.statement_seconds").observe(span.duration)
            raise self._convert_error(error, sql) from error
        except BaseException:
            metrics.counter("db.errors").inc()
            span.set(retries=retries)
            tracer.end_span(span)
            metrics.histogram("db.statement_seconds").observe(span.duration)
            raise
        tracer.end_span(span)
        span.set(retries=retries)
        metrics.counter("db.statements").inc()
        metrics.histogram("db.statement_seconds").observe(span.duration)
        if batch_size is not None:
            span.set(rows=batch_size)
            metrics.counter("db.rows_written").inc(batch_size)
        elif (
            getattr(result, "rowcount", -1) >= 0
            and _statement_keyword(sql) != "SELECT"
        ):
            span.set(rows=result.rowcount)
        threshold = tracer.slow_query_threshold
        if threshold is not None and span.duration >= threshold:
            span.set(plan=self._capture_plan(sql, params))
            metrics.counter("db.slow_statements").inc()
        return result

    def _capture_plan(self, sql: str, params: Sequence) -> list[str]:
        """Best-effort ``EXPLAIN QUERY PLAN`` lines for a slow statement.

        Runs on the raw connection — outside retry, tracing, and fault
        injection — so plan capture can never recurse or fault.
        """
        head = sql.lstrip()[:10].upper()
        if not head.startswith(("SELECT", "INSERT", "UPDATE", "DELETE",
                                "WITH")):
            return []
        try:
            rows = self._conn.execute(
                f"EXPLAIN QUERY PLAN {sql}", params
            ).fetchall()
        except sqlite3.Error:
            return []
        return [row[-1] for row in rows]

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        """Execute one statement, returning the cursor.

        Transient busy/locked errors are retried under the configured
        :class:`~repro.relational.retry.RetryPolicy` (if any) and
        surface as :class:`~repro.errors.TransientStorageError` once
        exhausted; other engine errors raise :class:`StorageError`.
        """
        self._check_writable(sql)
        if not self.tracer.enabled:
            try:
                return with_retries(self.retry, self._raw_execute, sql,
                                    params)
            except sqlite3.Error as error:
                raise self._convert_error(error, sql) from error
        return self._traced_statement(
            sql,
            params,
            lambda on_retry: with_retries(
                self.retry, self._raw_execute, sql, params,
                on_retry=on_retry,
            ),
            kind="execute",
        )

    def executemany(self, sql: str, rows: Iterable[Sequence]) -> None:
        self._check_writable(sql)
        # Materialize the batch up front.  Callers pass one-shot
        # generators; both the retry loop (re-running an attempt after a
        # partial consumption must see the full batch, never a silently
        # empty/short remainder) and the instrumentation (batch size)
        # need a replayable sequence.
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)

        if self.retry is not None:
            # A batch can fail partway; re-running it naively would
            # duplicate the rows already applied.  Scope each attempt
            # to a savepoint that the retry loop rewinds.
            def attempt() -> None:
                with self.transaction():
                    self._raw_executemany(sql, rows)

            def runner(on_retry):
                return with_retries(self.retry, attempt, on_retry=on_retry)
        else:
            def runner(on_retry):
                return self._raw_executemany(sql, rows)

        if not self.tracer.enabled:
            try:
                runner(None)
            except sqlite3.Error as error:
                raise self._convert_error(error, sql) from error
            return
        self._traced_statement(
            sql, (), runner, kind="executemany", batch_size=len(rows)
        )

    def executescript(self, script: str) -> None:
        self._check_writable(script)
        try:
            self._conn.executescript(script)
        except sqlite3.Error as error:
            raise StorageError(f"SQL error: {error}") from error

    def query(self, sql: str, params: Sequence = ()) -> list[tuple]:
        """Execute and fetch all rows."""
        cursor = self.execute(sql, params)
        rows = cursor.fetchall()
        if self.tracer.enabled:
            # The statement span ended inside execute(); result
            # cardinality is only known now, so attach it post hoc (the
            # span object stays mutable until exported).
            span = self._last_statement_span
            if span is not None:
                span.set(rows=len(rows))
            self.tracer.metrics.counter("db.rows_fetched").inc(len(rows))
        return rows

    def query_one(self, sql: str, params: Sequence = ()) -> tuple | None:
        """Execute and fetch the first row (or None)."""
        return self.execute(sql, params).fetchone()

    def scalar(self, sql: str, params: Sequence = ()):
        """Execute and return the single value of the single row."""
        row = self.query_one(sql, params)
        return row[0] if row is not None else None

    @property
    def in_transaction(self) -> bool:
        """True while an explicit or implicit transaction is open."""
        return self._conn.in_transaction

    def _control(self, sql: str) -> None:
        """Transaction-control statement: bypasses the fault-injection
        hook (a crash test double must still be able to roll back) but
        honours the retry policy — BEGIN is where ``SQLITE_BUSY``
        surfaces under contention."""
        on_retry = None
        if self.tracer.enabled:
            metrics = self.tracer.metrics

            def on_retry(attempt, error):
                metrics.counter("db.retries").inc()
                metrics.counter("db.transient_errors").inc()

        try:
            with_retries(self.retry, self._conn.execute, sql,
                         on_retry=on_retry)
        except sqlite3.Error as error:
            raise self._convert_error(error, sql) from error

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Run a block atomically; nestable.

        The outermost level is BEGIN/COMMIT (ROLLBACK on exception);
        nested levels become SAVEPOINT/RELEASE so an inner failure (or a
        retried inner block) rolls back cleanly without killing the
        enclosing transaction.
        """
        metrics = self.tracer.metrics if self.tracer.enabled else None
        if self._txn_depth == 0:
            self._control("BEGIN")
            self._txn_depth = 1
            try:
                yield
            except BaseException:
                self._txn_depth = 0
                if self._conn.in_transaction:
                    self._conn.execute("ROLLBACK")
                if metrics is not None:
                    metrics.counter("db.rollbacks").inc()
                raise
            self._txn_depth = 0
            self._control("COMMIT")
            if metrics is not None:
                metrics.counter("db.transactions").inc()
        else:
            self._savepoint_seq += 1
            name = f"xmlrel_sp_{self._savepoint_seq}"
            self._control(f"SAVEPOINT {name}")
            self._txn_depth += 1
            if metrics is not None:
                metrics.counter("db.savepoints").inc()
                # High-water mark of nesting depth (depth 1 = outermost).
                metrics.gauge("db.savepoint_depth").set(self._txn_depth)
            try:
                yield
            except BaseException:
                self._txn_depth -= 1
                if self._conn.in_transaction:
                    self._conn.execute(f"ROLLBACK TO {name}")
                    self._conn.execute(f"RELEASE {name}")
                raise
            self._txn_depth -= 1
            self._control(f"RELEASE {name}")

    def run_transaction(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` inside :meth:`transaction`,
        retrying the *whole block* when it fails transiently.

        This is the coarse-grained counterpart of the per-statement
        retry in :meth:`execute`: a block that lost a lock race is
        rolled back (to its savepoint when nested) and re-executed from
        the top, so partial effects never leak between attempts.
        """

        def attempt():
            with self.transaction():
                return fn(*args, **kwargs)

        return with_retries(self.retry, attempt)

    # -- DDL ----------------------------------------------------------------------------

    def create_table(self, table: Table) -> None:
        """Create *table* and its indexes.

        On a read-only connection this is a no-op: the schema was
        created by the writer that owns the file, and the scheme/catalog
        constructors that call this must still work over pooled read
        connections.
        """
        if self.read_only:
            return
        for statement in table.ddl_statements():
            self.execute(statement)

    def drop_table(self, name: str) -> None:
        self.execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")

    def insert_rows(self, table: Table, rows: Iterable[Sequence]) -> None:
        """Bulk-insert *rows* (each covering every column of *table*)."""
        self.executemany(table.insert_sql(), rows)

    # -- introspection ----------------------------------------------------------------------

    def table_names(self) -> list[str]:
        rows = self.query(
            "SELECT name FROM sqlite_master "
            "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name"
        )
        return [name for (name,) in rows]

    def table_exists(self, name: str) -> bool:
        return (
            self.scalar(
                "SELECT COUNT(*) FROM sqlite_master "
                "WHERE type = 'table' AND name = ?",
                (name,),
            )
            > 0
        )

    def row_count(self, table: str) -> int:
        return self.scalar(f"SELECT COUNT(*) FROM {quote_identifier(table)}")

    def table_bytes(self, table: str) -> int:
        """Approximate logical size of *table* in bytes.

        Sums the rendered length of every column value of every row — an
        engine-independent measure of the *mapping's* storage demand, which
        is what experiment E1 compares (page-level overheads would only add
        engine noise).
        """
        columns = [
            row[1]
            for row in self.query(
                f"PRAGMA table_info({quote_identifier(table)})"
            )
        ]
        if not columns:
            raise StorageError(f"no such table: {table}")
        length_sum = " + ".join(
            f"COALESCE(LENGTH(CAST({quote_identifier(c)} AS TEXT)), 0)"
            for c in columns
        )
        total = self.scalar(
            f"SELECT SUM({length_sum}) FROM {quote_identifier(table)}"
        )
        return int(total or 0)

    def database_bytes(self, tables: Iterable[str] | None = None) -> int:
        """Total logical bytes across *tables* (default: all tables)."""
        names = list(tables) if tables is not None else self.table_names()
        return sum(self.table_bytes(name) for name in names)

    def table_cells(self, table: str) -> int:
        """Row count × column count — the slot measure of a mapping.

        Engine-independent: a conventional fixed-layout RDBMS pays for
        every slot whether NULL or not, which is the published complaint
        about the universal table ("huge number of fields, most NULL").
        """
        columns = self.query(f"PRAGMA table_info({quote_identifier(table)})")
        if not columns:
            raise StorageError(f"no such table: {table}")
        return self.row_count(table) * len(columns)

    def database_cells(self, tables: Iterable[str] | None = None) -> int:
        """Total slots across *tables* (default: all tables)."""
        names = list(tables) if tables is not None else self.table_names()
        return sum(self.table_cells(name) for name in names)

    def file_bytes(self) -> int:
        """Physical size: pages in use × page size (after VACUUM).

        Unlike :meth:`database_bytes` (pure value lengths), this includes
        per-row/per-column storage overhead — the cost that penalizes
        wide sparse rows like the universal table's (experiment E1).
        Works for in-memory databases too (sqlite reports their pages).

        VACUUM cannot run inside a transaction, so calling this with one
        open raises a clear :class:`StorageError` instead of sqlite's
        opaque complaint.
        """
        if self._txn_depth or self._conn.in_transaction:
            raise StorageError(
                "file_bytes() runs VACUUM, which cannot execute inside "
                "an open transaction; call it after the transaction "
                "commits"
            )
        self.execute("VACUUM")
        page_count = int(self.scalar("PRAGMA page_count"))
        page_size = int(self.scalar("PRAGMA page_size"))
        free = int(self.scalar("PRAGMA freelist_count"))
        return (page_count - free) * page_size

    def snapshot_into(self, path: str) -> None:
        """Write a consistent point-in-time copy of this database to
        *path* (``VACUUM INTO``): a compact snapshot taken under
        sqlite's own locking, safe while WAL readers proceed.  The
        target must not already exist.  Runs through the statement
        pipeline, so fault injection can crash a replica ship
        mid-snapshot like any other statement.
        """
        if self._txn_depth or self._conn.in_transaction:
            raise StorageError(
                "snapshot_into() runs VACUUM INTO, which cannot execute "
                "inside an open transaction; call it after the "
                "transaction commits"
            )
        self.execute("VACUUM INTO ?", (path,))

    def schema_catalog(self) -> SchemaCatalog:
        """The current schema as the plan linter sees it.

        Cached keyed on ``PRAGMA schema_version`` (bumped by every DDL
        statement, including the schemes' dynamic ALTER/CREATE), so
        steady-state lints pay one PRAGMA.  Runs on the raw connection
        deliberately: catalog introspection must not emit
        ``sql.statement`` spans — the fast-path tests count those per
        query — nor pass through fault injection.
        """
        version = int(
            self._conn.execute("PRAGMA schema_version").fetchone()[0]
        )
        cached = self._catalog_cache
        if cached is not None and cached.schema_version == version:
            return cached
        catalog = build_catalog(self._conn, schema_version=version)
        self._catalog_cache = catalog
        return catalog

    def explain_plan(self, sql: str, params: Sequence = ()) -> list[str]:
        """The EXPLAIN QUERY PLAN detail lines (index-usage inspection)."""
        rows = self.query(f"EXPLAIN QUERY PLAN {sql}", params)
        return [row[-1] for row in rows]

    def analyze(self) -> None:
        """Refresh sqlite's optimizer statistics."""
        self.execute("ANALYZE")
