"""Retry policy for transient SQLite failures (busy/locked).

Under concurrent access sqlite reports lock contention as
``SQLITE_BUSY``/``SQLITE_LOCKED`` — conditions that resolve themselves
once the competing connection finishes.  :class:`RetryPolicy` describes
how to wait them out (exponential backoff with jitter, capped), and
:func:`with_retries` runs a callable under a policy.  The
:class:`~repro.relational.database.Database` wires a policy into
``execute``/``executemany``/``run_transaction`` so every storage scheme
inherits the behaviour without scheme-level code.

The classification deliberately keys on the *error*, not the statement:
a busy error means the statement did not run, so re-issuing it is safe
at any point inside or outside a transaction.
"""

from __future__ import annotations

import random
import sqlite3
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import TransientStorageError

#: sqlite primary result codes that signal a retryable condition.
_TRANSIENT_CODES = frozenset(
    code
    for code in (
        getattr(sqlite3, "SQLITE_BUSY", None),
        getattr(sqlite3, "SQLITE_LOCKED", None),
    )
    if code is not None
)

#: Message fragments used when the errorcode attribute is unavailable
#: (manually constructed errors, older interpreters).
_TRANSIENT_MESSAGES = ("database is locked", "database table is locked")


def is_transient_error(error: BaseException) -> bool:
    """True when *error* is a retryable sqlite busy/locked condition."""
    if isinstance(error, TransientStorageError):
        return True
    if not isinstance(error, sqlite3.OperationalError):
        return False
    code = getattr(error, "sqlite_errorcode", None)
    if code is not None:
        return code in _TRANSIENT_CODES
    message = str(error).lower()
    return any(fragment in message for fragment in _TRANSIENT_MESSAGES)


@dataclass
class RetryPolicy:
    """Capped exponential backoff with jitter.

    Attempt *k* (1-based) sleeps ``min(max_delay, base_delay * 2**(k-1))``
    scaled by a random factor in ``[1 - jitter, 1 + jitter]`` before the
    next try.  ``sleep`` is injectable so tests (and the fault-injection
    suite) run without real waits; ``seed`` makes the jitter
    deterministic.
    """

    max_attempts: int = 5
    base_delay: float = 0.005
    max_delay: float = 0.25
    jitter: float = 0.5
    sleep: Callable[[float], None] = time.sleep
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    def delay_for(self, attempt: int) -> float:
        """Backoff delay after failed attempt number *attempt* (1-based)."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        if self.jitter:
            span = self.jitter * delay
            delay += self._rng.uniform(-span, span)
        return max(0.0, delay)

    def backoff(self, attempt: int) -> None:
        """Sleep out the backoff after failed attempt *attempt*."""
        self.sleep(self.delay_for(attempt))


def with_retries(
    policy: RetryPolicy | None,
    fn: Callable,
    *args,
    classify: Callable[[BaseException], bool] = is_transient_error,
    on_retry: Callable[[int, BaseException], None] | None = None,
    **kwargs,
):
    """Run ``fn(*args, **kwargs)``, retrying transient failures.

    Non-transient errors propagate immediately.  A transient error that
    survives every attempt is re-raised as-is (callers convert it to
    :class:`~repro.errors.TransientStorageError` with context); with no
    policy the callable runs exactly once.

    *on_retry* (if given) is invoked as ``on_retry(attempt, error)``
    before each backoff — i.e. once per failed attempt that will be
    retried — which is how the statement instrumentation in
    :class:`~repro.relational.database.Database` counts retries per
    statement without the retry loop knowing about tracing.
    """
    attempts = policy.max_attempts if policy is not None else 1
    for attempt in range(1, attempts + 1):
        try:
            return fn(*args, **kwargs)
        except BaseException as error:
            if not classify(error) or attempt == attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            policy.backoff(attempt)
    raise AssertionError("unreachable")  # pragma: no cover
