"""Subtree insertion and deletion per storage scheme (experiment E7).

The published update trade-off this module reproduces:

* **edge/binary** — an insert touches the new rows plus one ordinal bump
  per *following sibling* (their subtrees are untouched);
* **dewey** — an insert relabels the following siblings' *subtrees*
  (prefix rewrite), still local to one family;
* **interval** — an insert renumbers **every node after the insertion
  point** in the whole document plus all ancestor sizes — the global
  cost that makes the region encoding read-optimized.

Each operation returns :class:`UpdateStats` with the exact row counts,
which is what the benchmark reports (wall-clock confirms the same
ordering).  Node ids (``pre``) remain unique but are no longer the
document-order index after an insert — except under the interval scheme,
which must maintain that property and pays for it.

The xrel, universal and inlining mappings do not implement updates here:
xrel shares interval's renumbering story, the universal table would
rewrite entire row sets, and inlined columns require DTD-aware row
surgery; all three raise :class:`~repro.errors.UpdateError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UpdateError
from repro.relational.schema import quote_identifier
from repro.storage.base import MappingScheme
from repro.storage.binary import BinaryScheme
from repro.storage.dewey import DeweyScheme
from repro.storage.edge import EdgeScheme, edge_label
from repro.storage.interval import IntervalScheme, element_content
from repro.storage.numbering import (
    DEWEY_SEPARATOR,
    NodeRecord,
    dewey_component,
    dewey_parent,
    number_document,
)
from repro.xml.dom import Document, Element, NodeKind


#: Scheme classes with a subtree insert/delete implementation; the rest
#: raise :class:`~repro.errors.UpdateError` (see the module docstring
#: for why).
UPDATABLE_SCHEMES = (BinaryScheme, EdgeScheme, IntervalScheme, DeweyScheme)


def supports_updates(scheme: MappingScheme) -> bool:
    """True when *scheme* implements subtree insert/delete — callers
    (e.g. the sharded store's write routing) check this up front
    instead of duplicating the class list."""
    return isinstance(scheme, UPDATABLE_SCHEMES)


@dataclass(frozen=True)
class UpdateStats:
    """Cost accounting of one update."""

    rows_inserted: int
    rows_updated: int
    rows_deleted: int = 0

    @property
    def rows_touched(self) -> int:
        return self.rows_inserted + self.rows_updated + self.rows_deleted


def insert_subtree(
    scheme: MappingScheme,
    doc_id: int,
    parent_pre: int,
    fragment: Element,
    index: int = 0,
) -> UpdateStats:
    """Insert *fragment* as child number *index* (0-based, counted among
    the parent's non-attribute children) of node *parent_pre*."""
    scheme.catalog.get(doc_id)
    if not supports_updates(scheme):
        raise UpdateError(
            f"scheme '{scheme.name}' does not implement updates"
        )
    records, contents = _number_fragment(scheme, fragment)
    # One transaction covers the row surgery, the parent's cached
    # content refresh AND the catalog's node count: a fault anywhere
    # leaves the document exactly as it was (the per-scheme helpers'
    # own transactions become savepoints inside this one).
    with scheme.db.transaction():
        if isinstance(scheme, BinaryScheme):
            stats = _insert_binary(scheme, doc_id, parent_pre, index,
                                   records, contents)
        elif isinstance(scheme, EdgeScheme):
            stats = _insert_edge(scheme, doc_id, parent_pre, index,
                                 records, contents)
        elif isinstance(scheme, IntervalScheme):
            stats = _insert_interval(scheme, doc_id, parent_pre, index,
                                     records, contents)
        elif isinstance(scheme, DeweyScheme):
            stats = _insert_dewey(scheme, doc_id, parent_pre, index,
                                  records, contents)
        else:
            raise UpdateError(
                f"scheme '{scheme.name}' does not implement updates"
            )
        _refresh_parent_content(scheme, doc_id, parent_pre)
        record = scheme.catalog.get(doc_id)
        scheme.catalog.update_node_count(
            doc_id, record.node_count + len(records)
        )
    if scheme.translation_depends_on_data:
        # e.g. binary's _ensure_partition may have added a partition,
        # changing what label-selective steps compile to.
        scheme.invalidate_plans()
    return stats


def delete_subtree(
    scheme: MappingScheme, doc_id: int, pre: int
) -> UpdateStats:
    """Delete the subtree rooted at node *pre*."""
    scheme.catalog.get(doc_id)
    if not supports_updates(scheme):
        raise UpdateError(
            f"scheme '{scheme.name}' does not implement updates"
        )
    parent_pre = _parent_of(scheme, doc_id, pre)
    # Same atomicity contract as insert_subtree: rows, cached content
    # and catalog count move together or not at all.
    with scheme.db.transaction():
        if isinstance(scheme, BinaryScheme):
            stats = _delete_binary(scheme, doc_id, pre)
        elif isinstance(scheme, EdgeScheme):
            stats = _delete_edge(scheme, doc_id, pre)
        elif isinstance(scheme, IntervalScheme):
            stats = _delete_interval(scheme, doc_id, pre)
        elif isinstance(scheme, DeweyScheme):
            stats = _delete_dewey(scheme, doc_id, pre)
        else:
            raise UpdateError(
                f"scheme '{scheme.name}' does not implement updates"
            )
        if parent_pre:
            _refresh_parent_content(scheme, doc_id, parent_pre)
        record = scheme.catalog.get(doc_id)
        scheme.catalog.update_node_count(
            doc_id, max(0, record.node_count - stats.rows_deleted)
        )
    if scheme.translation_depends_on_data:
        scheme.invalidate_plans()
    return stats


def _parent_of(scheme: MappingScheme, doc_id: int, pre: int) -> int:
    """The parent's id of node *pre* (0 for root-level nodes)."""
    if isinstance(scheme, BinaryScheme):
        if not scheme.partitions():
            raise UpdateError(f"no node {pre} in document {doc_id}")
        row = scheme.db.query_one(
            "SELECT source FROM binary_edges "
            "WHERE doc_id = ? AND target = ?",
            (doc_id, pre),
        )
    elif isinstance(scheme, EdgeScheme):
        row = scheme.db.query_one(
            "SELECT source FROM edge WHERE doc_id = ? AND target = ?",
            (doc_id, pre),
        )
    elif isinstance(scheme, IntervalScheme):
        row = scheme.db.query_one(
            "SELECT parent_pre FROM accel WHERE doc_id = ? AND pre = ?",
            (doc_id, pre),
        )
    elif isinstance(scheme, DeweyScheme):
        row = scheme.db.query_one(
            "SELECT parent_label FROM dewey WHERE doc_id = ? AND pre = ?",
            (doc_id, pre),
        )
        if row is None:
            raise UpdateError(f"no node {pre} in document {doc_id}")
        if row[0] is None:
            return 0
        parent = scheme.db.query_one(
            "SELECT pre FROM dewey WHERE doc_id = ? AND label = ?",
            (doc_id, row[0]),
        )
        return int(parent[0]) if parent else 0
    else:
        raise UpdateError(
            f"scheme '{scheme.name}' does not implement updates"
        )
    if row is None:
        raise UpdateError(f"no node {pre} in document {doc_id}")
    return int(row[0])


def _refresh_parent_content(
    scheme: MappingScheme, doc_id: int, parent_pre: int
) -> None:
    """Recompute the parent's cached text-only ``content`` after an
    update — inserting an element child invalidates it, deleting the
    last element child may restore it."""
    if isinstance(scheme, BinaryScheme):
        children = scheme.db.query(
            "SELECT kind, value FROM binary_edges "
            "WHERE doc_id = ? AND source = ? AND kind != ? "
            "ORDER BY ordinal",
            (doc_id, parent_pre, int(NodeKind.ATTRIBUTE)),
        )
        content = _content_of(children)
        for table in scheme.partitions().values():
            scheme.db.execute(
                f"UPDATE {quote_identifier(table)} SET content = ? "
                "WHERE doc_id = ? AND target = ?",
                (content, doc_id, parent_pre),
            )
    elif isinstance(scheme, EdgeScheme):
        children = scheme.db.query(
            "SELECT kind, value FROM edge "
            "WHERE doc_id = ? AND source = ? AND kind != ? "
            "ORDER BY ordinal",
            (doc_id, parent_pre, int(NodeKind.ATTRIBUTE)),
        )
        scheme.db.execute(
            "UPDATE edge SET content = ? WHERE doc_id = ? AND target = ?",
            (_content_of(children), doc_id, parent_pre),
        )
    elif isinstance(scheme, IntervalScheme):
        children = scheme.db.query(
            "SELECT kind, value FROM accel "
            "WHERE doc_id = ? AND parent_pre = ? AND kind != ? "
            "ORDER BY ordinal",
            (doc_id, parent_pre, int(NodeKind.ATTRIBUTE)),
        )
        scheme.db.execute(
            "UPDATE accel SET content = ? WHERE doc_id = ? AND pre = ?",
            (_content_of(children), doc_id, parent_pre),
        )
    elif isinstance(scheme, DeweyScheme):
        children = scheme.db.query(
            "SELECT kind, value FROM dewey WHERE doc_id = ? AND "
            "parent_label = (SELECT label FROM dewey "
            "                WHERE doc_id = ? AND pre = ?) "
            "AND kind != ? ORDER BY label",
            (doc_id, doc_id, parent_pre, int(NodeKind.ATTRIBUTE)),
        )
        scheme.db.execute(
            "UPDATE dewey SET content = ? WHERE doc_id = ? AND pre = ?",
            (_content_of(children), doc_id, parent_pre),
        )


def _content_of(children: list[tuple]) -> str | None:
    """Text-only content of a child list (None when mixed/element)."""
    if not children:
        return ""
    if all(kind == int(NodeKind.TEXT) for kind, __ in children):
        return "".join(value or "" for __, value in children)
    return None


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _number_fragment(
    scheme: MappingScheme, fragment: Element
) -> tuple[list[NodeRecord], dict[int, str]]:
    """Number a detached fragment with fresh ids beyond the current max."""
    if fragment.parent is not None:
        raise UpdateError("fragment must be detached")
    holder = Document()
    holder.append_child(fragment)
    try:
        records = number_document(holder)
        contents = element_content(records)
    finally:
        holder.remove_child(fragment)
    base = _max_pre(scheme) + 1
    shifted = [
        NodeRecord(
            pre=r.pre + base - 1,
            post=r.post,
            size=r.size,
            level=r.level,
            kind=r.kind,
            name=r.name,
            value=r.value,
            parent_pre=(r.parent_pre + base - 1 if r.parent_pre else 0),
            ordinal=r.ordinal,
            dewey=r.dewey,
        )
        for r in records
    ]
    shifted_contents = {
        pre + base - 1: text for pre, text in contents.items()
    }
    return shifted, shifted_contents


def _max_pre(scheme: MappingScheme) -> int:
    if isinstance(scheme, BinaryScheme):
        tables = list(scheme.partitions().values())
        column = "target"
    elif isinstance(scheme, EdgeScheme):
        tables, column = ["edge"], "target"
    elif isinstance(scheme, IntervalScheme):
        tables, column = ["accel"], "pre"
    elif isinstance(scheme, DeweyScheme):
        tables, column = ["dewey"], "pre"
    else:  # pragma: no cover - guarded by the dispatchers
        raise UpdateError(f"no id source for scheme '{scheme.name}'")
    best = 0
    for table in tables:
        value = scheme.db.scalar(
            f"SELECT MAX({column}) FROM {quote_identifier(table)}"
        )
        best = max(best, value or 0)
    return best


def _sibling_rows(
    scheme, doc_id: int, parent_pre: int, table: str,
    parent_col: str, id_col: str,
) -> list[tuple[int, int]]:
    """(id, ordinal) of the parent's non-attribute children, in order."""
    rows = scheme.db.query(
        f"SELECT {id_col}, ordinal FROM {quote_identifier(table)} "
        f"WHERE doc_id = ? AND {parent_col} = ? AND kind != ? "
        "ORDER BY ordinal",
        (doc_id, parent_pre, int(NodeKind.ATTRIBUTE)),
    )
    return [(int(a), int(b)) for a, b in rows]


def _attr_count(
    scheme, doc_id: int, parent_pre: int, table: str,
    parent_col: str,
) -> int:
    return int(
        scheme.db.scalar(
            f"SELECT COUNT(*) FROM {quote_identifier(table)} "
            f"WHERE doc_id = ? AND {parent_col} = ? AND kind = ?",
            (doc_id, parent_pre, int(NodeKind.ATTRIBUTE)),
        )
    )


def _insertion_ordinal(
    siblings: list[tuple[int, int]], attr_count: int, index: int
) -> int:
    """Ordinal for the new child at *index* among element/text children."""
    if index < 0 or index > len(siblings):
        raise UpdateError(
            f"index {index} out of range (parent has {len(siblings)} "
            "children)"
        )
    if index < len(siblings):
        return siblings[index][1]
    if siblings:
        return siblings[-1][1] + 1
    return attr_count + 1


# ---------------------------------------------------------------------------
# Edge / binary
# ---------------------------------------------------------------------------


def _insert_edge(
    scheme: EdgeScheme, doc_id, parent_pre, index, records, contents
) -> UpdateStats:
    siblings = _sibling_rows(
        scheme, doc_id, parent_pre, "edge", "source", "target"
    )
    attrs = _attr_count(scheme, doc_id, parent_pre, "edge", "source")
    ordinal = _insertion_ordinal(siblings, attrs, index)
    with scheme.db.transaction():
        cursor = scheme.db.execute(
            "UPDATE edge SET ordinal = ordinal + 1 "
            "WHERE doc_id = ? AND source = ? AND ordinal >= ?",
            (doc_id, parent_pre, ordinal),
        )
        updated = cursor.rowcount
        scheme.db.executemany(
            "INSERT INTO edge (doc_id, source, ordinal, label, kind, "
            "target, value, content) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            _edge_rows(doc_id, parent_pre, ordinal, records, contents),
        )
    return UpdateStats(rows_inserted=len(records), rows_updated=updated)


def _edge_rows(doc_id, parent_pre, ordinal, records, contents):
    root_pre = records[0].pre
    for r in records:
        is_root = r.pre == root_pre
        yield (
            doc_id,
            parent_pre if is_root else r.parent_pre,
            ordinal if is_root else r.ordinal,
            edge_label(r),
            r.kind,
            r.pre,
            r.value,
            contents.get(r.pre),
        )


def _insert_binary(
    scheme: BinaryScheme, doc_id, parent_pre, index, records, contents
) -> UpdateStats:
    siblings = _sibling_rows(
        scheme, doc_id, parent_pre, "binary_edges", "source", "target"
    )
    attrs = _attr_count(
        scheme, doc_id, parent_pre, "binary_edges", "source"
    )
    ordinal = _insertion_ordinal(siblings, attrs, index)
    updated = 0
    with scheme.db.transaction():
        for table in scheme.partitions().values():
            cursor = scheme.db.execute(
                f"UPDATE {quote_identifier(table)} SET ordinal = ordinal + 1 "
                "WHERE doc_id = ? AND source = ? AND ordinal >= ?",
                (doc_id, parent_pre, ordinal),
            )
            updated += cursor.rowcount
        by_label: dict[str, list[tuple]] = {}
        for row in _edge_rows(doc_id, parent_pre, ordinal, records, contents):
            by_label.setdefault(row[3], []).append(row)
        for label, rows in by_label.items():
            table = scheme._ensure_partition(label)
            scheme.db.executemany(
                f"INSERT INTO {quote_identifier(table)} "
                "(doc_id, source, ordinal, label, kind, target, value, "
                "content) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
    return UpdateStats(rows_inserted=len(records), rows_updated=updated)


def _delete_edge(scheme: EdgeScheme, doc_id, pre) -> UpdateStats:
    doomed = [
        row[0]
        for row in scheme.db.query(
            """
            WITH RECURSIVE doomed(id) AS (
              SELECT target FROM edge WHERE doc_id = ? AND target = ?
              UNION ALL
              SELECT e.target FROM edge e JOIN doomed d ON e.source = d.id
              WHERE e.doc_id = ?
            )
            SELECT id FROM doomed
            """,
            (doc_id, pre, doc_id),
        )
    ]
    marks = ", ".join("?" for _ in doomed)
    cursor = scheme.db.execute(
        f"DELETE FROM edge WHERE doc_id = ? AND target IN ({marks})",
        [doc_id] + doomed,
    )
    return UpdateStats(0, 0, rows_deleted=cursor.rowcount)


def _delete_binary(scheme: BinaryScheme, doc_id, pre) -> UpdateStats:
    doomed = [
        row[0]
        for row in scheme.db.query(
            f"""
            WITH RECURSIVE doomed(id) AS (
              SELECT target FROM binary_edges WHERE doc_id = ? AND target = ?
              UNION ALL
              SELECT e.target FROM binary_edges e
              JOIN doomed d ON e.source = d.id WHERE e.doc_id = ?
            )
            SELECT id FROM doomed
            """,
            (doc_id, pre, doc_id),
        )
    ]
    deleted = 0
    with scheme.db.transaction():
        for table in scheme.partitions().values():
            marks = ", ".join("?" for _ in doomed)
            cursor = scheme.db.execute(
                f"DELETE FROM {quote_identifier(table)} "
                f"WHERE doc_id = ? AND target IN ({marks})",
                [doc_id] + doomed,
            )
            deleted += cursor.rowcount
    return UpdateStats(0, 0, rows_deleted=deleted)


# ---------------------------------------------------------------------------
# Interval
# ---------------------------------------------------------------------------


def _insert_interval(
    scheme: IntervalScheme, doc_id, parent_pre, index, records, contents
) -> UpdateStats:
    parent = scheme.db.query_one(
        "SELECT pre, size, level FROM accel WHERE doc_id = ? AND pre = ?",
        (doc_id, parent_pre),
    )
    if parent is None:
        raise UpdateError(f"no node {parent_pre} in document {doc_id}")
    __, parent_size, parent_level = parent
    siblings = _sibling_rows(
        scheme, doc_id, parent_pre, "accel", "parent_pre", "pre"
    )
    attrs = _attr_count(scheme, doc_id, parent_pre, "accel", "parent_pre")
    ordinal = _insertion_ordinal(siblings, attrs, index)
    if index < len(siblings):
        insert_pre = siblings[index][0]
    else:
        insert_pre = parent_pre + parent_size + 1
    subtree_size = len(records)
    updated = 0
    with scheme.db.transaction():
        # Global renumbering: every node at or after the insertion point
        # shifts by the subtree size (the scheme's published update cost).
        # Two passes through negative values: a single in-place += would
        # transiently collide with the (doc_id, pre) primary key.
        cursor = scheme.db.execute(
            "UPDATE accel SET pre = -(pre + ?) "
            "WHERE doc_id = ? AND pre >= ?",
            (subtree_size, doc_id, insert_pre),
        )
        updated += cursor.rowcount
        scheme.db.execute(
            "UPDATE accel SET pre = -pre WHERE doc_id = ? AND pre < 0",
            (doc_id,),
        )
        cursor = scheme.db.execute(
            "UPDATE accel SET parent_pre = parent_pre + ? "
            "WHERE doc_id = ? AND parent_pre >= ?",
            (subtree_size, doc_id, insert_pre),
        )
        updated += cursor.rowcount
        # Ancestors grow by the subtree size.
        ancestors = _ancestor_pres(scheme, doc_id, parent_pre)
        for ancestor in ancestors:
            scheme.db.execute(
                "UPDATE accel SET size = size + ? "
                "WHERE doc_id = ? AND pre = ?",
                (subtree_size, doc_id, ancestor),
            )
        updated += len(ancestors)
        cursor = scheme.db.execute(
            "UPDATE accel SET ordinal = ordinal + 1 "
            "WHERE doc_id = ? AND parent_pre = ? AND ordinal >= ?",
            (doc_id, parent_pre, ordinal),
        )
        updated += cursor.rowcount
        root_pre = records[0].pre
        offset = insert_pre - root_pre
        scheme.db.executemany(
            "INSERT INTO accel (doc_id, pre, post, size, level, kind, "
            "name, value, content, parent_pre, ordinal) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    doc_id,
                    r.pre + offset,
                    0,  # post is not maintained across updates
                    r.size,
                    r.level + parent_level,
                    r.kind,
                    r.name,
                    r.value,
                    contents.get(r.pre),
                    (parent_pre if r.pre == root_pre
                     else r.parent_pre + offset),
                    ordinal if r.pre == root_pre else r.ordinal,
                )
                for r in records
            ),
        )
    return UpdateStats(rows_inserted=len(records), rows_updated=updated)


def _ancestor_pres(scheme, doc_id, pre) -> list[int]:
    ancestors = []
    current = pre
    while current:
        ancestors.append(current)
        row = scheme.db.query_one(
            "SELECT parent_pre FROM accel WHERE doc_id = ? AND pre = ?",
            (doc_id, current),
        )
        if row is None:
            break
        current = row[0]
    return ancestors


def _delete_interval(scheme: IntervalScheme, doc_id, pre) -> UpdateStats:
    row = scheme.db.query_one(
        "SELECT size, parent_pre FROM accel WHERE doc_id = ? AND pre = ?",
        (doc_id, pre),
    )
    if row is None:
        raise UpdateError(f"no node {pre} in document {doc_id}")
    size, parent_pre = row
    updated = 0
    with scheme.db.transaction():
        cursor = scheme.db.execute(
            "DELETE FROM accel WHERE doc_id = ? AND pre >= ? AND pre <= ?",
            (doc_id, pre, pre + size),
        )
        deleted = cursor.rowcount
        # The encoding's regions are *contiguous* pre ranges — a gap
        # would put surviving descendants outside their ancestors'
        # ``(pre, pre+size]`` windows — so deletion renumbers everything
        # after the hole, mirroring insertion's global cost (the
        # published write-amplification of the interval mapping).
        cursor = scheme.db.execute(
            "UPDATE accel SET pre = -(pre - ?) "
            "WHERE doc_id = ? AND pre > ?",
            (deleted, doc_id, pre + size),
        )
        updated += cursor.rowcount
        scheme.db.execute(
            "UPDATE accel SET pre = -pre WHERE doc_id = ? AND pre < 0",
            (doc_id,),
        )
        cursor = scheme.db.execute(
            "UPDATE accel SET parent_pre = parent_pre - ? "
            "WHERE doc_id = ? AND parent_pre > ?",
            (deleted, doc_id, pre + size),
        )
        updated += cursor.rowcount
        ancestors = _ancestor_pres(scheme, doc_id, parent_pre)
        for ancestor in ancestors:
            scheme.db.execute(
                "UPDATE accel SET size = size - ? "
                "WHERE doc_id = ? AND pre = ?",
                (deleted, doc_id, ancestor),
            )
        updated += len(ancestors)
    return UpdateStats(0, updated, rows_deleted=deleted)


# ---------------------------------------------------------------------------
# Dewey
# ---------------------------------------------------------------------------


def _insert_dewey(
    scheme: DeweyScheme, doc_id, parent_pre, index, records, contents
) -> UpdateStats:
    parent = scheme.db.query_one(
        "SELECT label, depth FROM dewey WHERE doc_id = ? AND pre = ?",
        (doc_id, parent_pre),
    )
    if parent is None:
        raise UpdateError(f"no node {parent_pre} in document {doc_id}")
    parent_label, parent_depth = parent
    siblings = scheme.db.query(
        "SELECT pre, ordinal, label FROM dewey "
        "WHERE doc_id = ? AND parent_label = ? AND kind != ? "
        "ORDER BY ordinal",
        (doc_id, parent_label, int(NodeKind.ATTRIBUTE)),
    )
    attrs = int(scheme.db.scalar(
        "SELECT COUNT(*) FROM dewey "
        "WHERE doc_id = ? AND parent_label = ? AND kind = ?",
        (doc_id, parent_label, int(NodeKind.ATTRIBUTE)),
    ))
    ordinal = _insertion_ordinal(
        [(p, o) for p, o, __ in siblings], attrs, index
    )
    updated = 0
    with scheme.db.transaction():
        # Relabel following siblings' subtrees, last first (labels are a
        # primary key, so shifts must not collide mid-flight).
        following = [
            (label, old_ordinal)
            for __, old_ordinal, label in siblings
            if old_ordinal >= ordinal
        ]
        for label, old_ordinal in reversed(following):
            new_label = (
                parent_label + DEWEY_SEPARATOR
                + dewey_component(old_ordinal + 1)
            )
            updated += _relabel_subtree(
                scheme, doc_id, label, new_label, old_ordinal + 1
            )
        root_pre = records[0].pre
        new_root_label = (
            parent_label + DEWEY_SEPARATOR + dewey_component(ordinal)
        )
        scheme.db.executemany(
            "INSERT INTO dewey (doc_id, label, parent_label, depth, kind, "
            "name, value, content, pre, ordinal) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                (
                    doc_id,
                    _graft_label(r.dewey, new_root_label),
                    (
                        parent_label
                        if r.pre == root_pre
                        else _graft_label(
                            dewey_parent(r.dewey) or "", new_root_label
                        )
                    ),
                    r.level + parent_depth,
                    r.kind,
                    r.name,
                    r.value,
                    contents.get(r.pre),
                    r.pre,
                    ordinal if r.pre == root_pre else r.ordinal,
                )
                for r in records
            ),
        )
    return UpdateStats(rows_inserted=len(records), rows_updated=updated)


def _graft_label(fragment_label: str, new_root_label: str) -> str:
    """Replace the fragment root's component with the grafted label."""
    parts = fragment_label.split(DEWEY_SEPARATOR)
    return DEWEY_SEPARATOR.join([new_root_label] + parts[1:])


def _relabel_subtree(
    scheme: DeweyScheme, doc_id, old_label, new_label, new_ordinal
) -> int:
    """Move a subtree from *old_label* to *new_label*; returns rows."""
    from repro.storage.dewey import prefix_range

    lo, hi = prefix_range(old_label)
    cursor = scheme.db.execute(
        "UPDATE dewey SET "
        "label = ? || SUBSTR(label, ?), "
        "parent_label = CASE WHEN parent_label = ? THEN ? "
        "ELSE ? || SUBSTR(parent_label, ?) END "
        "WHERE doc_id = ? AND label > ? AND label < ?",
        (
            new_label, len(old_label) + 1,
            old_label, new_label,
            new_label, len(old_label) + 1,
            doc_id, lo, hi,
        ),
    )
    descendants = cursor.rowcount
    scheme.db.execute(
        "UPDATE dewey SET label = ?, ordinal = ? "
        "WHERE doc_id = ? AND label = ?",
        (new_label, new_ordinal, doc_id, old_label),
    )
    return descendants + 1


def _delete_dewey(scheme: DeweyScheme, doc_id, pre) -> UpdateStats:
    from repro.storage.dewey import prefix_range

    row = scheme.db.query_one(
        "SELECT label FROM dewey WHERE doc_id = ? AND pre = ?",
        (doc_id, pre),
    )
    if row is None:
        raise UpdateError(f"no node {pre} in document {doc_id}")
    (label,) = row
    lo, hi = prefix_range(label)
    cursor = scheme.db.execute(
        "DELETE FROM dewey WHERE doc_id = ? "
        "AND (label = ? OR (label > ? AND label < ?))",
        (doc_id, label, lo, hi),
    )
    return UpdateStats(0, 0, rows_deleted=cursor.rowcount)
