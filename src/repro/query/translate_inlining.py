"""XPath→SQL for the DTD-inlining mapping.

Translation walks the *mapping*, not a generic node relation: each
location step moves between (relation, inlined-path) positions.

* a step into an **inlined** child consumes **no join** — the data is in
  the current row (the fragmentation-reduction payoff, experiment E8);
* a step into a child with its own relation joins on
  ``child.parent_pre = <pre column of the current position>``;
* wildcards and descendant steps fan out into one SQL branch per DTD
  path; the branches are UNIONed;
* a descendant step that would have to cross a *recursive* DTD region is
  rejected (it needs a transitive closure the generated flat SQL cannot
  express — the paper's own noted limitation).

Everything is validated against the DTD at translation time, so queries
over undeclared names simply return the empty set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.query.plan import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_SELF,
    BooleanPredicate,
    ComparisonPredicate,
    ConstantPredicate,
    ExistsPredicate,
    NotPredicate,
    PathPlan,
    PositionPredicate,
    PredicatePlan,
    StepPlan,
    StringMatchPredicate,
    ValuePath,
)
from repro.query.translate_common import compare_value, match_pattern
from repro.query.translator import BaseTranslator
from repro.relational.sql import (
    And,
    Col,
    Comparison,
    DocParam,
    Exists,
    Not,
    Or,
    Raw,
    ScalarSubquery,
    Select,
    SqlExpr,
    Union,
    WithQuery,
)
from repro.storage.inlining.mapping import InlinedPosition, Mapping, Relation
from repro.xpath.ast import AnyKindTest, NameTest, KindTest

_MAX_BRANCHES = 128


@dataclass
class _Branch:
    """One SQL alternative under construction."""

    select: Select
    relation: Relation
    alias: str
    position: InlinedPosition
    result_expr: SqlExpr  # pre id of the branch's current node


class InliningTranslator(BaseTranslator):
    """Mapping-walking translator for the inlining scheme."""

    def translate(self, doc_id: int, xpath) -> WithQuery:
        plan = self.plan(xpath)
        mapping = self.scheme.require_mapping()
        self._alias_count = 0
        branches = self._initial_branches(plan.steps[0], mapping, doc_id)
        for step in plan.steps[1:]:
            new_branches: list[_Branch] = []
            for branch in branches:
                new_branches += self._advance(branch, step, mapping, doc_id)
            if len(new_branches) > _MAX_BRANCHES:
                raise self.scheme.unsupported(
                    f"query fans out into {len(new_branches)} DTD paths"
                )
            branches = new_branches
        return self._finish(branches)

    def _new_alias(self) -> str:
        alias = f"t{self._alias_count}"
        self._alias_count += 1
        return alias

    # -- branch construction -----------------------------------------------------

    def _initial_branches(
        self, step: StepPlan, mapping: Mapping, doc_id: int
    ) -> list[_Branch]:
        if step.axis not in (AXIS_CHILD, AXIS_SELF):
            raise self.scheme.unsupported(
                f"axis {step.axis} as the first step"
            )
        if not isinstance(step.test, NameTest):
            raise self.scheme.unsupported(
                "first step must name an element (data-centric mapping)"
            )
        branches: list[_Branch] = []
        if step.from_descendant:
            positions = [
                p for p in self._all_positions(mapping)
                if step.test.is_wildcard or p.element == step.test.name
            ]
            for position in positions:
                relation = mapping.relations[position.relation_element]
                branches.append(
                    self._open_branch(relation, position, doc_id)
                )
        else:
            for relation in mapping.relations.values():
                if not step.test.is_wildcard and (
                    relation.element != step.test.name
                ):
                    continue
                branch = self._open_branch(relation, relation.root, doc_id)
                branch.select.where(
                    Col("parent_pre", branch.alias).eq(Raw("0"))
                )
                branches.append(branch)
        for branch in branches:
            self._apply_predicates(branch, step, doc_id)
        return branches

    def _all_positions(self, mapping: Mapping) -> list[InlinedPosition]:
        positions: list[InlinedPosition] = []
        for relation in mapping.relations.values():
            positions += list(relation.positions.values())
        return positions

    def _open_branch(
        self, relation: Relation, position: InlinedPosition, doc_id: int
    ) -> _Branch:
        alias = self._new_alias()
        select = (
            Select()
            .from_table(relation.table.name, alias)
            .where(Col("doc_id", alias).eq(DocParam()))
        )
        if not position.is_root:
            select.where(
                Comparison(
                    "IS NOT", Col(position.pre_column, alias), Raw("NULL")
                )
            )
        return _Branch(
            select=select,
            relation=relation,
            alias=alias,
            position=position,
            result_expr=Col(position.pre_column, alias),
        )

    # -- advancing one step ----------------------------------------------------------

    def _advance(
        self, branch: _Branch, step: StepPlan, mapping: Mapping, doc_id: int
    ) -> list[_Branch]:
        if step.axis == AXIS_ATTRIBUTE:
            return self._attribute_branches(branch, step, doc_id)
        if step.axis == AXIS_SELF and not step.from_descendant:
            if isinstance(step.test, NameTest) and not step.test.is_wildcard:
                if branch.position.element != step.test.name:
                    return []
            self._apply_predicates(branch, step, doc_id)
            return [branch]
        if step.axis != AXIS_CHILD:
            raise self.scheme.unsupported(f"axis {step.axis}")
        if isinstance(step.test, KindTest):
            if step.test.kind != "text":
                return []  # comments/PIs are never stored by this scheme
            if step.from_descendant:
                raise self.scheme.unsupported(
                    "descendant text() steps (//text())"
                )
            return self._text_branches(branch, step)
        if isinstance(step.test, AnyKindTest):
            raise self.scheme.unsupported("node() steps")
        assert isinstance(step.test, NameTest)
        if step.from_descendant:
            moves = self._descendant_moves(branch, step.test, mapping)
        else:
            moves = self._child_moves(branch, step.test, mapping)
        results = []
        for moved in moves:
            self._apply_predicates(moved, step, doc_id)
            results.append(moved)
        return results

    def _child_moves(
        self, branch: _Branch, test: NameTest, mapping: Mapping
    ) -> list[_Branch]:
        names = (
            list(branch.position.inlined_children)
            + list(branch.position.relation_children)
            if test.is_wildcard
            else [test.name]
        )
        moves = []
        for name in names:
            moved = self._move_to_child(branch, name, mapping)
            if moved is not None:
                moves.append(moved)
        return moves

    def _move_to_child(
        self, branch: _Branch, name: str, mapping: Mapping
    ) -> _Branch | None:
        """A *forked* branch moved into child *name* (None if the DTD
        does not allow it) — the input branch is never mutated."""
        position = branch.position
        if name in position.inlined_children:
            child_position = branch.relation.positions[
                position.inlined_children[name]
            ]
            moved = self._fork(branch)
            moved.position = child_position
            moved.result_expr = Col(child_position.pre_column, moved.alias)
            moved.select.where(
                Comparison(
                    "IS NOT",
                    Col(child_position.pre_column, moved.alias),
                    Raw("NULL"),
                )
            )
            return moved
        child_relation = mapping.relation_of(name)
        allowed = name in position.relation_children or (
            child_relation is not None
            and mapping.dtd.elements[position.element].model.is_any
        )
        if child_relation is None or not allowed:
            return None
        moved = self._fork(branch)
        alias = self._new_alias()
        moved.select.join(
            child_relation.table.name,
            alias,
            And((
                Col("doc_id", alias).eq(Col("doc_id", moved.alias)),
                Col("parent_pre", alias).eq(
                    Col(position.pre_column, moved.alias)
                ),
            )),
        )
        moved.relation = child_relation
        moved.alias = alias
        moved.position = child_relation.root
        moved.result_expr = Col("pre", alias)
        return moved

    def _descendant_moves(
        self, branch: _Branch, test: NameTest, mapping: Mapping
    ) -> list[_Branch]:
        """Enumerate every DTD chain from the branch to a matching
        descendant; recursion on the way is untranslatable."""
        results: list[_Branch] = []

        def explore(current: _Branch, on_chain: frozenset) -> None:
            position = current.position
            key = (position.relation_element, position.path)
            if key in on_chain:
                raise self.scheme.unsupported(
                    "descendant step through a recursive DTD region "
                    "(needs transitive closure)"
                )
            chain = on_chain | {key}
            child_names = (
                list(position.inlined_children)
                + list(position.relation_children)
            )
            for name in child_names:
                moved = self._move_to_child(current, name, mapping)
                if moved is None:
                    continue
                if test.is_wildcard or moved.position.element == test.name:
                    results.append(self._fork(moved))
                if len(results) > _MAX_BRANCHES:
                    raise self.scheme.unsupported(
                        "descendant step fans out too widely"
                    )
                explore(moved, chain)

        explore(branch, frozenset())
        return results

    def _fork(self, branch: _Branch) -> _Branch:
        """Deep-ish copy so sibling alternatives do not share a Select."""
        select = Select(
            columns=list(branch.select.columns),
            from_item=branch.select.from_item,
            joins=list(branch.select.joins),
            conditions=list(branch.select.conditions),
            order=list(branch.select.order),
            distinct=branch.select.distinct,
            limit_count=branch.select.limit_count,
        )
        return replace(branch, select=select)

    def _attribute_branches(
        self, branch: _Branch, step: StepPlan, doc_id: int
    ) -> list[_Branch]:
        if step.from_descendant:
            raise self.scheme.unsupported("//@attr (descendant attributes)")
        if not isinstance(step.test, NameTest):
            raise self.scheme.unsupported("non-name attribute tests")
        if step.predicates:
            raise self.scheme.unsupported("predicates on attribute steps")
        names = (
            list(branch.position.attr_columns)
            if step.test.is_wildcard
            else [step.test.name]
        )
        results = []
        for name in names:
            columns = branch.position.attr_columns.get(name)
            if columns is None:
                continue
            __, pre_column = columns
            moved = self._fork(branch)
            moved.select.where(
                Comparison(
                    "IS NOT", Col(pre_column, moved.alias), Raw("NULL")
                )
            )
            moved.result_expr = Col(pre_column, moved.alias)
            results.append(moved)
        return results

    def _text_branches(
        self, branch: _Branch, step: StepPlan
    ) -> list[_Branch]:
        if step.predicates:
            raise self.scheme.unsupported("predicates on text() steps")
        position = branch.position
        if position.content_pre_column is None:
            return []
        moved = self._fork(branch)
        moved.select.where(
            Comparison(
                "IS NOT",
                Col(position.content_pre_column, moved.alias),
                Raw("NULL"),
            )
        )
        moved.result_expr = Col(position.content_pre_column, moved.alias)
        return [moved]

    # -- predicates --------------------------------------------------------------------

    def _apply_predicates(
        self, branch: _Branch, step: StepPlan, doc_id: int
    ) -> None:
        for predicate in step.predicates:
            branch.select.where(
                self._predicate_condition(branch, predicate, doc_id)
            )

    def _predicate_condition(
        self, branch: _Branch, predicate: PredicatePlan, doc_id: int
    ) -> SqlExpr:
        if isinstance(predicate, BooleanPredicate):
            operands = tuple(
                self._predicate_condition(branch, p, doc_id)
                for p in predicate.operands
            )
            return And(operands) if predicate.op == "and" else Or(operands)
        if isinstance(predicate, NotPredicate):
            return Not(
                self._predicate_condition(branch, predicate.operand, doc_id)
            )
        if isinstance(predicate, ConstantPredicate):
            return Raw("1") if predicate.value else Raw("0")
        if isinstance(predicate, PositionPredicate):
            return self._position_condition(branch, predicate, doc_id)
        if isinstance(predicate, ComparisonPredicate):
            return self._value_condition(
                branch, predicate.path, doc_id,
                op=predicate.op, literal=predicate.literal,
                numeric=predicate.numeric,
            )
        if isinstance(predicate, ExistsPredicate):
            return self._value_condition(branch, predicate.path, doc_id)
        if isinstance(predicate, StringMatchPredicate):
            return self._value_condition(
                branch, predicate.path, doc_id,
                like_pattern=match_pattern(
                    predicate.function, predicate.literal
                ),
            )
        raise self.scheme.unsupported(f"predicate {type(predicate).__name__}")

    def _position_condition(
        self, branch: _Branch, predicate: PositionPredicate, doc_id: int
    ) -> SqlExpr:
        position = branch.position
        if not position.is_root:
            # Inlined fields occur at most once: [1] holds, [n>1] cannot.
            return Raw("1") if predicate.position == 1 else Raw("0")
        sibling = self._new_alias()
        count = (
            Select()
            .select(Raw("COUNT(*)"))
            .from_table(branch.relation.table.name, sibling)
            .where(Col("doc_id", sibling).eq(DocParam()))
            .where(
                Col("parent_pre", sibling).eq(
                    Col("parent_pre", branch.alias)
                )
            )
            .where(
                Col("ordinal", sibling).lt(Col("ordinal", branch.alias))
            )
        )
        return ScalarSubquery(count).eq(Raw(str(predicate.position - 1)))

    def _value_condition(
        self,
        branch: _Branch,
        path: ValuePath,
        doc_id: int,
        op: str | None = None,
        literal: str | None = None,
        numeric: bool = False,
        like_pattern: str | None = None,
    ) -> SqlExpr:
        mapping = self.scheme.require_mapping()
        # Walk inlined hops for free; open an EXISTS at the first relation
        # boundary and keep joining inside it afterwards.
        relation = branch.relation
        position = branch.position
        alias = branch.alias
        sub: Select | None = None
        conditions_outside: list[SqlExpr] = []

        def add_condition(condition: SqlExpr) -> None:
            if sub is None:
                conditions_outside.append(condition)
            else:
                sub.where(condition)

        for name in path.element_names:
            if name in position.inlined_children:
                position = relation.positions[
                    position.inlined_children[name]
                ]
                add_condition(
                    Comparison(
                        "IS NOT", Col(position.pre_column, alias), Raw("NULL")
                    )
                )
                continue
            child_relation = mapping.relation_of(name)
            allowed = name in position.relation_children or (
                child_relation is not None
                and mapping.dtd.elements[position.element].model.is_any
            )
            if child_relation is None or not allowed:
                return Raw("0")
            new_alias = self._new_alias()
            link = And((
                Col("doc_id", new_alias).eq(DocParam()),
                Col("parent_pre", new_alias).eq(
                    Col(position.pre_column, alias)
                ),
            ))
            if sub is None:
                sub = (
                    Select()
                    .select(Raw("1"))
                    .from_table(child_relation.table.name, new_alias)
                    .where(link)
                )
            else:
                sub.join(child_relation.table.name, new_alias, link)
            relation, position, alias = (
                child_relation, child_relation.root, new_alias
            )
        # Final target value column.
        is_existence = op is None and like_pattern is None
        final_conditions: list[SqlExpr] = []
        if path.target == "attribute":
            columns = position.attr_columns.get(path.target_name or "")
            if columns is None:
                return Raw("0")
            if is_existence:
                final_conditions.append(
                    Comparison("IS NOT", Col(columns[1], alias), Raw("NULL"))
                )
            else:
                comparison = compare_value(
                    Col(columns[0], alias), op, literal, numeric, like_pattern
                )
                assert comparison is not None
                final_conditions.append(comparison)
        elif is_existence and path.target == "content":
            # Bare existence of an element: the row/pre-column presence
            # established by the hops above is all that is needed.
            pass
        elif position.content_column is None:
            return Raw("0")  # a value test on an element-content element
        elif is_existence:  # text() existence
            final_conditions.append(
                Comparison(
                    "IS NOT",
                    Col(position.content_pre_column, alias),
                    Raw("NULL"),
                )
            )
        else:
            comparison = compare_value(
                Col(position.content_column, alias),
                op, literal, numeric, like_pattern,
            )
            assert comparison is not None
            final_conditions.append(comparison)
        if sub is None:
            combined = conditions_outside + final_conditions
            if not combined:
                return Raw("1")  # bare '.' is always true
            return And(tuple(combined))
        for condition in final_conditions:
            sub.where(condition)
        inner = Exists(sub)
        if conditions_outside:
            return And(tuple(conditions_outside + [inner]))
        return inner

    # -- finishing ----------------------------------------------------------------------

    def _finish(self, branches: list[_Branch]) -> WithQuery:
        statement = WithQuery()
        if not branches:
            empty = (
                Select()
                .select(Raw("NULL"), alias="pre")
                .from_table("inline_schema", "s")
                .where(Raw("0"))
            )
            statement.final = empty
            return statement
        selects = []
        for branch in branches:
            branch.select.select(branch.result_expr, alias="pre")
            selects.append(branch.select)
        if len(selects) == 1:
            only = selects[0]
            only.distinct = True
            only.order_by(Col("pre"))
            statement.final = only
            return statement
        statement.add_cte("results", Union(tuple(selects), all=True))
        final = (
            Select()
            .select(Col("pre", "results"))
            .from_table("results", "results")
            .order_by(Col("pre", "results"))
        )
        final.distinct = True
        statement.final = final
        return statement
