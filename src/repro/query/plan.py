"""Normalization of parsed XPath into translator-ready plans.

A :class:`PathPlan` is a list of :class:`StepPlan` items.  Normalization

* folds the desugared ``descendant-or-self::node()`` steps into a
  ``from_descendant`` flag on the following step (so ``//b`` becomes one
  *descendant* step instead of two),
* rewrites explicit ``descendant::``/``descendant-or-self::`` axes into
  the same flag,
* classifies each predicate into one of the closed set of
  :class:`PredicatePlan` variants the SQL translators implement.

Anything outside the translatable subset raises
:class:`~repro.errors.UnsupportedQueryError` *at planning time*, so a
scheme never emits SQL with silently wrong semantics.  (The in-memory
evaluator still supports the wider surface.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnsupportedQueryError
from repro.xpath.ast import (
    AnyKindTest,
    BinaryOp,
    Expr,
    FunctionCall,
    LocationPath,
    NameTest,
    NodeTest,
    NumberLiteral,
    KindTest,
    Step,
    StringLiteral,
)
from repro.xpath.parser import parse_xpath

# Axes a StepPlan may carry after normalization.
AXIS_CHILD = "child"
AXIS_ATTRIBUTE = "attribute"
AXIS_SELF = "self"
AXIS_PARENT = "parent"
# Extended axes: only the order-encoding schemes translate these (the
# interval mapping makes them range predicates, dewey makes them label
# comparisons); the other translators reject them.
AXIS_ANCESTOR = "ancestor"
AXIS_ANCESTOR_OR_SELF = "ancestor-or-self"
AXIS_FOLLOWING_SIBLING = "following-sibling"
AXIS_PRECEDING_SIBLING = "preceding-sibling"
AXIS_FOLLOWING = "following"
AXIS_PRECEDING = "preceding"

EXTENDED_AXES = frozenset({
    AXIS_ANCESTOR,
    AXIS_ANCESTOR_OR_SELF,
    AXIS_FOLLOWING_SIBLING,
    AXIS_PRECEDING_SIBLING,
    AXIS_FOLLOWING,
    AXIS_PRECEDING,
})

_COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})

_SWAPPED_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


# ---------------------------------------------------------------------------
# Value paths (the relative paths inside predicates)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ValuePath:
    """A restricted relative path usable inside a translatable predicate.

    ``element_names`` is a chain of child element steps; ``target`` says
    what is finally compared:

    * ``"content"``   — the (text-only) content of the last element, or of
      the context node itself when ``element_names`` is empty,
    * ``"attribute"`` — the value of attribute ``target_name``,
    * ``"text"``      — a text-node child's data.
    """

    element_names: tuple[str, ...] = ()
    target: str = "content"
    target_name: str | None = None

    def __str__(self) -> str:
        parts = list(self.element_names)
        if self.target == "attribute":
            parts.append(f"@{self.target_name}")
        elif self.target == "text":
            parts.append("text()")
        return "/".join(parts) if parts else "."


# ---------------------------------------------------------------------------
# Predicate plans
# ---------------------------------------------------------------------------


class PredicatePlan:
    """Base class of the closed predicate-plan hierarchy."""

    __slots__ = ()


@dataclass(frozen=True)
class PositionPredicate(PredicatePlan):
    """``[n]`` or ``[position() = n]`` — n is 1-based."""

    position: int


@dataclass(frozen=True)
class ComparisonPredicate(PredicatePlan):
    """``[path op literal]``; ``numeric`` selects CAST-to-REAL compare."""

    path: ValuePath
    op: str
    literal: str
    numeric: bool


@dataclass(frozen=True)
class ExistsPredicate(PredicatePlan):
    """``[path]`` — existential."""

    path: ValuePath


@dataclass(frozen=True)
class StringMatchPredicate(PredicatePlan):
    """``[contains(path, 'x')]`` or ``[starts-with(path, 'x')]``."""

    path: ValuePath
    function: str
    literal: str


@dataclass(frozen=True)
class BooleanPredicate(PredicatePlan):
    """``and`` / ``or`` over sub-predicates."""

    op: str
    operands: tuple[PredicatePlan, ...]


@dataclass(frozen=True)
class NotPredicate(PredicatePlan):
    operand: PredicatePlan


@dataclass(frozen=True)
class CountPredicate(PredicatePlan):
    """``[count(path) op n]`` — an aggregate comparison."""

    path: ValuePath
    op: str
    value: float


@dataclass(frozen=True)
class LastPredicate(PredicatePlan):
    """``[last()]`` — the last node among its matching siblings."""


@dataclass(frozen=True)
class ConstantPredicate(PredicatePlan):
    """A predicate with a statically known truth value.

    Produced when a *number-valued* expression appears in a boolean
    context: XPath treats ``[2]`` as positional, but ``[not(2)]`` as
    ``not(boolean(2))`` — a constant."""

    value: bool


# ---------------------------------------------------------------------------
# Step plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StepPlan:
    """One normalized location step.

    ``from_descendant`` widens the context to descendant-or-self before
    applying the axis — i.e. ``child + from_descendant ≡ descendant``.
    """

    axis: str
    test: NodeTest
    predicates: tuple[PredicatePlan, ...] = ()
    from_descendant: bool = False

    @property
    def is_descendant(self) -> bool:
        return self.axis == AXIS_CHILD and self.from_descendant


@dataclass(frozen=True)
class PathPlan:
    """A fully normalized, translatable absolute location path."""

    steps: tuple[StepPlan, ...]
    source: str = ""

    @property
    def join_steps(self) -> int:
        return len(self.steps)


def plan_path(xpath: str | LocationPath, scheme: str | None = None) -> PathPlan:
    """Parse (if needed) and normalize *xpath* into a :class:`PathPlan`.

    Raises :class:`UnsupportedQueryError` for anything the SQL translators
    do not implement: relative paths, reverse axes other than ``parent``,
    positional predicates on descendant steps, non-literal comparisons...
    """
    if isinstance(xpath, LocationPath):
        path = xpath
        source = str(xpath)
    else:
        source = xpath
        parsed = parse_xpath(xpath)
        if not isinstance(parsed, LocationPath):
            raise UnsupportedQueryError(
                f"not a location path: {xpath}", scheme
            )
        path = parsed
    if not path.absolute:
        raise UnsupportedQueryError(
            "relative paths (queries must start at the root)", scheme
        )
    steps: list[StepPlan] = []
    pending_descendant = False
    for step in path.steps:
        if _is_descendant_or_self_node(step):
            pending_descendant = True
            continue
        steps.append(_plan_step(step, pending_descendant, scheme))
        pending_descendant = False
    if pending_descendant:
        raise UnsupportedQueryError(
            "path ending in descendant-or-self::node()", scheme
        )
    if not steps:
        raise UnsupportedQueryError("the bare root path '/'", scheme)
    return PathPlan(tuple(steps), source)


def _is_descendant_or_self_node(step: Step) -> bool:
    return (
        step.axis == "descendant-or-self"
        and isinstance(step.test, AnyKindTest)
        and not step.predicates
    )


def _plan_step(
    step: Step, from_descendant: bool, scheme: str | None
) -> StepPlan:
    axis = step.axis
    if axis == "descendant":
        axis, from_descendant = AXIS_CHILD, True
    elif axis == "descendant-or-self":
        axis, from_descendant = AXIS_SELF, True
    if axis not in (AXIS_CHILD, AXIS_ATTRIBUTE, AXIS_SELF, AXIS_PARENT) and (
        axis not in EXTENDED_AXES
    ):
        raise UnsupportedQueryError(f"axis '{step.axis}' in SQL", scheme)
    if axis == AXIS_PARENT and step.predicates:
        raise UnsupportedQueryError("predicates on parent steps", scheme)
    if axis in EXTENDED_AXES and from_descendant:
        raise UnsupportedQueryError(
            f"'//' composed with the {axis} axis", scheme
        )
    predicates = tuple(
        classify_predicate(p, scheme) for p in step.predicates
    )
    positional_forbidden = (
        (from_descendant and axis == AXIS_CHILD) or axis in EXTENDED_AXES
    )
    if positional_forbidden:
        for predicate in predicates:
            if isinstance(predicate, (PositionPredicate, LastPredicate)):
                raise UnsupportedQueryError(
                    "positional predicate on a descendant/extended-axis "
                    "step (positions there are proximity-based)",
                    scheme,
                )
    return StepPlan(axis, step.test, predicates, from_descendant)


# ---------------------------------------------------------------------------
# Predicate classification
# ---------------------------------------------------------------------------


def classify_predicate(
    expr: Expr, scheme: str | None = None, boolean_context: bool = False
) -> PredicatePlan:
    """Map a predicate expression onto the translatable plan hierarchy.

    ``boolean_context`` is True inside ``not``/``and``/``or``, where
    XPath boolean-converts number-valued operands instead of comparing
    them against position().
    """
    if isinstance(expr, NumberLiteral):
        if boolean_context:
            return ConstantPredicate(bool(expr.value))
        position = int(expr.value)
        if position != expr.value or position < 1:
            raise UnsupportedQueryError(
                f"non-integer position [{expr.value}]", scheme
            )
        return PositionPredicate(position)
    if isinstance(expr, LocationPath):
        return ExistsPredicate(_value_path(expr, scheme))
    if isinstance(expr, BinaryOp):
        return _classify_binary(expr, scheme)
    if isinstance(expr, FunctionCall):
        return _classify_function(expr, scheme, boolean_context)
    raise UnsupportedQueryError(
        f"predicate expression {type(expr).__name__}", scheme
    )


def _classify_binary(expr: BinaryOp, scheme: str | None) -> PredicatePlan:
    if expr.op in ("and", "or"):
        return BooleanPredicate(
            expr.op,
            (
                classify_predicate(expr.left, scheme, boolean_context=True),
                classify_predicate(expr.right, scheme,
                                   boolean_context=True),
            ),
        )
    if expr.op not in _COMPARISON_OPS:
        raise UnsupportedQueryError(f"operator '{expr.op}'", scheme)
    # position() = n
    if (
        isinstance(expr.left, FunctionCall)
        and expr.left.name == "position"
        and expr.op == "="
        and isinstance(expr.right, NumberLiteral)
    ):
        return classify_predicate(expr.right, scheme)
    # position() = last()
    if (
        isinstance(expr.left, FunctionCall)
        and expr.left.name == "position"
        and expr.op == "="
        and isinstance(expr.right, FunctionCall)
        and expr.right.name == "last"
    ):
        return LastPredicate()
    # count(path) op n
    if (
        isinstance(expr.left, FunctionCall)
        and expr.left.name == "count"
        and len(expr.left.args) == 1
        and isinstance(expr.left.args[0], LocationPath)
        and isinstance(expr.right, NumberLiteral)
    ):
        return CountPredicate(
            _value_path(expr.left.args[0], scheme),
            expr.op,
            expr.right.value,
        )
    left, op, right = expr.left, expr.op, expr.right
    if isinstance(left, (StringLiteral, NumberLiteral)) and isinstance(
        right, LocationPath
    ):
        left, right = right, left
        op = _SWAPPED_OP.get(op, op)
    if not isinstance(left, LocationPath) or not isinstance(
        right, (StringLiteral, NumberLiteral)
    ):
        raise UnsupportedQueryError(
            "comparison must be between a relative path and a literal",
            scheme,
        )
    path = _value_path(left, scheme)
    if isinstance(right, NumberLiteral):
        literal = (
            str(int(right.value))
            if right.value == int(right.value)
            else str(right.value)
        )
        return ComparisonPredicate(path, op, literal, numeric=True)
    if op not in ("=", "!="):
        # String relational comparison is number-coerced in XPath; the
        # translators only implement it for numeric literals.
        raise UnsupportedQueryError(
            f"relational '{op}' against a string literal", scheme
        )
    return ComparisonPredicate(path, op, right.value, numeric=False)


def _classify_function(
    expr: FunctionCall, scheme: str | None, boolean_context: bool = False
) -> PredicatePlan:
    if expr.name == "not" and len(expr.args) == 1:
        return NotPredicate(
            classify_predicate(expr.args[0], scheme, boolean_context=True)
        )
    if expr.name == "last" and not expr.args:
        if boolean_context:
            # boolean(last()) is always true: positions start at 1.
            return ConstantPredicate(True)
        return LastPredicate()
    if expr.name in ("true", "false") and not expr.args:
        return ConstantPredicate(expr.name == "true")
    if expr.name in ("contains", "starts-with") and len(expr.args) == 2:
        target, literal = expr.args
        if not isinstance(literal, StringLiteral):
            raise UnsupportedQueryError(
                f"{expr.name}() needs a string literal", scheme
            )
        if isinstance(target, LocationPath):
            path = _value_path(target, scheme)
        else:
            raise UnsupportedQueryError(
                f"{expr.name}() target must be a relative path or '.'",
                scheme,
            )
        return StringMatchPredicate(path, expr.name, literal.value)
    raise UnsupportedQueryError(f"function {expr.name}()", scheme)


def _value_path(path: LocationPath, scheme: str | None) -> ValuePath:
    """Validate and convert a predicate's relative path."""
    if path.absolute:
        raise UnsupportedQueryError(
            "absolute paths inside predicates", scheme
        )
    names: list[str] = []
    steps = list(path.steps)
    for i, step in enumerate(steps):
        is_last = i == len(steps) - 1
        if step.predicates:
            raise UnsupportedQueryError(
                "nested predicates inside predicates", scheme
            )
        if step.axis == "self" and isinstance(step.test, AnyKindTest):
            if len(steps) == 1:
                return ValuePath((), "content", None)
            raise UnsupportedQueryError("'.' mid-path in predicate", scheme)
        if step.axis == "attribute":
            if not is_last or not isinstance(step.test, NameTest):
                raise UnsupportedQueryError(
                    "attribute step must end the predicate path", scheme
                )
            if step.test.is_wildcard:
                raise UnsupportedQueryError(
                    "@* inside predicates", scheme
                )
            return ValuePath(tuple(names), "attribute", step.test.name)
        if step.axis == "child":
            if isinstance(step.test, KindTest) and step.test.kind == "text":
                if not is_last:
                    raise UnsupportedQueryError(
                        "text() mid-path in predicate", scheme
                    )
                return ValuePath(tuple(names), "text", None)
            if isinstance(step.test, NameTest) and not step.test.is_wildcard:
                names.append(step.test.name)
                continue
            raise UnsupportedQueryError(
                "predicate paths support named child steps only", scheme
            )
        raise UnsupportedQueryError(
            f"axis '{step.axis}' inside predicates", scheme
        )
    return ValuePath(tuple(names), "content", None)
