"""XPath→SQL translation, one translator per storage scheme.

:mod:`repro.query.plan` normalizes a parsed location path into the step
plans and predicate plans all translators consume; the per-scheme modules
turn plans into SQL over that scheme's relations.  Every translator's
contract is the same: given a ``doc_id`` and an XPath string, return the
matching nodes' ``pre`` ids in document order.
"""

from repro.query.plan import (
    PathPlan,
    PredicatePlan,
    StepPlan,
    ValuePath,
    plan_path,
)
from repro.query.translator import BaseTranslator

__all__ = [
    "BaseTranslator",
    "PathPlan",
    "PredicatePlan",
    "StepPlan",
    "ValuePath",
    "plan_path",
]
