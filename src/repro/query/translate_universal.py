"""XPath→SQL for the universal-table mapping.

A linear path over named steps touches **one relation and zero joins**:
the path catalog restricts ``pathexp`` and the answer is the final
label's id column.  That is the whole published appeal of the universal
table (experiments E3/E8) — and its limits show just as quickly:

* wildcards, ``node()``, ``self``/``parent`` axes and positional
  predicates are untranslatable (``UnsupportedQueryError``),
* value predicates need EXISTS self-joins of the wide relation anchored
  on the shared ancestor's id column,
* recursion is rejected at *storage* time already.
"""

from __future__ import annotations

from repro.errors import UnsupportedQueryError
from repro.query.plan import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    BooleanPredicate,
    ComparisonPredicate,
    ConstantPredicate,
    ExistsPredicate,
    NotPredicate,
    PathPlan,
    PredicatePlan,
    StringMatchPredicate,
    ValuePath,
)
from repro.query.translate_common import compare_value, match_pattern
from repro.query.translator import BaseTranslator
from repro.relational.sql import (
    And,
    Arith,
    Col,
    Comparison,
    DocParam,
    Exists,
    Like,
    Not,
    Or,
    Param,
    Raw,
    Select,
    SqlExpr,
    like_escape,
)
from repro.storage.universal import PATH_SEP, UNIVERSAL
from repro.xpath.ast import NameTest, KindTest

_ALWAYS_FALSE = Raw("0")


class UniversalTranslator(BaseTranslator):
    """Path-catalog translator for the universal table."""

    def translate(self, doc_id: int, xpath) -> Select:
        plan = self.plan(xpath)
        segments = self._segments(plan)
        known = self.scheme.label_columns()
        query = (
            Select()
            .from_table(UNIVERSAL, "u")
            .join(
                "universal_paths",
                "p",
                And((
                    Col("doc_id", "p").eq(Col("doc_id", "u")),
                    Col("path_id", "p").eq(Col("path_id", "u")),
                )),
            )
            .where(Col("doc_id", "u").eq(DocParam()))
        )
        final_label = segments[-1][1]
        if final_label not in known:
            query.where(_ALWAYS_FALSE)
            query.select(Raw("NULL"), alias="pre")
            return query
        query.where(self._path_condition(segments))
        __, id_col, __ = self.scheme.column_triple(known[final_label])
        query.where(Comparison("IS NOT", Col(id_col, "u"), Raw("NULL")))
        # Predicates, anchored on the id column of the step they sit on.
        for index, (__, label, predicates) in enumerate(segments):
            for predicate in predicates:
                query.where(
                    self._predicate_condition(
                        predicate, segments[: index + 1], doc_id, known
                    )
                )
        query.select(Col(id_col, "u"), alias="pre")
        query.distinct = True
        query.order_by(Col(id_col, "u"))
        return query

    # -- path handling --------------------------------------------------------------

    def _segments(
        self, plan: PathPlan
    ) -> list[tuple[str, str, tuple[PredicatePlan, ...]]]:
        """(separator, label, predicates) per step; raises on anything the
        universal table cannot express."""
        segments: list[tuple[str, str, tuple[PredicatePlan, ...]]] = []
        for i, step in enumerate(plan.steps):
            is_last = i == len(plan.steps) - 1
            separator = "#%/" if step.from_descendant else PATH_SEP
            if step.axis == AXIS_CHILD:
                if isinstance(step.test, NameTest) and not step.test.is_wildcard:
                    label = step.test.name
                elif isinstance(step.test, KindTest) and step.test.kind == "text":
                    if not is_last:
                        raise self.scheme.unsupported("text() mid-path")
                    label = "#text"
                else:
                    raise self.scheme.unsupported(
                        f"node test {step.test} (universal paths are by label)"
                    )
            elif step.axis == AXIS_ATTRIBUTE:
                if not is_last:
                    raise self.scheme.unsupported("attribute step mid-path")
                if not isinstance(step.test, NameTest) or step.test.is_wildcard:
                    raise self.scheme.unsupported("@* steps")
                label = f"@{step.test.name}"
            else:
                raise self.scheme.unsupported(f"axis {step.axis}")
            from repro.query.plan import PositionPredicate

            for predicate in step.predicates:
                if isinstance(predicate, PositionPredicate):
                    raise self.scheme.unsupported(
                        "positional predicates (no sibling ids in rows)"
                    )
            segments.append((separator, label, step.predicates))
        return segments

    def _path_condition(self, segments) -> SqlExpr:
        """Rows whose path *reaches* the steps (it may extend deeper)."""
        exact = all(sep == PATH_SEP for sep, __, __ in segments)
        pattern = "".join(
            (sep if sep == PATH_SEP else "#%/") + like_escape(label)
            for sep, label, __ in segments
        )
        path = Col("pathexp", "p")
        extended = Like(path, pattern + PATH_SEP + "%")
        if exact:
            exact_path = "".join(
                PATH_SEP + label for __, label, __ in segments
            )
            return Or((path.eq(Param(exact_path)), extended))
        return Or((Like(path, pattern), extended))

    # -- predicates -------------------------------------------------------------------

    def _predicate_condition(
        self,
        predicate: PredicatePlan,
        prefix_segments,
        doc_id: int,
        known: dict[str, int],
    ) -> SqlExpr:
        if isinstance(predicate, BooleanPredicate):
            operands = tuple(
                self._predicate_condition(p, prefix_segments, doc_id, known)
                for p in predicate.operands
            )
            return And(operands) if predicate.op == "and" else Or(operands)
        if isinstance(predicate, NotPredicate):
            return Not(
                self._predicate_condition(
                    predicate.operand, prefix_segments, doc_id, known
                )
            )
        if isinstance(predicate, ConstantPredicate):
            return Raw("1") if predicate.value else Raw("0")
        if isinstance(predicate, ComparisonPredicate):
            return self._value_exists(
                predicate.path, prefix_segments, doc_id, known,
                op=predicate.op, literal=predicate.literal,
                numeric=predicate.numeric,
            )
        if isinstance(predicate, ExistsPredicate):
            return self._value_exists(
                predicate.path, prefix_segments, doc_id, known
            )
        if isinstance(predicate, StringMatchPredicate):
            return self._value_exists(
                predicate.path, prefix_segments, doc_id, known,
                like_pattern=match_pattern(
                    predicate.function, predicate.literal
                ),
            )
        raise self.scheme.unsupported(
            f"predicate {type(predicate).__name__}"
        )

    def _value_exists(
        self,
        path: ValuePath,
        prefix_segments,
        doc_id: int,
        known: dict[str, int],
        op: str | None = None,
        literal: str | None = None,
        numeric: bool = False,
        like_pattern: str | None = None,
    ) -> SqlExpr:
        """EXISTS over a second universal row sharing the anchor node."""
        anchor_label = prefix_segments[-1][1]
        if anchor_label not in known:
            return _ALWAYS_FALSE
        __, anchor_id, anchor_val = self.scheme.column_triple(
            known[anchor_label]
        )
        chain = [anchor_label] + list(path.element_names)
        if path.target == "attribute":
            chain.append(f"@{path.target_name}")
        elif path.target == "text":
            chain.append("#text")
        target_label = chain[-1]
        if target_label not in known or any(
            label not in known for label in chain
        ):
            return _ALWAYS_FALSE
        __, __, target_val = self.scheme.column_triple(known[target_label])
        if path.target == "content" and not path.element_names:
            # The anchor's own content, available on the current row.
            condition = compare_value(
                Col(anchor_val, "u"), op, literal, numeric, like_pattern
            )
            return condition if condition is not None else Raw("1")
        suffix = "".join(PATH_SEP + like_escape(label) for label in chain)
        sub = (
            Select()
            .select(Raw("1"))
            .from_table(UNIVERSAL, "u2")
            .join(
                "universal_paths",
                "p2",
                And((
                    Col("doc_id", "p2").eq(Col("doc_id", "u2")),
                    Col("path_id", "p2").eq(Col("path_id", "u2")),
                )),
            )
            .where(Col("doc_id", "u2").eq(DocParam()))
            .where(
                Col(anchor_id, "u2").eq(Col(anchor_id, "u"))
            )
            .where(
                Or((
                    Like(Col("pathexp", "p2"), f"%{suffix}"),
                    Like(Col("pathexp", "p2"), f"%{suffix}{PATH_SEP}%"),
                ))
            )
        )
        condition = compare_value(
            Col(target_val, "u2"), op, literal, numeric, like_pattern
        )
        if condition is not None:
            sub.where(condition)
        return Exists(sub)
