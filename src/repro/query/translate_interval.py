"""XPath→SQL for the interval (pre/post/size/level) mapping.

A k-step path becomes k self-joins of ``accel``; each axis is a range (or
equality) condition on the region encoding:

* ``child``       — ``n.parent_pre = p.pre``
* ``descendant``  — ``n.pre > p.pre AND n.pre <= p.pre + p.size``
* ``attribute``   — ``n.parent_pre = p.pre AND n.kind = ATTRIBUTE``
* ``parent``      — ``n.pre = p.parent_pre``

No recursion is ever needed — the property that makes this mapping the
published winner on descendant-heavy queries (experiment E4).
"""

from __future__ import annotations

from repro.query.plan import (
    AXIS_ANCESTOR,
    AXIS_ANCESTOR_OR_SELF,
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_FOLLOWING,
    AXIS_FOLLOWING_SIBLING,
    AXIS_PARENT,
    AXIS_PRECEDING,
    AXIS_PRECEDING_SIBLING,
    AXIS_SELF,
    EXTENDED_AXES,
    StepPlan,
)
from repro.query.translate_common import TableTranslator
from repro.relational.sql import Arith, Col, Raw, SqlExpr


class IntervalTranslator(TableTranslator):
    """Region-encoding translator (table ``accel``)."""

    table = "accel"
    pre_column = "pre"

    def axis_conditions(
        self, step: StepPlan, alias: str, prev: str | None
    ) -> list[SqlExpr]:
        pre = Col("pre", alias)
        parent = Col("parent_pre", alias)
        if prev is None:
            # Context is the document node (pre 0, not stored).
            if step.axis == AXIS_PARENT:
                raise self.scheme.unsupported("parent of the document root")
            if step.axis in EXTENDED_AXES:
                return [Raw("0")]  # the document has no such relatives
            if step.from_descendant:
                return []  # every stored node is below the document
            if step.axis in (AXIS_CHILD, AXIS_ATTRIBUTE):
                return [parent.eq(Raw("0"))]
            return [pre.eq(Raw("0"))]  # self:: of the document — empty
        prev_pre = Col("pre", prev)
        region_end = Arith("+", prev_pre, Col("size", prev))
        own_end = Arith("+", pre, Col("size", alias))
        if step.axis == AXIS_ANCESTOR:
            # Region containment inverted: the context lies inside the
            # ancestor's window — the accelerator's signature trick.
            return [pre.lt(prev_pre), own_end.ge(prev_pre)]
        if step.axis == AXIS_ANCESTOR_OR_SELF:
            return [pre.le(prev_pre), own_end.ge(prev_pre)]
        if step.axis == AXIS_FOLLOWING:
            return [pre.gt(region_end)]
        if step.axis == AXIS_PRECEDING:
            # Before the context and not one of its ancestors.
            return [own_end.lt(prev_pre)]
        if step.axis == AXIS_FOLLOWING_SIBLING:
            return [parent.eq(Col("parent_pre", prev)), pre.gt(prev_pre)]
        if step.axis == AXIS_PRECEDING_SIBLING:
            return [parent.eq(Col("parent_pre", prev)), pre.lt(prev_pre)]
        if step.axis in (AXIS_CHILD, AXIS_ATTRIBUTE):
            if step.from_descendant:
                # Attributes live inside the region too, so descendant and
                # descendant-attribute steps share the window; the node
                # test separates them by kind.
                return [pre.gt(prev_pre), pre.le(region_end)]
            return [parent.eq(prev_pre)]
        if step.axis == AXIS_SELF:
            if step.from_descendant:
                return [pre.ge(prev_pre), pre.le(region_end)]
            return [pre.eq(prev_pre)]
        if step.axis == AXIS_PARENT:
            return [pre.eq(Col("parent_pre", prev))]
        raise self.scheme.unsupported(f"axis {step.axis}")

    def child_link(self, parent_alias: str, child_alias: str) -> SqlExpr:
        return Col("parent_pre", child_alias).eq(Col("pre", parent_alias))

    def same_parent(self, alias_a: str, alias_b: str) -> SqlExpr:
        return Col("parent_pre", alias_a).eq(Col("parent_pre", alias_b))
