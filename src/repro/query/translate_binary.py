"""XPath→SQL for the binary (label-partitioned) mapping.

Inherits the edge translator's CTE pipeline and simply routes each scan to
the narrowest relation:

* a step/hop with a *named* test touches only that label's partition —
  the mapping's published advantage on label-selective queries;
* wildcards, kind tests and descendant closures must use the
  ``binary_edges`` view (the UNION ALL of every partition) — its published
  weakness.

A label that was never stored has no partition; scans fall back to the
view, which simply finds nothing.
"""

from __future__ import annotations

from repro.query.plan import AXIS_ATTRIBUTE, AXIS_CHILD, StepPlan
from repro.query.translate_edge import EdgeTranslator
from repro.storage.binary import EDGES_VIEW
from repro.xpath.ast import NameTest


class BinaryTranslator(EdgeTranslator):
    """Partition-pruning translator for the binary mapping."""

    table = EDGES_VIEW

    def _partition_or_view(self, label: str) -> str:
        return self.scheme.partition_for(label) or EDGES_VIEW

    def step_table(self, step: StepPlan) -> str:
        if (
            step.axis in (AXIS_CHILD, AXIS_ATTRIBUTE)
            and isinstance(step.test, NameTest)
            and not step.test.is_wildcard
        ):
            return self._partition_or_view(step.test.name)
        return EDGES_VIEW

    def closure_table(self) -> str:
        return EDGES_VIEW

    def element_table(self, name: str) -> str:
        return self._partition_or_view(name)

    def attribute_table(self, name: str) -> str:
        return self._partition_or_view(name)

    def text_table(self) -> str:
        from repro.storage.edge import TEXT_LABEL

        return self._partition_or_view(TEXT_LABEL)

    def position_table(self, step: StepPlan) -> str:
        return self.step_table(step)
