"""XPath→SQL for the edge mapping.

Translation builds a *pipeline of CTEs*, one per location step: step i's
CTE selects the ``pre`` ids reachable from step i-1's CTE.

* A child step is a single join ``edge.source = prev.pre``.
* A descendant step needs the **transitive closure** of the edge relation
  — a recursive CTE (``WITH RECURSIVE``) computing the descendant-or-self
  set, from which children are taken.  This is the published weakness of
  the mapping (no order encoding to turn ``//`` into a range scan) and
  the contrast experiment E4 quantifies.

Predicates and value chains are shared with the other translators via
:class:`~repro.query.translate_common.TableTranslator`, using the edge
columns (``label`` for names, ``source`` as the parent link).
"""

from __future__ import annotations

from repro.query.plan import (
    AXIS_ANCESTOR,
    AXIS_ANCESTOR_OR_SELF,
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_FOLLOWING_SIBLING,
    AXIS_PARENT,
    AXIS_PRECEDING_SIBLING,
    AXIS_SELF,
    StepPlan,
)
from repro.query.translate_common import ATTRIBUTE, TableTranslator
from repro.relational.sql import (
    And,
    Col,
    DocParam,
    Raw,
    Select,
    SqlExpr,
    Union,
    WithQuery,
)


class EdgeTranslator(TableTranslator):
    """Edge-table translator (CTE pipeline, recursive closures for //)."""

    table = "edge"
    pre_column = "pre"
    name_column = "label"

    # -- TableTranslator hooks (used by predicates/value chains) ---------------

    def axis_conditions(self, step, alias, prev):  # pragma: no cover
        raise AssertionError(
            "edge translation overrides translate(); axis_conditions unused"
        )

    def child_link(self, parent_alias: str, child_alias: str) -> SqlExpr:
        # Inside value chains the context alias exposes its node id as
        # `target`; CTE rows expose it as `pre`.  The context alias is
        # always an edge-table alias here, so `target` is correct.
        return Col("source", child_alias).eq(Col("target", parent_alias))

    def same_parent(self, alias_a: str, alias_b: str) -> SqlExpr:
        return Col("source", alias_a).eq(Col("source", alias_b))

    def link_columns(self) -> tuple[str, str]:
        return "source", "target"

    def step_table(self, step: StepPlan) -> str:
        """Relation scanned by one location step (hook for binary)."""
        return self.table

    def closure_table(self) -> str:
        """Relation traversed by descendant closures (hook for binary)."""
        return self.table

    # -- translation -------------------------------------------------------------

    def translate(self, doc_id: int, xpath) -> WithQuery:
        plan = self.plan(xpath)
        statement = WithQuery()
        prev_cte: str | None = None
        prev_step: StepPlan | None = None
        for i, step in enumerate(plan.steps):
            step_cte = f"s{i}"
            if step.axis in (
                AXIS_FOLLOWING_SIBLING, AXIS_PRECEDING_SIBLING,
            ) and prev_step is not None and (
                prev_step.axis == AXIS_ATTRIBUTE
            ):
                raise self.scheme.unsupported(
                    f"{step.axis} from an attribute context"
                )
            if step.from_descendant and prev_cte is not None:
                closure = f"c{i}"
                statement.recursive = True
                statement.add_cte(
                    closure, self._closure_query(doc_id, prev_cte, closure)
                )
                statement.add_cte(
                    step_cte,
                    self._step_from_closure(doc_id, step, closure),
                )
            elif step.axis in (AXIS_ANCESTOR, AXIS_ANCESTOR_OR_SELF):
                if prev_cte is None:
                    statement.add_cte(
                        step_cte, self._empty_step(doc_id)
                    )
                else:
                    closure = f"c{i}"
                    statement.recursive = True
                    statement.add_cte(
                        closure,
                        self._upward_closure(
                            doc_id, prev_cte, closure,
                            include_self=(
                                step.axis == AXIS_ANCESTOR_OR_SELF
                            ),
                        ),
                    )
                    statement.add_cte(
                        step_cte,
                        self._members_step(doc_id, step, closure),
                    )
            elif step.axis in (
                AXIS_FOLLOWING_SIBLING, AXIS_PRECEDING_SIBLING,
            ):
                if prev_cte is None:
                    statement.add_cte(
                        step_cte, self._empty_step(doc_id)
                    )
                else:
                    statement.add_cte(
                        step_cte,
                        self._sibling_step(doc_id, step, prev_cte),
                    )
            else:
                statement.add_cte(
                    step_cte, self._plain_step(doc_id, step, prev_cte)
                )
            prev_cte = step_cte
            prev_step = step
        assert prev_cte is not None
        final = (
            Select()
            .from_table(prev_cte, prev_cte)
            .select(Col("pre", prev_cte))
            .order_by(Col("pre", prev_cte))
        )
        final.distinct = True
        statement.final = final
        return statement

    def _empty_step(self, doc_id: int) -> Select:
        """An always-empty step (extended axes from the document node)."""
        return (
            Select()
            .from_table(self.step_table(StepPlan(AXIS_CHILD, None)), "e")
            .select(Col("target", "e"), alias="pre")
            .where(Raw("0"))
        )

    def _upward_closure(
        self, doc_id: int, prev_cte: str, closure: str, include_self: bool
    ) -> Union:
        """Ancestor(-or-self) ids by chasing source links upward."""
        if include_self:
            base = (
                Select().from_table(prev_cte, "p").select(Col("pre", "p"))
            )
        else:
            base = (
                Select()
                .from_table(self.closure_table(), "e")
                .select(Col("source", "e"), alias="pre")
                .join(prev_cte, "p", Col("target", "e").eq(Col("pre", "p")))
                .where(Col("doc_id", "e").eq(DocParam()))
                .where(Col("source", "e").gt(Raw("0")))
            )
        recursive = (
            Select()
            .from_table(self.closure_table(), "e")
            .select(Col("source", "e"), alias="pre")
            .join(closure, "r", Col("target", "e").eq(Col("pre", "r")))
            .where(Col("doc_id", "e").eq(DocParam()))
            .where(Col("source", "e").gt(Raw("0")))
        )
        return Union((base, recursive), all=True)

    def _members_step(
        self, doc_id: int, step: StepPlan, closure: str
    ) -> Select:
        """Filter a closure's members by the step's test/predicates."""
        query = (
            Select()
            .from_table(self.closure_table(), "e")
            .select(Col("target", "e"), alias="pre")
            .join(closure, "r", Col("target", "e").eq(Col("pre", "r")))
            .where(Col("doc_id", "e").eq(DocParam()))
        )
        self._apply_tests_and_predicates(query, step, "e", doc_id)
        return query

    def _sibling_step(
        self, doc_id: int, step: StepPlan, prev_cte: str
    ) -> Select:
        """Siblings via shared source plus ordinal comparison."""
        comparison_op = (
            "gt" if step.axis == AXIS_FOLLOWING_SIBLING else "lt"
        )
        query = (
            Select()
            .from_table(prev_cte, "p")
            .select(Col("target", "e"), alias="pre")
            .join(
                self.closure_table(),
                "prow",
                And((
                    Col("doc_id", "prow").eq(DocParam()),
                    Col("target", "prow").eq(Col("pre", "p")),
                )),
            )
            .join(
                self.closure_table(),
                "e",
                And((
                    Col("doc_id", "e").eq(DocParam()),
                    Col("source", "e").eq(Col("source", "prow")),
                    getattr(Col("ordinal", "e"), comparison_op)(
                        Col("ordinal", "prow")
                    ),
                )),
            )
        )
        self._apply_tests_and_predicates(query, step, "e", doc_id)
        return query

    def _closure_query(
        self, doc_id: int, prev_cte: str, closure: str
    ) -> Union:
        """The descendant-or-self closure of the previous step's set."""
        base = (
            Select()
            .from_table(prev_cte, "p")
            .select(Col("pre", "p"))
        )
        recursive = (
            Select()
            .from_table(self.closure_table(), "e")
            .select(Col("target", "e"))
            .join(closure, "r", Col("source", "e").eq(Col("pre", "r")))
            .where(Col("doc_id", "e").eq(DocParam()))
        )
        return Union((base, recursive), all=True)

    def _step_from_closure(
        self, doc_id: int, step: StepPlan, closure: str
    ) -> Select:
        """Apply one step against a descendant-or-self closure."""
        query = (
            Select()
            .from_table(self.step_table(step), "e")
            .select(Col("target", "e"), alias="pre")
            .where(Col("doc_id", "e").eq(DocParam()))
        )
        if step.axis in (AXIS_CHILD, AXIS_ATTRIBUTE):
            # Children of desc-or-self == proper descendants.
            query.join(
                closure, "r", Col("source", "e").eq(Col("pre", "r"))
            )
        elif step.axis == AXIS_SELF:
            query.join(
                closure, "r", Col("target", "e").eq(Col("pre", "r"))
            )
        else:
            raise self.scheme.unsupported(
                f"axis {step.axis} after descendant-or-self"
            )
        self._apply_tests_and_predicates(query, step, "e", doc_id)
        return query

    def _plain_step(
        self, doc_id: int, step: StepPlan, prev_cte: str | None
    ) -> Select:
        query = (
            Select()
            .from_table(self.step_table(step), "e")
            .where(Col("doc_id", "e").eq(DocParam()))
        )
        if step.axis == AXIS_PARENT:
            if prev_cte is None:
                raise self.scheme.unsupported("parent of the document root")
            # The parent's own edge row carries its label/kind for tests.
            query.select(Col("target", "e"), alias="pre")
            query.join(
                prev_cte,
                "p",
                Raw("1").eq(Raw("1")),
            )
            # e is the parent row: a child row c links them.
            query.join(
                self.closure_table(),
                "c",
                And((
                    Col("doc_id", "c").eq(DocParam()),
                    Col("target", "c").eq(Col("pre", "p")),
                    Col("source", "c").eq(Col("target", "e")),
                )),
            )
            self._apply_tests_and_predicates(query, step, "e", doc_id)
            return query
        query.select(Col("target", "e"), alias="pre")
        if step.axis in (AXIS_CHILD, AXIS_ATTRIBUTE):
            if step.from_descendant:
                # First step //x: descendants of the document = everything.
                pass
            elif prev_cte is None:
                query.where(Col("source", "e").eq(Raw("0")))
            else:
                query.join(
                    prev_cte, "p",
                    Col("source", "e").eq(Col("pre", "p")),
                )
        elif step.axis == AXIS_SELF:
            if prev_cte is None:
                # self:: of the document node — never a stored node.
                query.where(Raw("0"))
            else:
                query.join(
                    prev_cte, "p",
                    Col("target", "e").eq(Col("pre", "p")),
                )
        else:
            raise self.scheme.unsupported(f"axis {step.axis}")
        self._apply_tests_and_predicates(query, step, "e", doc_id)
        return query

    def _apply_tests_and_predicates(
        self, query: Select, step: StepPlan, alias: str, doc_id: int
    ) -> None:
        for condition in self.test_conditions(step.test, step.axis, alias):
            query.where(condition)
        for predicate in step.predicates:
            query.where(
                self.predicate_condition(predicate, alias, step, doc_id)
            )
