"""XPath→SQL for the Dewey order-label mapping.

Axis conditions are string operations on the zero-padded labels:

* ``child``       — ``n.parent_label = p.label``
* ``descendant``  — ``n.label > p.label || '.'  AND  n.label < p.label || '/'``
  (an index-usable string range: ``'/'`` is the successor of the
  component separator ``'.'`` in ASCII)
* ``attribute``   — child link plus ``kind = ATTRIBUTE`` (attributes carry
  labels below their element, like any child)
* ``parent``      — ``n.label = p.parent_label``

Results are ordered by the stored ``pre`` id (the labels would sort the
same way — that is the Dewey invariant the property tests check).
"""

from __future__ import annotations

from repro.query.plan import (
    AXIS_ANCESTOR,
    AXIS_ANCESTOR_OR_SELF,
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    AXIS_FOLLOWING,
    AXIS_FOLLOWING_SIBLING,
    AXIS_PARENT,
    AXIS_PRECEDING,
    AXIS_PRECEDING_SIBLING,
    AXIS_SELF,
    EXTENDED_AXES,
    StepPlan,
)
from repro.query.translate_common import TableTranslator
from repro.relational.sql import And, Arith, Col, Comparison, Not, Or, Raw, SqlExpr
from repro.storage.numbering import DEWEY_SEPARATOR

_SEPARATOR_LITERAL = f"'{DEWEY_SEPARATOR}'"
_RANGE_END_LITERAL = f"'{chr(ord(DEWEY_SEPARATOR) + 1)}'"


def _descendant_range(alias: str, prev: str) -> list[SqlExpr]:
    label = Col("label", alias)
    prev_label = Col("label", prev)
    lower = Arith("||", prev_label, Raw(_SEPARATOR_LITERAL))
    upper = Arith("||", prev_label, Raw(_RANGE_END_LITERAL))
    return [label.gt(lower), label.lt(upper)]


class DeweyTranslator(TableTranslator):
    """Order-label translator (table ``dewey``)."""

    table = "dewey"
    pre_column = "pre"

    def axis_conditions(
        self, step: StepPlan, alias: str, prev: str | None
    ) -> list[SqlExpr]:
        label = Col("label", alias)
        parent_label = Col("parent_label", alias)
        if prev is None:
            if step.axis == AXIS_PARENT:
                raise self.scheme.unsupported("parent of the document root")
            if step.axis in EXTENDED_AXES:
                return [Raw("0")]  # the document has no such relatives
            if step.from_descendant:
                return []
            if step.axis in (AXIS_CHILD, AXIS_ATTRIBUTE):
                # Root-level nodes have single-component labels.
                return [Comparison("IS", parent_label, Raw("NULL"))]
            return [Raw("0")]  # self:: of the document — empty
        if step.axis in EXTENDED_AXES:
            return self._extended_axis_conditions(step, alias, prev)
        if step.axis in (AXIS_CHILD, AXIS_ATTRIBUTE):
            if step.from_descendant:
                return _descendant_range(alias, prev)
            return [parent_label.eq(Col("label", prev))]
        if step.axis == AXIS_SELF:
            if step.from_descendant:
                return [label.ge(Col("label", prev))] + [
                    label.lt(
                        Arith("||", Col("label", prev),
                              Raw(_RANGE_END_LITERAL))
                    )
                ]
            return [label.eq(Col("label", prev))]
        if step.axis == AXIS_PARENT:
            return [label.eq(Col("parent_label", prev))]
        raise self.scheme.unsupported(f"axis {step.axis}")

    def _extended_axis_conditions(
        self, step: StepPlan, alias: str, prev: str
    ) -> list[SqlExpr]:
        """Extended axes as pure label comparisons.

        Ancestor-of is the inverted prefix range; following is
        "lexicographically past the context's subtree" — the upper bound
        ``label || '/'`` both closes the subtree and excludes ancestors
        (whose labels are proper prefixes, hence smaller).
        """
        label = Col("label", alias)
        prev_label = Col("label", prev)
        own_subtree_lo = Arith("||", label, Raw(_SEPARATOR_LITERAL))
        own_subtree_hi = Arith("||", label, Raw(_RANGE_END_LITERAL))
        is_ancestor = And((
            prev_label.gt(own_subtree_lo),
            prev_label.lt(own_subtree_hi),
        ))
        if step.axis == AXIS_ANCESTOR:
            return [is_ancestor]
        if step.axis == AXIS_ANCESTOR_OR_SELF:
            return [Or((label.eq(prev_label), is_ancestor))]
        if step.axis == AXIS_FOLLOWING:
            return [
                label.gt(Arith("||", prev_label, Raw(_RANGE_END_LITERAL)))
            ]
        if step.axis == AXIS_PRECEDING:
            return [label.lt(prev_label), Not(is_ancestor)]
        if step.axis == AXIS_FOLLOWING_SIBLING:
            return [
                Col("parent_label", alias).eq(Col("parent_label", prev)),
                label.gt(prev_label),
            ]
        if step.axis == AXIS_PRECEDING_SIBLING:
            return [
                Col("parent_label", alias).eq(Col("parent_label", prev)),
                label.lt(prev_label),
            ]
        raise self.scheme.unsupported(f"axis {step.axis}")

    def child_link(self, parent_alias: str, child_alias: str) -> SqlExpr:
        return Col("parent_label", child_alias).eq(Col("label", parent_alias))

    def same_parent(self, alias_a: str, alias_b: str) -> SqlExpr:
        # Root-level nodes have NULL parent_label; IS handles both cases.
        return Comparison(
            "IS", Col("parent_label", alias_a), Col("parent_label", alias_b)
        )

    def link_columns(self) -> tuple[str, str]:
        return "parent_label", "label"
