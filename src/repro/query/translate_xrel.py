"""XPath→SQL for the XRel (path + region) mapping.

The defining property: a location path does **not** become per-step joins.
Consecutive predicate-free steps collapse into one string pattern matched
against the small ``xrel_paths`` relation; only steps that carry
predicates (and the final step) materialize a node-table alias, and
consecutive aliases are connected by *region containment* plus a
correlated path-extension condition:

* pure child chain   — ``cp.pathexp = ep.pathexp || '#/a#/b'``
* chain containing //— ``cp.pathexp LIKE ep.pathexp || '#%/b'``

Absolute patterns (containing ``//`` or wildcards) are matched with the
``xrel_path_match`` UDF (regex over the path table only — the tiny
relation XRel's design funnels all pattern work into).

Positional predicates are not translatable here (rows carry no sibling
identity without joining the parent) — a published XRel limitation this
reproduction keeps visible rather than papering over.
"""

from __future__ import annotations

import re

from repro.query.plan import (
    AXIS_ATTRIBUTE,
    AXIS_CHILD,
    BooleanPredicate,
    ComparisonPredicate,
    ConstantPredicate,
    ExistsPredicate,
    NotPredicate,
    PositionPredicate,
    PredicatePlan,
    StepPlan,
    StringMatchPredicate,
    ValuePath,
)
from repro.query.translate_common import compare_value, match_pattern
from repro.query.translator import BaseTranslator
from repro.relational.sql import (
    And,
    Arith,
    Col,
    Comparison,
    DocParam,
    Exists,
    Func,
    Like,
    Not,
    Or,
    Param,
    Raw,
    Select,
    SqlExpr,
    like_escape,
)
from repro.storage.xrel import PATH_SEP
from repro.xml.dom import NodeKind
from repro.xpath.ast import AnyKindTest, NameTest, KindTest

TEXT = int(NodeKind.TEXT)
COMMENT = int(NodeKind.COMMENT)
PI = int(NodeKind.PROCESSING_INSTRUCTION)

_KIND_OF_TEST = {"text": TEXT, "comment": COMMENT,
                 "processing-instruction": PI}

_REGEX_CACHE: dict[str, re.Pattern] = {}


def xrel_path_match(pattern: str, pathexp: str) -> bool:
    """UDF: match an XRel path pattern (child ``#/x``, descendant
    ``#//x``, wildcard ``*``) against a stored path expression."""
    compiled = _REGEX_CACHE.get(pattern)
    if compiled is None:
        parts = []
        i = 0
        while i < len(pattern):
            if pattern.startswith("#//", i):
                parts.append(f"(?:{re.escape(PATH_SEP)}[^#]+)*"
                             + re.escape(PATH_SEP))
                i += 3
            elif pattern.startswith(PATH_SEP, i):
                parts.append(re.escape(PATH_SEP))
                i += 2
            elif pattern[i] == "*":
                parts.append("[^#]+")
                i += 1
            else:
                j = i
                while j < len(pattern) and pattern[j] not in "#*":
                    j += 1
                parts.append(re.escape(pattern[i:j]))
                i = j
        compiled = re.compile("".join(parts) + r"\Z")
        _REGEX_CACHE[pattern] = compiled
    return compiled.match(pathexp) is not None


class XRelTranslator(BaseTranslator):
    """Path-pattern + region-containment translator."""

    def __init__(self, scheme) -> None:
        super().__init__(scheme)
        self.db.create_function(
            "xrel_path_match", 2,
            lambda p, s: 1 if xrel_path_match(p, s) else 0,
        )

    # -- translation -------------------------------------------------------------

    def translate(self, doc_id: int, xpath) -> Select:
        plan = self.plan(xpath)
        query = Select()
        prev_alias: str | None = None   # previous materialized node alias
        prev_paths: str | None = None   # its path-table alias
        pattern = ""                    # relative pattern since prev_alias
        exact = True                    # pattern free of // and wildcards
        alias_count = 0
        for i, step in enumerate(plan.steps):
            is_last = i == len(plan.steps) - 1
            fragment, fragment_exact = self._step_fragment(step)
            pattern += fragment
            exact = exact and fragment_exact
            if not (is_last or step.predicates):
                continue
            alias = f"x{alias_count}"
            paths_alias = f"{alias}p"
            alias_count += 1
            table = self._node_table(step)
            # The path table comes first so its equality condition (exact
            # pathexp, or the correlated extension of the previous path)
            # drives the plan; the node table then probes its
            # (doc_id, path_id) index — never a region-only scan.
            path_conditions = And((
                Col("doc_id", paths_alias).eq(DocParam()),
                self._path_condition(
                    pattern, exact, paths_alias, prev_paths, doc_id
                ),
            ))
            node_conditions: list[SqlExpr] = [
                Col("doc_id", alias).eq(DocParam()),
                Col("path_id", alias).eq(Col("path_id", paths_alias)),
            ]
            if prev_alias is not None:
                node_conditions.append(
                    Col("start", alias).gt(Col("start", prev_alias))
                )
                node_conditions.append(
                    Col("end", alias).le(Col("end", prev_alias))
                )
            node_conditions += self._test_conditions(step, alias)
            if query.from_item is None:
                query.from_table("xrel_paths", paths_alias)
                query.where(path_conditions)
            else:
                query.join("xrel_paths", paths_alias, path_conditions)
            query.join(table, alias, And(tuple(node_conditions)))
            for predicate in step.predicates:
                query.where(
                    self._predicate_condition(
                        predicate, alias, paths_alias, doc_id
                    )
                )
            prev_alias, prev_paths = alias, paths_alias
            pattern, exact = "", True
        assert prev_alias is not None
        query.select(Col("start", prev_alias), alias="pre")
        query.distinct = True
        # The unary-plus keeps the planner from scanning the node table
        # in PK order just to satisfy ORDER BY — the path-table-driven
        # plan plus a final sort is orders of magnitude better here.
        query.order_by(Raw(f"+{prev_alias}.start"))
        return query

    # -- steps -----------------------------------------------------------------------

    def _step_fragment(self, step: StepPlan) -> tuple[str, bool]:
        """(pattern fragment, is-exact) of one step."""
        separator = "#//" if step.from_descendant else PATH_SEP
        exact = not step.from_descendant
        if step.axis == AXIS_ATTRIBUTE:
            if not isinstance(step.test, NameTest):
                raise self.scheme.unsupported("non-name attribute tests")
            name = "*" if step.test.is_wildcard else step.test.name
            exact = exact and not step.test.is_wildcard
            return f"{separator}@{name}", exact
        if step.axis != AXIS_CHILD:
            raise self.scheme.unsupported(
                f"axis {step.axis} (XRel paths are forward label chains)"
            )
        test = step.test
        if isinstance(test, NameTest):
            if test.is_wildcard:
                return f"{separator}*", False
            return f"{separator}{test.name}", exact
        if isinstance(test, (KindTest, AnyKindTest)):
            # Text/comment/PI rows reuse their parent's pathexp: the step
            # adds no path component.
            if isinstance(test, AnyKindTest):
                raise self.scheme.unsupported("node() steps")
            if step.from_descendant:
                return "#//*", False
            return "", exact
        raise self.scheme.unsupported(f"node test {test}")

    def _node_table(self, step: StepPlan) -> str:
        if step.axis == AXIS_ATTRIBUTE:
            return "xrel_attribute"
        if isinstance(step.test, KindTest):
            return "xrel_text"
        return "xrel_element"

    def _test_conditions(self, step: StepPlan, alias: str) -> list[SqlExpr]:
        if step.axis == AXIS_ATTRIBUTE:
            return []  # the @name path component already filters
        if isinstance(step.test, KindTest):
            return [
                Col("kind", alias).eq(
                    Raw(str(_KIND_OF_TEST[step.test.kind]))
                )
            ]
        return []

    def _path_condition(
        self,
        pattern: str,
        exact: bool,
        paths_alias: str,
        prev_paths: str | None,
        doc_id: int,
    ) -> SqlExpr:
        path = Col("pathexp", paths_alias)
        if prev_paths is None:
            if exact:
                return path.eq(Param(pattern))
            # Drive the plan from the small path table: materialize the
            # matching path ids instead of evaluating the UDF per node row.
            matching = (
                Select()
                .from_table("xrel_paths", "pm")
                .select(Col("path_id", "pm"))
                .where(Col("doc_id", "pm").eq(DocParam()))
                .where(
                    Func(
                        "xrel_path_match",
                        (Param(pattern), Col("pathexp", "pm")),
                    ).eq(Raw("1"))
                )
            )
            from repro.relational.sql import InSubquery

            return InSubquery(Col("path_id", paths_alias), matching)
        prev_path = Col("pathexp", prev_paths)
        if pattern == "":
            # A text()/comment() step right below the previous alias.
            return Comparison("=", path, prev_path)
        if exact:
            return Comparison(
                "=", path, Arith("||", prev_path, Param(pattern))
            )
        # Correlated non-exact extension: a LIKE pattern built from the
        # previous alias's pathexp would let '_' inside labels act as a
        # wildcard, so split instead: prefix equality + UDF on the rest.
        prefix = Func("SUBSTR", (path, Raw("1"), Func("LENGTH", (prev_path,))))
        remainder = Func(
            "SUBSTR",
            (path, Arith("+", Func("LENGTH", (prev_path,)), Raw("1"))),
        )
        return And((
            Comparison("=", prefix, prev_path),
            Func("xrel_path_match", (Param(pattern), remainder)).eq(Raw("1")),
        ))

    # -- predicates -------------------------------------------------------------------

    def _predicate_condition(
        self,
        predicate: PredicatePlan,
        alias: str,
        paths_alias: str,
        doc_id: int,
    ) -> SqlExpr:
        if isinstance(predicate, BooleanPredicate):
            operands = tuple(
                self._predicate_condition(p, alias, paths_alias, doc_id)
                for p in predicate.operands
            )
            return And(operands) if predicate.op == "and" else Or(operands)
        if isinstance(predicate, NotPredicate):
            return Not(
                self._predicate_condition(
                    predicate.operand, alias, paths_alias, doc_id
                )
            )
        if isinstance(predicate, ConstantPredicate):
            return Raw("1") if predicate.value else Raw("0")
        if isinstance(predicate, PositionPredicate):
            raise self.scheme.unsupported(
                "positional predicates (regions carry no sibling rank)"
            )
        if isinstance(predicate, ComparisonPredicate):
            return self._value_exists(
                predicate.path, alias, paths_alias, doc_id,
                op=predicate.op, literal=predicate.literal,
                numeric=predicate.numeric,
            )
        if isinstance(predicate, ExistsPredicate):
            return self._value_exists(
                predicate.path, alias, paths_alias, doc_id
            )
        if isinstance(predicate, StringMatchPredicate):
            return self._value_exists(
                predicate.path, alias, paths_alias, doc_id,
                like_pattern=match_pattern(
                    predicate.function, predicate.literal
                ),
            )
        raise self.scheme.unsupported(f"predicate {type(predicate).__name__}")

    def _value_exists(
        self,
        path: ValuePath,
        alias: str,
        paths_alias: str,
        doc_id: int,
        op: str | None = None,
        literal: str | None = None,
        numeric: bool = False,
        like_pattern: str | None = None,
    ) -> SqlExpr:
        if not path.element_names and path.target == "content":
            condition = compare_value(
                Col("content", alias), op, literal, numeric, like_pattern
            )
            return condition if condition is not None else Raw("1")
        suffix = "".join(
            f"{PATH_SEP}{name}" for name in path.element_names
        )
        if path.target == "attribute":
            table, value_col = "xrel_attribute", "value"
            suffix += f"{PATH_SEP}@{path.target_name}"
        elif path.target == "text":
            table, value_col = "xrel_text", "value"
        else:
            table, value_col = "xrel_element", "content"
        target = f"{alias}_v"
        target_paths = f"{alias}_vp"
        # Path table first (its pathexp equality is index-seekable per
        # outer row), then the node table by path id — the same ordering
        # fix as in translate(): a region-only node scan is never cheap.
        sub = (
            Select()
            .select(Raw("1"))
            .from_table("xrel_paths", target_paths)
            .where(Col("doc_id", target_paths).eq(DocParam()))
            .where(
                Comparison(
                    "=",
                    Col("pathexp", target_paths),
                    Arith(
                        "||", Col("pathexp", paths_alias), Param(suffix)
                    ) if suffix else Col("pathexp", paths_alias),
                )
            )
            .join(
                table,
                target,
                And((
                    Col("doc_id", target).eq(DocParam()),
                    Col("path_id", target).eq(Col("path_id", target_paths)),
                    Col("start", target).gt(Col("start", alias)),
                    Col("end", target).le(Col("end", alias)),
                )),
            )
        )
        if path.target == "attribute":
            # Redundant with the pathexp condition, but it lets the
            # (doc_id, name, value) index drive the probe.
            sub.where(Col("name", target).eq(Param(path.target_name)))
        if path.target == "text":
            sub.where(Col("kind", target).eq(Raw(str(TEXT))))
        condition = compare_value(
            Col(value_col, target), op, literal, numeric, like_pattern
        )
        if condition is not None:
            sub.where(condition)
        return Exists(sub)


def _pattern_to_like(pattern: str) -> str:
    """Convert a relative XRel pattern to a LIKE pattern.

    ``#//label`` becomes ``#%/label`` — the ``%`` absorbs zero or more
    whole intermediate components while the trailing ``/`` keeps label
    boundaries intact (``#%/b`` cannot match a label merely *ending* in
    ``b``).  Wildcard fragments never reach here (they force UDF/absolute
    matching), so only literal labels are escaped.
    """
    like = like_escape(pattern.replace("#//", "\x00"))
    return like.replace("\x00", "#%/")
