"""Shared translator machinery for single-node-table mappings.

The interval and Dewey mappings both store every node in one relation with
``doc_id/kind/name/value/content/ordinal`` columns plus their respective
order encodings.  :class:`TableTranslator` implements everything that does
not depend on the encoding — test conditions, predicate compilation, value
chains, sibling-position counting — through two hooks the concrete
translators provide:

* :meth:`axis_conditions` — how one location step constrains the new
  table alias relative to the previous one, and
* :meth:`child_link` — the parent→child join used inside value chains.
"""

from __future__ import annotations

import abc

from repro.query.plan import (
    AXIS_ATTRIBUTE,
    BooleanPredicate,
    ComparisonPredicate,
    ConstantPredicate,
    CountPredicate,
    ExistsPredicate,
    LastPredicate,
    NotPredicate,
    PositionPredicate,
    PredicatePlan,
    StepPlan,
    StringMatchPredicate,
    ValuePath,
)
from repro.query.translator import BaseTranslator
from repro.relational.sql import (
    And,
    Col,
    Comparison,
    DocParam,
    Exists,
    Func,
    Like,
    Not,
    Or,
    Param,
    Raw,
    ScalarSubquery,
    Select,
    SqlExpr,
    like_escape,
)
from repro.xml.dom import NodeKind
from repro.xpath.ast import AnyKindTest, NameTest, NodeTest, KindTest

ELEMENT = int(NodeKind.ELEMENT)
ATTRIBUTE = int(NodeKind.ATTRIBUTE)
TEXT = int(NodeKind.TEXT)

_KIND_OF_TEST = {
    "text": int(NodeKind.TEXT),
    "comment": int(NodeKind.COMMENT),
    "processing-instruction": int(NodeKind.PROCESSING_INSTRUCTION),
}


def compare_value(
    operand: SqlExpr,
    op: str | None,
    literal: str | None,
    numeric: bool,
    like_pattern: str | None,
) -> SqlExpr | None:
    """The final comparison on a value column (None = pure existence).

    Numeric comparisons go through the ``xpath_num`` UDF so non-numeric
    text behaves like NaN (never matches), exactly as in XPath.
    """
    if like_pattern is not None:
        return Like(operand, like_pattern)
    if op is None:
        return None
    sql_op = "<>" if op == "!=" else op
    if numeric:
        assert literal is not None
        return Comparison(
            sql_op, Func("xpath_num", (operand,)), Param(float(literal))
        )
    return Comparison(sql_op, operand, Param(literal or ""))


def _static_compare(left: float, op: str, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def match_pattern(function: str, literal: str) -> str:
    """LIKE pattern for contains()/starts-with()."""
    escaped = like_escape(literal)
    return f"%{escaped}%" if function == "contains" else f"{escaped}%"


class TableTranslator(BaseTranslator):
    """Base translator for mappings with one all-nodes relation."""

    #: The node relation's name.
    table: str = ""
    #: Column holding the scheme-independent pre id.
    pre_column: str = "pre"
    #: Column holding node names (the edge mapping calls it ``label``).
    name_column: str = "name"

    # -- hooks ------------------------------------------------------------------

    @abc.abstractmethod
    def axis_conditions(
        self, step: StepPlan, alias: str, prev: str | None
    ) -> list[SqlExpr]:
        """Structural conditions tying *alias* to *prev* for *step*.

        ``prev`` is None for the first step (context = document node).
        """

    @abc.abstractmethod
    def child_link(self, parent_alias: str, child_alias: str) -> SqlExpr:
        """Join condition making *child_alias* a child of *parent_alias*."""

    @abc.abstractmethod
    def same_parent(self, alias_a: str, alias_b: str) -> SqlExpr:
        """Condition that two aliases denote siblings."""

    # Table-selection hooks: single-table mappings use self.table for
    # everything; the binary mapping overrides these to prune value chains
    # and sibling counts to the relevant label partition.

    def element_table(self, name: str) -> str:
        """Relation to scan for an element hop named *name*."""
        return self.table

    def attribute_table(self, name: str) -> str:
        """Relation to scan for an attribute hop named *name*."""
        return self.table

    def text_table(self) -> str:
        """Relation holding text nodes."""
        return self.table

    def position_table(self, step: StepPlan) -> str:
        """Relation to count preceding siblings in."""
        return self.table

    def link_columns(self) -> tuple[str, str]:
        """(child-side parent column, parent-side key column).

        Used by the semi-join rewrite of single-hop equality predicates:
        ``alias.<key> IN (SELECT <parent> FROM ... WHERE value = ?)`` —
        an uncorrelated subquery the optimizer can drive from the value
        index, turning point lookups O(log n) (experiment E11).
        """
        return "parent_pre", "pre"

    # -- main translation --------------------------------------------------------

    _SIBLING_LIKE_AXES = (
        "following-sibling", "preceding-sibling", "following", "preceding",
    )

    def translate(self, doc_id: int, xpath) -> Select:
        plan = self.plan(xpath)
        query = Select()
        prev: str | None = None
        prev_step = None
        for i, step in enumerate(plan.steps):
            if (
                step.axis in self._SIBLING_LIKE_AXES
                and prev_step is not None
                and prev_step.axis == AXIS_ATTRIBUTE
            ):
                # XPath gives attributes no siblings and a peculiar
                # following set; SQL parent-links would answer wrongly.
                raise self.scheme.unsupported(
                    f"{step.axis} from an attribute context"
                )
            alias = f"n{i}"
            conditions = [Col("doc_id", alias).eq(DocParam())]
            conditions += self.axis_conditions(step, alias, prev)
            conditions += self.test_conditions(step.test, step.axis, alias)
            for predicate in step.predicates:
                conditions.append(
                    self.predicate_condition(predicate, alias, step, doc_id)
                )
            if prev is None:
                query.from_table(self.table, alias)
                for condition in conditions:
                    query.where(condition)
            else:
                query.join(self.table, alias, And(tuple(conditions)))
            prev = alias
            prev_step = step
        assert prev is not None
        query.select(Col(self.pre_column, prev))
        query.distinct = True
        query.order_by(Col(self.pre_column, prev))
        return query

    # -- node tests -----------------------------------------------------------------

    def test_conditions(
        self, test: NodeTest, axis: str, alias: str
    ) -> list[SqlExpr]:
        kind = Col("kind", alias)
        name = Col(self.name_column, alias)
        if axis == AXIS_ATTRIBUTE:
            conditions: list[SqlExpr] = [kind.eq(Raw(str(ATTRIBUTE)))]
            if isinstance(test, NameTest) and not test.is_wildcard:
                conditions.append(name.eq(Param(test.name)))
            elif isinstance(test, KindTest):
                raise self.scheme.unsupported(
                    f"{test.kind}() on the attribute axis"
                )
            return conditions
        if isinstance(test, NameTest):
            conditions = [kind.eq(Raw(str(ELEMENT)))]
            if not test.is_wildcard:
                conditions.append(name.eq(Param(test.name)))
            return conditions
        if isinstance(test, KindTest):
            return [kind.eq(Raw(str(_KIND_OF_TEST[test.kind])))]
        if isinstance(test, AnyKindTest):
            return [kind.ne(Raw(str(ATTRIBUTE)))]
        raise self.scheme.unsupported(f"node test {test}")

    # -- predicates --------------------------------------------------------------------

    def predicate_condition(
        self,
        predicate: PredicatePlan,
        alias: str,
        step: StepPlan,
        doc_id: int,
    ) -> SqlExpr:
        if isinstance(predicate, BooleanPredicate):
            operands = tuple(
                self.predicate_condition(p, alias, step, doc_id)
                for p in predicate.operands
            )
            return And(operands) if predicate.op == "and" else Or(operands)
        if isinstance(predicate, NotPredicate):
            return Not(
                self.predicate_condition(
                    predicate.operand, alias, step, doc_id
                )
            )
        if isinstance(predicate, ConstantPredicate):
            return Raw("1") if predicate.value else Raw("0")
        if isinstance(predicate, PositionPredicate):
            return self.position_condition(predicate, alias, step, doc_id)
        if isinstance(predicate, LastPredicate):
            return self.last_condition(alias, step, doc_id)
        if isinstance(predicate, CountPredicate):
            return self.count_condition(predicate, alias, doc_id)
        if isinstance(predicate, ComparisonPredicate):
            return self.value_condition(
                predicate.path, alias, doc_id,
                op=predicate.op, literal=predicate.literal,
                numeric=predicate.numeric,
            )
        if isinstance(predicate, ExistsPredicate):
            return self.value_condition(predicate.path, alias, doc_id)
        if isinstance(predicate, StringMatchPredicate):
            return self.value_condition(
                predicate.path, alias, doc_id,
                like_pattern=match_pattern(
                    predicate.function, predicate.literal
                ),
            )
        raise self.scheme.unsupported(f"predicate {type(predicate).__name__}")

    def position_condition(
        self,
        predicate: PositionPredicate,
        alias: str,
        step: StepPlan,
        doc_id: int,
    ) -> SqlExpr:
        """``[n]`` as "exactly n-1 preceding siblings match the test"."""
        sibling = f"{alias}_pos"
        count = (
            Select()
            .from_table(self.position_table(step), sibling)
            .select(Raw("COUNT(*)"))
            .where(Col("doc_id", sibling).eq(DocParam()))
            .where(self.same_parent(sibling, alias))
            .where(Col("ordinal", sibling).lt(Col("ordinal", alias)))
        )
        for condition in self.test_conditions(step.test, step.axis, sibling):
            count.where(condition)
        return ScalarSubquery(count).eq(Raw(str(predicate.position - 1)))

    def last_condition(
        self, alias: str, step: StepPlan, doc_id: int
    ) -> SqlExpr:
        """``[last()]`` — no later sibling matches the step's test."""
        sibling = f"{alias}_last"
        count = (
            Select()
            .from_table(self.position_table(step), sibling)
            .select(Raw("COUNT(*)"))
            .where(Col("doc_id", sibling).eq(DocParam()))
            .where(self.same_parent(sibling, alias))
            .where(Col("ordinal", sibling).gt(Col("ordinal", alias)))
        )
        for condition in self.test_conditions(step.test, step.axis, sibling):
            count.where(condition)
        return ScalarSubquery(count).eq(Raw("0"))

    def count_condition(
        self, predicate: CountPredicate, alias: str, doc_id: int
    ) -> SqlExpr:
        """``[count(path) op n]`` as a scalar COUNT subquery."""
        path = predicate.path
        if not path.element_names and path.target == "content":
            # count(.) is always 1 for a node context.
            count_value = 1.0
            matches = _static_compare(count_value, predicate.op,
                                      predicate.value)
            return Raw("1") if matches else Raw("0")
        sub = Select().select(Raw("COUNT(*)"))
        prev = alias
        for depth, name in enumerate(path.element_names):
            current = f"{alias}_c{depth}"
            conditions = And((
                Col("doc_id", current).eq(DocParam()),
                self.child_link(prev, current),
                Col("kind", current).eq(Raw(str(ELEMENT))),
                Col(self.name_column, current).eq(Param(name)),
            ))
            self._attach(sub, self.element_table(name), current, conditions)
            prev = current
        if path.target == "attribute":
            final = f"{alias}_ct"
            self._attach(
                sub, self.attribute_table(path.target_name or ""), final,
                And((
                    Col("doc_id", final).eq(DocParam()),
                    self.child_link(prev, final),
                    Col("kind", final).eq(Raw(str(ATTRIBUTE))),
                    Col(self.name_column, final).eq(
                        Param(path.target_name)
                    ),
                )),
            )
        elif path.target == "text":
            final = f"{alias}_ct"
            self._attach(
                sub, self.text_table(), final,
                And((
                    Col("doc_id", final).eq(DocParam()),
                    self.child_link(prev, final),
                    Col("kind", final).eq(Raw(str(TEXT))),
                )),
            )
        sql_op = "<>" if predicate.op == "!=" else predicate.op
        return Comparison(
            sql_op, ScalarSubquery(sub), Param(predicate.value)
        )

    # -- value chains ----------------------------------------------------------------------

    def value_condition(
        self,
        path: ValuePath,
        alias: str,
        doc_id: int,
        op: str | None = None,
        literal: str | None = None,
        numeric: bool = False,
        like_pattern: str | None = None,
    ) -> SqlExpr:
        """EXISTS chain along child links ending at the compared value."""
        if not path.element_names and path.target == "content":
            condition = compare_value(
                Col("content", alias), op, literal, numeric, like_pattern
            )
            if condition is None:
                return Raw("1")  # bare '.' predicate is always true
            return condition
        semi_join = self._semi_join_rewrite(
            path, alias, doc_id, op, literal, numeric, like_pattern
        )
        if semi_join is not None:
            return semi_join
        sub = Select().select(Raw("1"))
        prev = alias
        for depth, name in enumerate(path.element_names):
            current = f"{alias}_v{depth}"
            conditions = And((
                Col("doc_id", current).eq(DocParam()),
                self.child_link(prev, current),
                Col("kind", current).eq(Raw(str(ELEMENT))),
                Col(self.name_column, current).eq(Param(name)),
            ))
            self._attach(sub, self.element_table(name), current, conditions)
            prev = current
        if path.target == "content":
            condition = compare_value(
                Col("content", prev), op, literal, numeric, like_pattern
            )
            if condition is not None:
                sub.where(condition)
            return Exists(sub)
        final = f"{alias}_vt"
        if path.target == "attribute":
            conditions = And((
                Col("doc_id", final).eq(DocParam()),
                self.child_link(prev, final),
                Col("kind", final).eq(Raw(str(ATTRIBUTE))),
                Col(self.name_column, final).eq(Param(path.target_name)),
            ))
        else:  # text()
            conditions = And((
                Col("doc_id", final).eq(DocParam()),
                self.child_link(prev, final),
                Col("kind", final).eq(Raw(str(TEXT))),
            ))
        final_table = (
            self.attribute_table(path.target_name or "")
            if path.target == "attribute"
            else self.text_table()
        )
        self._attach(sub, final_table, final, conditions)
        condition = compare_value(
            Col("value", final), op, literal, numeric, like_pattern
        )
        if condition is not None:
            sub.where(condition)
        return Exists(sub)

    def _semi_join_rewrite(
        self,
        path: ValuePath,
        alias: str,
        doc_id: int,
        op: str | None,
        literal: str | None,
        numeric: bool,
        like_pattern: str | None,
    ) -> SqlExpr | None:
        """Single-hop ``=`` predicates as an *uncorrelated* IN-subquery.

        ``[@key = 'x']`` / ``[title = 'x']`` become
        ``alias.pre IN (SELECT parent FROM t WHERE value = 'x' ...)``:
        the optimizer materializes the subquery once from the value
        index instead of probing an EXISTS per candidate row — the point
        lookups of experiment E11 go from linear to logarithmic.
        Only applied when it is exactly equivalent to the EXISTS form:
        string equality, one hop.
        """
        if op != "=" or numeric or like_pattern is not None:
            return None
        parent_column, key_column = self.link_columns()
        inner = f"{alias}_sj"
        if path.target == "attribute" and not path.element_names:
            table = self.attribute_table(path.target_name or "")
            kind, name = ATTRIBUTE, path.target_name
            value_column = "value"
        elif path.target == "content" and len(path.element_names) == 1:
            table = self.element_table(path.element_names[0])
            kind, name = ELEMENT, path.element_names[0]
            value_column = "content"
        else:
            return None
        subquery = (
            Select()
            .from_table(table, inner)
            .select(Col(parent_column, inner))
            .where(Col("doc_id", inner).eq(DocParam()))
            .where(Col("kind", inner).eq(Raw(str(kind))))
            .where(Col(self.name_column, inner).eq(Param(name)))
            .where(Col(value_column, inner).eq(Param(literal or "")))
        )
        from repro.relational.sql import InSubquery

        return InSubquery(Col(key_column, alias), subquery)

    def _attach(
        self, sub: Select, table: str, alias: str, conditions: SqlExpr
    ) -> None:
        if sub.from_item is None:
            sub.from_table(table, alias)
            sub.where(conditions)
        else:
            sub.join(table, alias, conditions)
