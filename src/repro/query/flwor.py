"""FLWOR-lite: a ``for/where/return`` front end over path plans.

The tutorial's headline use case is FLWOR-style selection::

    for $b in /bib/book
    where $b/publisher = 'Springer' and $b/@year > 2000
    return $b/title

This module compiles that fragment by *normalization to a location path*
(the classic first rewriting step of XQuery processors): each ``for``
variable becomes a step chain, each ``where`` conjunct becomes a
predicate on its variable's step, and the ``return`` expression extends
the final variable.  The example compiles to::

    /bib/book[publisher = 'Springer'][@year > 2000]/title

Scope (checked, with precise errors):

* one or more ``for $v in <path>`` bindings; the first is absolute, each
  later one must start at the previously bound variable (``$v/rest``);
* ``where`` is an ``and``-separated list; each conjunct references
  exactly one bound variable and is otherwise a translatable predicate;
* ``return`` is ``$v`` or ``$v/<relative path>`` over the **last**
  variable.

Results follow XPath semantics — distinct nodes in document order (a
tuple stream with duplicates needs full FLWOR iteration, which is out of
scope and documented as such).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import XPathSyntaxError
from repro.xpath.parser import parse_xpath

_VARIABLE_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")
_FOR_RE = re.compile(r"^\s*for\s+", re.IGNORECASE | re.DOTALL)
_CLAUSE_SPLIT_RE = re.compile(
    r"\b(where|return)\b", re.IGNORECASE
)


@dataclass(frozen=True)
class FlworQuery:
    """A parsed-and-compiled FLWOR-lite query."""

    source: str
    bindings: tuple[tuple[str, str], ...]   # (variable, path fragment)
    conditions: tuple[tuple[str, str], ...]  # (variable, predicate text)
    return_variable: str
    return_path: str
    xpath: str

    def __str__(self) -> str:
        return self.xpath


def compile_flwor(source: str) -> FlworQuery:
    """Compile FLWOR-lite *source* into an equivalent XPath query."""
    for_part, where_part, return_part = _split_clauses(source)
    bindings = _parse_bindings(for_part)
    conditions = _parse_conditions(where_part, bindings)
    return_variable, return_path = _parse_return(return_part, bindings)
    xpath = _compose(bindings, conditions, return_variable, return_path)
    # Validate the composition parses as XPath before handing it out.
    parse_xpath(xpath)
    return FlworQuery(
        source=source,
        bindings=tuple(bindings),
        conditions=tuple(conditions),
        return_variable=return_variable,
        return_path=return_path,
        xpath=xpath,
    )


def run_flwor(store, doc_id: int, source: str):
    """Compile and execute a FLWOR-lite query against a store/scheme.

    *store* needs a ``query_nodes(doc_id, xpath)`` method —
    :class:`~repro.core.store.XmlRelStore` has ``query``;
    :class:`~repro.storage.base.MappingScheme` has ``query_nodes``.
    """
    compiled = compile_flwor(source)
    runner = getattr(store, "query_nodes", None) or store.query
    return runner(doc_id, compiled.xpath)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _split_clauses(source: str) -> tuple[str, str | None, str]:
    if not _FOR_RE.match(source):
        raise XPathSyntaxError("FLWOR query must start with 'for'", 0)
    body = _FOR_RE.sub("", source, count=1)
    parts = _CLAUSE_SPLIT_RE.split(body)
    # parts = [for-body, ('where'|'return'), text, ...]
    for_part = parts[0]
    where_part: str | None = None
    return_part: str | None = None
    index = 1
    while index < len(parts) - 1:
        keyword = parts[index].lower()
        text = parts[index + 1]
        if keyword == "where":
            if where_part is not None or return_part is not None:
                raise XPathSyntaxError(
                    "unexpected 'where' clause position", 0
                )
            where_part = text
        else:
            if return_part is not None:
                raise XPathSyntaxError("duplicate 'return' clause", 0)
            return_part = text
        index += 2
    if return_part is None:
        raise XPathSyntaxError("FLWOR query needs a 'return' clause", 0)
    return for_part, where_part, return_part


def _parse_bindings(for_part: str) -> list[tuple[str, str]]:
    bindings: list[tuple[str, str]] = []
    for raw in _split_top_level_commas(for_part):
        match = re.match(
            r"^\s*\$([A-Za-z_][A-Za-z0-9_]*)\s+in\s+(.+?)\s*$",
            raw,
            re.DOTALL | re.IGNORECASE,
        )
        if not match:
            raise XPathSyntaxError(
                f"malformed for-binding: {raw.strip()!r}", 0
            )
        variable, path = match.group(1), match.group(2).strip()
        if not bindings:
            if path.startswith("$"):
                raise XPathSyntaxError(
                    "the first binding must be an absolute path", 0
                )
        else:
            previous = bindings[-1][0]
            prefix = f"${previous}/"
            if not path.startswith(prefix):
                raise XPathSyntaxError(
                    f"binding ${variable} must start at ${previous}/", 0
                )
            path = path[len(prefix):]
        if any(variable == seen for seen, __ in bindings):
            raise XPathSyntaxError(f"duplicate variable ${variable}", 0)
        bindings.append((variable, path))
    if not bindings:
        raise XPathSyntaxError("no for-bindings found", 0)
    return bindings


def _split_top_level_commas(text: str) -> list[str]:
    """Split on commas outside brackets/quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for ch in text:
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _parse_conditions(
    where_part: str | None, bindings: list[tuple[str, str]]
) -> list[tuple[str, str]]:
    if where_part is None or not where_part.strip():
        return []
    known = {variable for variable, __ in bindings}
    conditions: list[tuple[str, str]] = []
    for conjunct in _split_top_level_and(where_part):
        used = set(_VARIABLE_RE.findall(conjunct))
        if not used:
            raise XPathSyntaxError(
                f"condition references no variable: {conjunct.strip()!r}", 0
            )
        if len(used) > 1:
            raise XPathSyntaxError(
                "conditions joining two variables are not supported "
                f"in FLWOR-lite: {conjunct.strip()!r}", 0
            )
        variable = used.pop()
        if variable not in known:
            raise XPathSyntaxError(f"unbound variable ${variable}", 0)
        predicate = _strip_variable(conjunct.strip(), variable)
        conditions.append((variable, predicate))
    return conditions


def _split_top_level_and(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if quote:
            if ch == quote:
                quote = None
            current.append(ch)
            i += 1
            continue
        if ch in "'\"":
            quote = ch
        elif ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif depth == 0 and re.match(
            r"\band\b", text[i:i + 4], re.IGNORECASE
        ):
            parts.append("".join(current))
            current = []
            i += 3
            continue
        current.append(ch)
        i += 1
    parts.append("".join(current))
    return [p for p in parts if p.strip()]


def _strip_variable(condition: str, variable: str) -> str:
    """Rewrite ``$v/path op lit`` to the predicate text ``path op lit``
    (and bare ``$v`` references to ``.``)."""

    def replace(match: re.Match) -> str:
        rest_start = match.end()
        if rest_start < len(condition) and condition[rest_start] == "/":
            return ""  # "$v/path" -> "path" (consume the slash below)
        return "."

    out = []
    index = 0
    for match in re.finditer(rf"\${variable}\b", condition):
        out.append(condition[index:match.start()])
        follows_slash = (
            match.end() < len(condition) and condition[match.end()] == "/"
        )
        if follows_slash:
            index = match.end() + 1  # drop "$v/"
        else:
            out.append(".")
            index = match.end()
    out.append(condition[index:])
    return "".join(out).strip()


def _parse_return(
    return_part: str, bindings: list[tuple[str, str]]
) -> tuple[str, str]:
    text = return_part.strip()
    match = re.match(
        r"^\$([A-Za-z_][A-Za-z0-9_]*)(/.*)?$", text, re.DOTALL
    )
    if not match:
        raise XPathSyntaxError(
            f"return must be $var or $var/path, got {text!r}", 0
        )
    variable = match.group(1)
    last_variable = bindings[-1][0]
    if variable != last_variable:
        raise XPathSyntaxError(
            f"return must use the last bound variable ${last_variable}", 0
        )
    relative = (match.group(2) or "").lstrip("/")
    return variable, relative


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------


def _compose(
    bindings: list[tuple[str, str]],
    conditions: list[tuple[str, str]],
    return_variable: str,
    return_path: str,
) -> str:
    predicates_of: dict[str, list[str]] = {}
    for variable, predicate in conditions:
        predicates_of.setdefault(variable, []).append(predicate)
    parts: list[str] = []
    for variable, fragment in bindings:
        part = fragment
        for predicate in predicates_of.get(variable, []):
            part += f"[{predicate}]"
        parts.append(part)
    xpath = parts[0]
    for part in parts[1:]:
        xpath = f"{xpath}/{part}"
    if return_path:
        xpath = f"{xpath}/{return_path}"
    return xpath
