"""Base class shared by all per-scheme XPath→SQL translators."""

from __future__ import annotations

import abc

from repro.query.plan import PathPlan, plan_path
from repro.relational.sql import Select, Union, WithQuery
from repro.xpath.ast import BinaryOp, Expr, LocationPath
from repro.xpath.parser import parse_xpath

Renderable = Select | Union | WithQuery


def _union_arms(expr: Expr) -> list[Expr] | None:
    """Flatten a top-level ``|`` expression into its arms (None if the
    expression is not a union)."""
    if not isinstance(expr, BinaryOp) or expr.op != "|":
        return None
    arms: list[Expr] = []
    stack = [expr.left, expr.right]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "|":
            stack.extend((node.left, node.right))
        else:
            arms.append(node)
    return arms


class BaseTranslator(abc.ABC):
    """Translate the XPath subset to SQL over one scheme's relations.

    Concrete translators implement :meth:`translate`; everything else
    (planning, rendering, execution, join counting) is shared.
    """

    def __init__(self, scheme) -> None:
        self.scheme = scheme
        self.db = scheme.db

    def plan(self, xpath: str | LocationPath | PathPlan) -> PathPlan:
        """Normalize *xpath* (string, AST, or already a plan)."""
        if isinstance(xpath, PathPlan):
            return xpath
        return plan_path(xpath, scheme=self.scheme.name)

    @abc.abstractmethod
    def translate(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> Renderable:
        """Build the SQL statement answering *xpath* over document
        *doc_id*.  The statement's first output column is the matching
        node's ``pre`` id; rows arrive in document order, distinct."""

    def sql_for(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> tuple[str, list]:
        """The rendered ``(sql, params)`` for *xpath*."""
        return self.translate(doc_id, xpath).render()

    def query_pres(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> list[int]:
        """Execute the translated query; return matching ``pre`` ids.

        Top-level unions (``p1 | p2``) are supported for every scheme by
        translating each arm separately and merging the id sets — the
        XPath union semantics (distinct, document order) are exactly a
        sorted set merge on the shared ids.

        Under an enabled :class:`~repro.obs.trace.Tracer` the run is
        recorded as a ``query`` span with ``translate`` and ``execute``
        children (individual ``sql.statement`` spans nest under
        ``execute``).
        """
        tracer = self.db.tracer
        with tracer.span("query") as query_span:
            if query_span:
                query_span.set(
                    scheme=self.scheme.name, xpath=str(xpath)
                )
                tracer.metrics.counter("query.executed").inc()
            if isinstance(xpath, str):
                arms = _union_arms(parse_xpath(xpath))
                if arms is not None:
                    merged: set[int] = set()
                    for arm in arms:
                        merged.update(self.query_pres(doc_id, arm))
                    if query_span:
                        query_span.set(
                            rows=len(merged), union_arms=len(arms)
                        )
                    return sorted(merged)
            with tracer.span("translate") as translate_span:
                statement = self.translate(doc_id, xpath)
                sql, params = statement.render()
                if translate_span:
                    translate_span.set(
                        sql_length=len(sql), joins=statement.join_count
                    )
            with tracer.span("execute"):
                rows = self.db.query(sql, params)
            if query_span:
                query_span.set(rows=len(rows))
            return [row[0] for row in rows]

    def join_count(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> int:
        """Structural join count of the translated statement (metric of
        experiment E8)."""
        return self.translate(doc_id, xpath).join_count
