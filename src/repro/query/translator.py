"""Base class shared by all per-scheme XPath→SQL translators."""

from __future__ import annotations

import abc

from repro.errors import PlanLintError, XmlRelError
from repro.query.plan import PathPlan, plan_path
from repro.relational.plancache import CachedPlan
from repro.relational.sql import Select, Union, WithQuery, bind_doc_id
from repro.xpath.ast import BinaryOp, Expr, LocationPath
from repro.xpath.parser import parse_xpath

Renderable = Select | Union | WithQuery


def _union_arms(expr: Expr) -> list[Expr] | None:
    """Flatten a top-level ``|`` expression into its arms (None if the
    expression is not a union)."""
    if not isinstance(expr, BinaryOp) or expr.op != "|":
        return None
    arms: list[Expr] = []
    stack = [expr.left, expr.right]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "|":
            stack.extend((node.left, node.right))
        else:
            arms.append(node)
    return arms


class BaseTranslator(abc.ABC):
    """Translate the XPath subset to SQL over one scheme's relations.

    Concrete translators implement :meth:`translate`; everything else
    (planning, caching, rendering, execution, join counting) is shared.

    Translation output is document-independent: translators emit the
    :class:`~repro.relational.sql.DocParam` placeholder instead of a
    baked document id, so the rendered ``(sql, params)`` pair is a
    reusable template.  String XPaths are cached in the database's
    :class:`~repro.relational.plancache.PlanCache` keyed by
    ``(scheme, plan_epoch, xpath)`` — repeated queries skip
    parse → plan → AST → render entirely.
    """

    def __init__(self, scheme) -> None:
        self.scheme = scheme
        self.db = scheme.db

    def plan(self, xpath: str | LocationPath | PathPlan) -> PathPlan:
        """Normalize *xpath* (string, AST, or already a plan)."""
        if isinstance(xpath, PathPlan):
            return xpath
        return plan_path(xpath, scheme=self.scheme.name)

    @abc.abstractmethod
    def translate(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> Renderable:
        """Build the SQL statement answering *xpath* over document
        *doc_id*.  The statement's first output column is the matching
        node's ``pre`` id; rows arrive in document order, distinct.

        The document id is emitted as the
        :class:`~repro.relational.sql.DocParam` placeholder, so the
        rendered statement is reusable across documents (the *doc_id*
        argument is kept for API symmetry and scheme-specific checks).
        """

    def sql_for(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> tuple[str, list]:
        """The rendered ``(sql, params)`` for *xpath*, with the document
        id bound."""
        sql, params = self.translate(doc_id, xpath).render()
        return sql, bind_doc_id(params, doc_id)

    # -- plan caching -------------------------------------------------------------

    def _render_plans(self, statements) -> tuple[CachedPlan, ...]:
        """Render *statements* to cached-plan entries, linting each one.

        Under lint mode ``default`` the plan linter's diagnostics ride
        along inside the :class:`CachedPlan`; ``strict`` raises
        :class:`~repro.errors.PlanLintError` when any diagnostic is
        error-severity; ``off`` skips the walk entirely.
        """
        lint_mode = self.db.lint_mode
        catalog = None
        if lint_mode != "off":
            # Deferred import: repro.analysis depends on repro.query.plan.
            from repro.analysis.sqllint import lint_statement

            catalog = self.db.schema_catalog()
        plans = []
        for statement in statements:
            sql, params = statement.render()
            diagnostics = ()
            if catalog is not None:
                # Rendering is deterministic, so the SQL text (plus the
                # schema generation) is a sound memo key: re-translating
                # an evicted plan never re-walks an already-linted tree.
                memo = self.db.lint_memo
                memo_key = (catalog.schema_version, sql)
                diagnostics = memo.get(memo_key)
                if diagnostics is None:
                    diagnostics = lint_statement(statement, catalog)
                    if len(memo) >= 1024:
                        memo.clear()
                    memo[memo_key] = diagnostics
            plans.append(
                CachedPlan(
                    sql, tuple(params), statement.join_count, diagnostics
                )
            )
        plans = tuple(plans)
        if lint_mode == "strict":
            errors = [
                diagnostic
                for plan in plans
                for diagnostic in plan.diagnostics
                if diagnostic.is_error
            ]
            if errors:
                raise PlanLintError(errors)
        return plans

    def plans_for(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> tuple[tuple[CachedPlan, ...], bool]:
        """The executable plans for *xpath* plus whether they came from
        the cache.

        A plain path yields one plan; a top-level union (``p1 | p2``)
        yields one plan per arm.  Only string XPaths are cached (ASTs
        and pre-built plans are already past the expensive phase).  The
        cache key includes the scheme's ``plan_epoch`` so schemes whose
        translations depend on stored data invalidate by bumping it.
        """
        cache = self.db.plan_cache
        tracer = self.db.tracer
        key = None
        if isinstance(xpath, str):
            key = (self.scheme.name, self.scheme.plan_epoch, xpath)
            plans = cache.get(key)
            if plans is not None:
                if tracer.enabled:
                    tracer.metrics.counter("plan_cache.hits").inc()
                return plans, True
            if tracer.enabled:
                tracer.metrics.counter("plan_cache.misses").inc()
        with tracer.span("translate") as translate_span:
            arms = _union_arms(parse_xpath(xpath)) if key else None
            if arms is None:
                statements = [self.translate(doc_id, xpath)]
            else:
                statements = [self.translate(doc_id, arm) for arm in arms]
            plans = self._render_plans(statements)
            if translate_span:
                translate_span.set(
                    sql_length=sum(len(p.sql) for p in plans),
                    joins=sum(p.join_count for p in plans),
                )
                diagnostics = [
                    d.format() for p in plans for d in p.diagnostics
                ]
                if diagnostics:
                    translate_span.set(diagnostics=diagnostics)
        if key is not None:
            cache.put(key, plans)
            if tracer.enabled:
                tracer.metrics.gauge("plan_cache.size").set(len(cache))
        return plans, False

    def cached_translation(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> tuple[CachedPlan, bool]:
        """The single cached plan for a non-union *xpath* plus whether it
        was a cache hit (top-level unions raise, as with
        :meth:`translate`)."""
        plans, hit = self.plans_for(doc_id, xpath)
        if len(plans) > 1:
            # Replicate translate()'s behaviour for union expressions:
            # planning a union as a single statement raises.
            self.translate(doc_id, xpath)
        return plans[0], hit

    # -- static analysis ----------------------------------------------------------

    def _execution_plans(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> tuple[tuple[CachedPlan, ...], bool]:
        """Like :meth:`plans_for`, but routed through the scheme's
        :class:`~repro.analysis.xpathlint.XPathAnalyzer` when one is
        attached with expansion enabled: a ``//`` path over a
        non-recursive DTD compiles into one plan per concrete child
        chain (executed as union arms) instead of a descendant scan.

        Expanded translations cache under their own key (the plain key
        still serves :meth:`cached_translation`/``explain``, which
        promise a single statement); "no expansion applies" caches as an
        empty tuple so the analyzer runs once per (scheme, epoch, path).
        """
        analyzer = getattr(self.scheme, "analyzer", None)
        if (
            analyzer is None
            or not analyzer.expansion_enabled
            or not isinstance(xpath, str)
        ):
            return self.plans_for(doc_id, xpath)
        cache = self.db.plan_cache
        key = (self.scheme.name, self.scheme.plan_epoch, xpath, "expand")
        plans = cache.get(key)
        if plans is not None:
            if not plans:  # cached "nothing to expand" sentinel
                return self.plans_for(doc_id, xpath)
            return plans, True
        try:
            expanded = analyzer.expand(xpath)
        except XmlRelError:
            expanded = None
        if not expanded:
            cache.put(key, ())
            return self.plans_for(doc_id, xpath)
        tracer = self.db.tracer
        with tracer.span("translate") as translate_span:
            statements = [self.translate(doc_id, p) for p in expanded]
            plans = self._render_plans(statements)
            if translate_span:
                translate_span.set(
                    sql_length=sum(len(p.sql) for p in plans),
                    joins=sum(p.join_count for p in plans),
                    expanded_arms=len(plans),
                )
        if tracer.enabled:
            tracer.metrics.counter("analysis.expanded_queries").inc()
        cache.put(key, plans)
        return plans, False

    def _provably_empty(
        self, xpath: str | LocationPath | PathPlan
    ) -> bool:
        """True when the attached analyzer proves *xpath* matches
        nothing (the zero-statement short-circuit)."""
        analyzer = getattr(self.scheme, "analyzer", None)
        if analyzer is None:
            return False
        return analyzer.satisfiable(xpath) is False

    # -- execution ----------------------------------------------------------------

    def query_pres(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> list[int]:
        """Execute the translated query; return matching ``pre`` ids.

        Top-level unions (``p1 | p2``) are supported for every scheme by
        translating each arm separately and merging the id sets — the
        XPath union semantics (distinct, document order) are exactly a
        sorted set merge on the shared ids.  The whole union counts as
        *one* executed query: each arm runs as a ``query.arm`` child
        span, not its own top-level ``query``.

        Under an enabled :class:`~repro.obs.trace.Tracer` the run is
        recorded as a ``query`` span with ``translate`` and ``execute``
        children (individual ``sql.statement`` spans nest under
        ``execute``); a cache hit skips the ``translate`` child.

        When the scheme has an attached
        :class:`~repro.analysis.xpathlint.XPathAnalyzer` that proves the
        path unsatisfiable against the DTD/path summary, the query
        short-circuits to an empty result with zero SQL statements
        executed.
        """
        tracer = self.db.tracer
        with tracer.span("query") as query_span:
            if query_span:
                query_span.set(
                    scheme=self.scheme.name, xpath=str(xpath)
                )
                tracer.metrics.counter("query.executed").inc()
            if self._provably_empty(xpath):
                if query_span:
                    query_span.set(rows=0, unsatisfiable=True)
                if tracer.enabled:
                    tracer.metrics.counter("analysis.unsat_queries").inc()
                return []
            plans, cache_hit = self._execution_plans(doc_id, xpath)
            if len(plans) == 1:
                plan = plans[0]
                with tracer.span("execute"):
                    rows = self.db.query(
                        plan.sql, bind_doc_id(plan.params, doc_id)
                    )
                if query_span:
                    query_span.set(rows=len(rows), cache_hit=cache_hit)
                return [row[0] for row in rows]
            merged: set[int] = set()
            for index, plan in enumerate(plans):
                with tracer.span("query.arm") as arm_span:
                    if arm_span:
                        arm_span.set(arm=index)
                    with tracer.span("execute"):
                        rows = self.db.query(
                            plan.sql, bind_doc_id(plan.params, doc_id)
                        )
                    if arm_span:
                        arm_span.set(rows=len(rows))
                    merged.update(row[0] for row in rows)
            if query_span:
                query_span.set(
                    rows=len(merged),
                    union_arms=len(plans),
                    cache_hit=cache_hit,
                )
            return sorted(merged)

    def join_count(
        self, doc_id: int, xpath: str | LocationPath | PathPlan
    ) -> int:
        """Structural join count of the translated statement (metric of
        experiment E8)."""
        return self.translate(doc_id, xpath).join_count
