"""DBLP-style bibliography generator.

A flat, wide document — thousands of shallow records under one root —
the structural opposite of the auction data's deep nesting.  This shape
exercises label-selective access (binary's partition pruning) and the
point-lookup experiment E11 (find the record with a given key).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads import rng as words
from repro.xml.dom import Document, Element
from repro.xml.dtd import Dtd, parse_dtd

DBLP_DTD_TEXT = """
<!ELEMENT dblp (article | inproceedings | book)*>
<!ELEMENT article (author*, title, year, journal, pages?, ee?)>
<!ATTLIST article key CDATA #REQUIRED>
<!ELEMENT inproceedings (author*, title, year, booktitle, pages?, ee?)>
<!ATTLIST inproceedings key CDATA #REQUIRED>
<!ELEMENT book (author*, title, year, publisher, isbn?)>
<!ATTLIST book key CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT ee (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT isbn (#PCDATA)>
"""


def dblp_dtd() -> Dtd:
    """The bibliography DTD."""
    return parse_dtd(DBLP_DTD_TEXT, root_name="dblp")


def generate_dblp(record_count: int = 1000, seed: int = 7) -> Document:
    """Generate a bibliography with *record_count* records."""
    if record_count < 1:
        raise WorkloadError("record_count must be at least 1")
    rng = words.make_rng(seed)
    document = Document()
    dblp = document.append_child(Element("dblp"))
    for index in range(record_count):
        kind = rng.choices(
            ("article", "inproceedings", "book"), weights=(5, 4, 1)
        )[0]
        dblp.append_child(_make_record(rng, kind, index))
    return document


def _leaf(tag: str, text: str) -> Element:
    element = Element(tag)
    element.append_text(text)
    return element


def _make_record(rng, kind: str, index: int) -> Element:
    record = Element(kind, [("key", f"{kind}/{index}")])
    for _ in range(rng.randint(1, 4)):
        first, last = words.person_name(rng)
        record.append_child(_leaf("author", f"{first} {last}"))
    record.append_child(_leaf("title", words.title_text(rng) + "."))
    record.append_child(_leaf("year", str(rng.randint(1975, 2003))))
    if kind == "article":
        record.append_child(_leaf("journal", rng.choice(words.JOURNALS)))
    elif kind == "inproceedings":
        record.append_child(
            _leaf("booktitle", rng.choice(words.CONFERENCES))
        )
    else:
        record.append_child(_leaf("publisher", rng.choice(words.PUBLISHERS)))
        if rng.random() < 0.6:
            record.append_child(
                _leaf("isbn", f"{rng.randint(0, 9)}-{rng.randint(1000, 9999)}"
                              f"-{rng.randint(1000, 9999)}-{rng.randint(0, 9)}")
            )
    if kind != "book":
        if rng.random() < 0.7:
            start = rng.randint(1, 500)
            record.append_child(
                _leaf("pages", f"{start}-{start + rng.randint(5, 30)}")
            )
        if rng.random() < 0.5:
            record.append_child(
                _leaf("ee", f"db/{kind}/{index}.html")
            )
    return record
