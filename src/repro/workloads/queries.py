"""Canonical query sets for the benchmark suite.

``AUCTION_QUERIES`` (Q1–Q16) spans the axes of the tutorial's comparison:
path depth, descendant steps, value predicates of varying selectivity,
positional access, existence tests, and string matching.  Each entry
records the shape category the experiments group by.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query."""

    key: str
    xpath: str
    category: str
    description: str


AUCTION_QUERIES: tuple[QuerySpec, ...] = (
    QuerySpec(
        "Q1", "/site/regions/africa/item/name", "path",
        "Four-step child path into one region",
    ),
    QuerySpec(
        "Q2", "/site/people/person/name", "path",
        "Names of all registered people",
    ),
    QuerySpec(
        "Q3", "/site/open_auctions/open_auction/bidder/increase", "path",
        "Five-step child path over set-valued bidders",
    ),
    QuerySpec(
        "Q4", "//item/name", "descendant",
        "Item names anywhere (region-independent)",
    ),
    QuerySpec(
        "Q5", "//bidder//date", "descendant",
        "Dates below bidders, double descendant",
    ),
    QuerySpec(
        "Q6", "//name", "descendant",
        "Every name element (shared label: items, people, categories)",
    ),
    QuerySpec(
        "Q7", "/site/people/person[@id = 'person0']/name", "point",
        "Point lookup by id attribute",
    ),
    QuerySpec(
        "Q8", "/site/open_auctions/open_auction[initial > 150]/current",
        "value",
        "Numeric predicate on initial price",
    ),
    QuerySpec(
        "Q9", "/site/people/person[address/city = 'Berlin']/name", "value",
        "Nested-path value predicate",
    ),
    QuerySpec(
        "Q10", "//person[profile/@income > 80000]/name", "value",
        "Descendant step plus attribute comparison",
    ),
    QuerySpec(
        "Q11", "/site/open_auctions/open_auction[bidder]/@id", "exists",
        "Auctions with at least one bid",
    ),
    QuerySpec(
        "Q12", "/site/people/person[not(address)]/name", "exists",
        "People without an address",
    ),
    QuerySpec(
        "Q13", "/site/open_auctions/open_auction[1]/itemref/@item",
        "position",
        "First open auction's item reference",
    ),
    QuerySpec(
        "Q14", "/site/open_auctions/open_auction/bidder[2]/increase",
        "position",
        "Second bid of each auction",
    ),
    QuerySpec(
        "Q15", "//item[contains(description, 'vintage')]/name", "string",
        "Substring match on descriptions",
    ),
    QuerySpec(
        "Q16", "/site/categories/category/name/text()", "path",
        "Text nodes of category names",
    ),
)


DBLP_QUERIES: tuple[QuerySpec, ...] = (
    QuerySpec("D1", "/dblp/article/title", "path", "Article titles"),
    QuerySpec(
        "D2", "/dblp/article[year = '2000']/title", "value",
        "Articles from one year",
    ),
    QuerySpec(
        "D3", "//inproceedings[booktitle = 'VLDB']/title", "value",
        "Papers of one conference",
    ),
    QuerySpec(
        "D4", "/dblp/*[@key = 'article/1']/title", "point",
        "Point lookup by record key",
    ),
    QuerySpec(
        "D5", "//author", "descendant", "All author elements",
    ),
    QuerySpec(
        "D6", "/dblp/book[contains(title, 'Data')]/publisher", "string",
        "Books with 'Data' in the title",
    ),
)


def queries_by_category(
    specs: tuple[QuerySpec, ...], category: str
) -> list[QuerySpec]:
    """The subset of *specs* in *category*."""
    return [spec for spec in specs if spec.category == category]
