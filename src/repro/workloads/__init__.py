"""Deterministic synthetic workloads.

The datasets the surveyed papers evaluate on (XMark auctions, DBLP) are
reproduced as parameterized generators with the same structural skeleton:
document shape, fanout, label distribution and value domains drive every
experiment, and all generators are seeded for exact reproducibility.
"""

from repro.workloads.auction import auction_dtd, generate_auction
from repro.workloads.dblp import dblp_dtd, generate_dblp
from repro.workloads.treegen import TreeProfile, generate_tree
from repro.workloads.queries import (
    AUCTION_QUERIES,
    DBLP_QUERIES,
    QuerySpec,
)

__all__ = [
    "AUCTION_QUERIES",
    "DBLP_QUERIES",
    "QuerySpec",
    "TreeProfile",
    "auction_dtd",
    "dblp_dtd",
    "generate_auction",
    "generate_dblp",
    "generate_tree",
]
