"""XMark-style auction document generator.

Reproduces the structural skeleton of the XMark benchmark (Schmidt et
al., VLDB 2002) at a configurable scale factor: a ``site`` with regions
of items, registered people, open auctions with bidder lists, closed
auctions and a category tree.  Shapes that drive the experiments:

* deep paths (``/site/regions/africa/item/description``),
* set-valued children of wildly varying fanout (``bidder*``),
* value-selective attributes and leaves (ids, prices, dates),
* a shared element (``name`` under person *and* category) so the
  inlining strategies actually diverge.

``scale_factor=1.0`` yields roughly 60k nodes; the benchmarks use 0.05 to
0.4.  Everything is deterministic in (scale_factor, seed).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads import rng as words
from repro.xml.dom import Document, Element
from repro.xml.dtd import Dtd, parse_dtd

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

AUCTION_DTD_TEXT = """
<!ELEMENT site (regions, categories, people, open_auctions,
                closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, payment, description,
                shipping)>
<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT categories (category*)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, profile?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT profile (interest*, education?)>
<!ATTLIST profile income CDATA #IMPLIED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, bidder*, current, itemref, seller)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date, personref, increase)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT price (#PCDATA)>
"""


def auction_dtd() -> Dtd:
    """The auction DTD (for the inlining scheme and validation)."""
    return parse_dtd(AUCTION_DTD_TEXT, root_name="site")


def generate_auction(scale_factor: float = 0.1, seed: int = 42) -> Document:
    """Generate one auction document at *scale_factor*."""
    if scale_factor <= 0:
        raise WorkloadError("scale_factor must be positive")
    rng = words.make_rng(seed)
    n_people = max(2, int(500 * scale_factor))
    n_items = max(2, int(400 * scale_factor))
    n_open = max(1, int(240 * scale_factor))
    n_closed = max(1, int(120 * scale_factor))
    n_categories = max(1, int(50 * scale_factor))

    document = Document()
    site = document.append_child(Element("site"))

    regions = site.append_child(Element("regions"))
    items_per_region = _split(n_items, len(REGIONS), rng)
    item_counter = 0
    for region_name, count in zip(REGIONS, items_per_region):
        region = regions.append_child(Element(region_name))
        for _ in range(count):
            region.append_child(_make_item(rng, item_counter))
            item_counter += 1

    categories = site.append_child(Element("categories"))
    for i in range(n_categories):
        category = categories.append_child(
            Element("category", [("id", f"category{i}")])
        )
        category.append_child(_leaf("name", words.title_text(rng)))
        category.append_child(
            _leaf("description", words.sentence(rng, 6, 20))
        )

    people = site.append_child(Element("people"))
    for i in range(n_people):
        people.append_child(_make_person(rng, i, n_categories))

    open_auctions = site.append_child(Element("open_auctions"))
    for i in range(n_open):
        open_auctions.append_child(
            _make_open_auction(rng, i, n_people, item_counter)
        )

    closed_auctions = site.append_child(Element("closed_auctions"))
    for _ in range(n_closed):
        closed_auctions.append_child(
            _make_closed_auction(rng, n_people, item_counter)
        )
    return document


def _split(total: int, buckets: int, rng) -> list[int]:
    """Randomly split *total* into *buckets* non-negative parts."""
    weights = [rng.random() + 0.2 for _ in range(buckets)]
    scale = total / sum(weights)
    parts = [int(w * scale) for w in weights]
    while sum(parts) < total:
        parts[rng.randrange(buckets)] += 1
    return parts


def _leaf(tag: str, text: str) -> Element:
    element = Element(tag)
    if text:
        element.append_text(text)
    return element


def _make_item(rng, index: int) -> Element:
    item = Element("item", [("id", f"item{index}")])
    if rng.random() < 0.1:
        item.set_attribute("featured", "yes")
    item.append_child(_leaf("location", rng.choice(words.COUNTRIES)))
    item.append_child(_leaf("quantity", str(rng.randint(1, 10))))
    item.append_child(_leaf("name", words.title_text(rng)))
    item.append_child(
        _leaf("payment", rng.choice(("Cash", "Creditcard", "Check")))
    )
    item.append_child(_leaf("description", words.sentence(rng, 8, 30)))
    item.append_child(_leaf("shipping", rng.choice(
        ("Will ship internationally", "Buyer pays fixed shipping charges")
    )))
    return item


def _make_person(rng, index: int, n_categories: int) -> Element:
    person = Element("person", [("id", f"person{index}")])
    first, last = words.person_name(rng)
    person.append_child(_leaf("name", f"{first} {last}"))
    person.append_child(
        _leaf("emailaddress", f"mailto:{first}.{last}{index}@example.org")
    )
    if rng.random() < 0.5:
        person.append_child(
            _leaf("phone", f"+{rng.randint(1, 99)} {rng.randint(100, 999)} "
                           f"{rng.randint(1000, 9999)}")
        )
    if rng.random() < 0.6:
        address = person.append_child(Element("address"))
        address.append_child(
            _leaf("street", f"{rng.randint(1, 99)} {rng.choice(words.WORDS)} St")
        )
        address.append_child(_leaf("city", rng.choice(words.CITIES)))
        address.append_child(_leaf("country", rng.choice(words.COUNTRIES)))
    if rng.random() < 0.7:
        profile = person.append_child(Element("profile"))
        profile.set_attribute("income", words.money(rng, 9000, 120000))
        for _ in range(rng.randint(0, 4)):
            interest = profile.append_child(Element("interest"))
            interest.set_attribute(
                "category", f"category{rng.randrange(max(1, n_categories))}"
            )
        if rng.random() < 0.5:
            profile.append_child(
                _leaf("education", rng.choice(
                    ("High School", "College", "Graduate School")
                ))
            )
    return person


def _make_open_auction(rng, index: int, n_people: int, n_items: int) -> Element:
    auction = Element("open_auction", [("id", f"open_auction{index}")])
    initial = rng.uniform(1, 200)
    auction.append_child(_leaf("initial", f"{initial:.2f}"))
    current = initial
    for _ in range(rng.randint(0, 8)):
        bidder = auction.append_child(Element("bidder"))
        bidder.append_child(_leaf("date", words.date_text(rng)))
        personref = bidder.append_child(Element("personref"))
        personref.set_attribute(
            "person", f"person{rng.randrange(max(1, n_people))}"
        )
        increase = rng.uniform(1.5, 30.0)
        current += increase
        bidder.append_child(_leaf("increase", f"{increase:.2f}"))
    auction.append_child(_leaf("current", f"{current:.2f}"))
    itemref = auction.append_child(Element("itemref"))
    itemref.set_attribute("item", f"item{rng.randrange(max(1, n_items))}")
    seller = auction.append_child(Element("seller"))
    seller.set_attribute("person", f"person{rng.randrange(max(1, n_people))}")
    return auction


def _make_closed_auction(rng, n_people: int, n_items: int) -> Element:
    auction = Element("closed_auction")
    seller = auction.append_child(Element("seller"))
    seller.set_attribute("person", f"person{rng.randrange(max(1, n_people))}")
    buyer = auction.append_child(Element("buyer"))
    buyer.set_attribute("person", f"person{rng.randrange(max(1, n_people))}")
    itemref = auction.append_child(Element("itemref"))
    itemref.set_attribute("item", f"item{rng.randrange(max(1, n_items))}")
    auction.append_child(_leaf("price", words.money(rng)))
    auction.append_child(_leaf("date", words.date_text(rng)))
    auction.append_child(_leaf("quantity", str(rng.randint(1, 5))))
    return auction
