"""Deterministic random helpers shared by the generators."""

from __future__ import annotations

import random

FIRST_NAMES = (
    "Ada", "Alan", "Barbara", "Claude", "Donald", "Edgar", "Frances",
    "Grace", "Hedy", "Ivan", "Jim", "Kathleen", "Leslie", "Michael",
    "Niklaus", "Ole", "Peter", "Radia", "Serge", "Tim",
)

LAST_NAMES = (
    "Lovelace", "Turing", "Liskov", "Shannon", "Knuth", "Codd", "Allen",
    "Hopper", "Lamarr", "Sutherland", "Gray", "Booth", "Lamport",
    "Stonebraker", "Wirth", "Madsen", "Chen", "Perlman", "Abiteboul",
    "BernersLee",
)

CITIES = (
    "Amsterdam", "Berlin", "Chicago", "Dresden", "Edinburgh", "Florence",
    "Geneva", "Heidelberg", "Istanbul", "Jena", "Kyoto", "Lisbon",
)

COUNTRIES = (
    "Netherlands", "Germany", "USA", "Scotland", "Italy", "Switzerland",
    "Turkey", "Japan", "Portugal", "France",
)

WORDS = (
    "auction", "bargain", "classic", "deluxe", "estate", "fine", "grand",
    "heritage", "imperial", "jubilee", "keepsake", "legacy", "modern",
    "noble", "ornate", "premium", "quaint", "rustic", "superb", "vintage",
    "amber", "bronze", "copper", "dappled", "ebony", "fuchsia", "golden",
)

JOURNALS = (
    "VLDB Journal", "TODS", "SIGMOD Record", "TKDE", "Information Systems",
    "Data Engineering Bulletin",
)

CONFERENCES = (
    "VLDB", "SIGMOD", "ICDE", "EDBT", "PODS", "WWW",
)

PUBLISHERS = (
    "Addison-Wesley", "Morgan Kaufmann", "Springer", "Prentice Hall",
    "MIT Press", "O'Reilly",
)


def make_rng(seed: int) -> random.Random:
    """A dedicated :class:`random.Random` (never the global state)."""
    return random.Random(seed)


def person_name(rng: random.Random) -> tuple[str, str]:
    return rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)


def sentence(rng: random.Random, min_words: int = 4, max_words: int = 12) -> str:
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(WORDS) for _ in range(count))


def title_text(rng: random.Random) -> str:
    return sentence(rng, 2, 6).title()


def money(rng: random.Random, low: float = 1.0, high: float = 500.0) -> str:
    return f"{rng.uniform(low, high):.2f}"


def date_text(rng: random.Random, start_year: int = 1998,
              end_year: int = 2003) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"{year:04d}-{month:02d}-{day:02d}"
