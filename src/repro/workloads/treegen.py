"""Parameterized random tree generator.

Used by the property-based tests (random documents × random queries
against all schemes) and by the selectivity experiment E5, where the
value domain size directly controls predicate selectivity.

Text is only ever placed in *leaf* elements: the SQL translators
implement value predicates over text-only content (as every surveyed
mapping does), so keeping the generator inside that fragment makes the
differential tests meaningful rather than vacuously unsupported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.rng import make_rng
from repro.xml.dom import Document, Element


@dataclass(frozen=True)
class TreeProfile:
    """Shape parameters for one random tree.

    ``labels`` draw element names, ``attributes`` attribute names, and
    ``value_domain`` the number of distinct leaf/attribute values — the
    selectivity knob (larger domain = more selective equality predicate).
    """

    depth: int = 4
    min_fanout: int = 1
    max_fanout: int = 4
    labels: tuple[str, ...] = ("a", "b", "c", "d")
    attributes: tuple[str, ...] = ("k", "m")
    attribute_probability: float = 0.4
    leaf_text_probability: float = 0.8
    value_domain: int = 10

    def validate(self) -> None:
        if self.depth < 1:
            raise WorkloadError("depth must be at least 1")
        if not (0 < self.min_fanout <= self.max_fanout):
            raise WorkloadError("need 0 < min_fanout <= max_fanout")
        if not self.labels:
            raise WorkloadError("labels must be non-empty")
        if self.value_domain < 1:
            raise WorkloadError("value_domain must be at least 1")


def generate_tree(profile: TreeProfile, seed: int = 0) -> Document:
    """Generate one random document matching *profile*."""
    profile.validate()
    rng = make_rng(seed)
    document = Document()
    root = document.append_child(Element("root"))
    _grow(root, profile, rng, remaining_depth=profile.depth)
    return document


def _grow(parent: Element, profile: TreeProfile, rng, remaining_depth: int):
    fanout = rng.randint(profile.min_fanout, profile.max_fanout)
    for _ in range(fanout):
        child = parent.append_child(Element(rng.choice(profile.labels)))
        for attribute in profile.attributes:
            if rng.random() < profile.attribute_probability:
                child.set_attribute(attribute, _value(profile, rng))
        if remaining_depth > 1 and rng.random() < 0.8:
            _grow(child, profile, rng, remaining_depth - 1)
        elif rng.random() < profile.leaf_text_probability:
            child.append_text(_value(profile, rng))


def _value(profile: TreeProfile, rng) -> str:
    return f"v{rng.randrange(profile.value_domain)}"
