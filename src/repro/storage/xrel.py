"""XRel mapping (Yoshikawa et al., TOIT 2001): paths + regions.

Four relations:

.. code-block:: text

    xrel_paths(doc_id, path_id, pathexp)
    xrel_element(doc_id, path_id, start, end, ordinal, name, content)
    xrel_attribute(doc_id, path_id, start, end, ordinal, name, value)
    xrel_text(doc_id, path_id, start, end, ordinal, kind, name, value)

``pathexp`` is the root-to-node label path in XRel's ``#/`` notation
(attributes as ``#/@name``); ``(start, end)`` is the node's *region* —
here ``start = pre`` and ``end = pre + size``, which nest exactly like
XRel's byte offsets.  Simple paths become a match against the small path
table plus one probe of a node table; ancestor/descendant relationships
between *instances* are region containment (``c.start > e.start AND
c.end <= e.end``).

Text, comment and PI nodes share ``xrel_text`` (a ``kind`` column tells
them apart; comments/PIs are outside XRel's published scope but keeping
them makes reconstruction lossless).  Elements carry a cached ``content``
column for text-only content — the same inlined-value optimization the
other mappings use for single-column value predicates.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.relational.schema import Column, INTEGER, Index, Table, TEXT
from repro.storage.base import (
    STREAM_BATCH,
    MappingScheme,
    StreamInserter,
    iter_batches,
)
from repro.storage.interval import element_content
from repro.storage.numbering import NodeRecord
from repro.xml.dom import Document, NodeKind

PATH_SEP = "#/"

PATHS_TABLE = Table(
    name="xrel_paths",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("path_id", INTEGER, nullable=False),
        Column("pathexp", TEXT, nullable=False),
    ],
    primary_key=("doc_id", "path_id"),
    indexes=[
        Index("xrel_paths_exp", "xrel_paths", ("doc_id", "pathexp")),
    ],
)

ELEMENT_TABLE = Table(
    name="xrel_element",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("path_id", INTEGER, nullable=False),
        Column("start", INTEGER, nullable=False),
        Column("end", INTEGER, nullable=False),
        Column("ordinal", INTEGER, nullable=False),
        Column("name", TEXT, nullable=False),
        Column("content", TEXT),
    ],
    primary_key=("doc_id", "start"),
    indexes=[
        Index("xrel_element_path", "xrel_element", ("doc_id", "path_id")),
        Index(
            "xrel_element_content",
            "xrel_element",
            ("doc_id", "name", "content"),
        ),
    ],
)

ATTRIBUTE_TABLE = Table(
    name="xrel_attribute",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("path_id", INTEGER, nullable=False),
        Column("start", INTEGER, nullable=False),
        Column("end", INTEGER, nullable=False),
        Column("ordinal", INTEGER, nullable=False),
        Column("name", TEXT, nullable=False),
        Column("value", TEXT),
    ],
    primary_key=("doc_id", "start"),
    indexes=[
        Index("xrel_attribute_path", "xrel_attribute", ("doc_id", "path_id")),
        Index(
            "xrel_attribute_value",
            "xrel_attribute",
            ("doc_id", "name", "value"),
        ),
    ],
)

TEXT_TABLE = Table(
    name="xrel_text",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("path_id", INTEGER, nullable=False),
        Column("start", INTEGER, nullable=False),
        Column("end", INTEGER, nullable=False),
        Column("ordinal", INTEGER, nullable=False),
        Column("kind", INTEGER, nullable=False),
        Column("name", TEXT),
        Column("value", TEXT),
    ],
    primary_key=("doc_id", "start"),
    indexes=[
        Index("xrel_text_path", "xrel_text", ("doc_id", "path_id")),
        Index("xrel_text_value", "xrel_text", ("doc_id", "value")),
    ],
)


def record_pathexp(record: NodeRecord, parent_path: str) -> str:
    """XRel path expression of one node given its parent's."""
    kind = record.kind
    if kind == int(NodeKind.ELEMENT):
        return f"{parent_path}{PATH_SEP}{record.name}"
    if kind == int(NodeKind.ATTRIBUTE):
        return f"{parent_path}{PATH_SEP}@{record.name}"
    # Text/comment/PI rows reuse the parent's path, as in the paper.
    return parent_path


class _XRelStreamInserter(StreamInserter):
    """Streaming sink tracking the open-element path expressions.

    The path dictionary is numbered by first use: element paths at the
    start tag (:meth:`enter`), attribute paths at the attribute node,
    non-element paths by reuse of the open parent's — the same order the
    DOM insert path's pre-order walk assigns, so ``xrel_paths`` comes out
    identical.  Node rows land in completion order (elements close after
    their descendants); the tables are keyed and queried by ``start``, so
    insertion order is immaterial.  Memory is bounded by the path
    dictionary plus one row batch per table.
    """

    def __init__(self, scheme, doc_id):
        super().__init__(scheme, doc_id)
        self._path_ids: dict[str, int] = {}
        self._stack: list[str] = [""]  # pathexps of open elements
        self._tables = {
            t.name: t for t in (ELEMENT_TABLE, ATTRIBUTE_TABLE, TEXT_TABLE)
        }
        self._rows = {name: [] for name in self._tables}
        self._counts = {name: 0 for name in self._tables}

    def _pid(self, pathexp: str) -> int:
        pid = self._path_ids.get(pathexp)
        if pid is None:
            pid = len(self._path_ids) + 1
            self._path_ids[pathexp] = pid
        return pid

    needs_enter = True

    def enter(self, pre, name, parent_pre):
        pathexp = f"{self._stack[-1]}{PATH_SEP}{name}"
        self._pid(pathexp)
        self._stack.append(pathexp)

    def _buffer(self, table, row):
        rows = self._rows[table.name]
        rows.append(row)
        if len(rows) >= STREAM_BATCH:
            self._flush(table.name)

    def _flush(self, name):
        rows = self._rows[name]
        if rows:
            self.scheme.db.insert_rows(self._tables[name], rows)
            self._counts[name] += len(rows)
            rows.clear()

    def add(self, r, content):
        start, end = r.pre, r.pre + r.size
        if r.kind == int(NodeKind.ELEMENT):
            pid = self._path_ids[self._stack.pop()]
            self._buffer(
                ELEMENT_TABLE,
                (self.doc_id, pid, start, end, r.ordinal, r.name, content),
            )
        elif r.kind == int(NodeKind.ATTRIBUTE):
            pid = self._pid(f"{self._stack[-1]}{PATH_SEP}@{r.name}")
            self._buffer(
                ATTRIBUTE_TABLE,
                (self.doc_id, pid, start, end, r.ordinal, r.name, r.value),
            )
        else:
            pid = self._pid(self._stack[-1])
            self._buffer(
                TEXT_TABLE,
                (self.doc_id, pid, start, end, r.ordinal, r.kind, r.name,
                 r.value),
            )

    def finish(self):
        for name in self._rows:
            self._flush(name)
        self.scheme.db.executemany(
            "INSERT INTO xrel_paths (doc_id, path_id, pathexp) "
            "VALUES (?, ?, ?)",
            [(self.doc_id, pid, exp)
             for exp, pid in self._path_ids.items()],
        )
        self._counts[PATHS_TABLE.name] = len(self._path_ids)
        return self._counts


class XRelScheme(MappingScheme):
    """The path + region mapping."""

    name = "xrel"

    def tables(self):
        return [PATHS_TABLE, ELEMENT_TABLE, ATTRIBUTE_TABLE, TEXT_TABLE]

    def stream_inserter(self, doc_id):
        return _XRelStreamInserter(self, doc_id)

    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        contents = element_content(records)
        path_of: dict[int, str] = {0: ""}
        path_ids: dict[str, int] = {}
        element_rows, attribute_rows, text_rows = [], [], []

        def path_id_for(pathexp: str) -> int:
            if pathexp not in path_ids:
                path_ids[pathexp] = len(path_ids) + 1
            return path_ids[pathexp]

        for r in records:
            pathexp = record_pathexp(r, path_of[r.parent_pre])
            path_of[r.pre] = pathexp
            pid = path_id_for(pathexp)
            start, end = r.pre, r.pre + r.size
            if r.kind == int(NodeKind.ELEMENT):
                element_rows.append(
                    (doc_id, pid, start, end, r.ordinal, r.name,
                     contents.get(r.pre))
                )
            elif r.kind == int(NodeKind.ATTRIBUTE):
                attribute_rows.append(
                    (doc_id, pid, start, end, r.ordinal, r.name, r.value)
                )
            else:
                text_rows.append(
                    (doc_id, pid, start, end, r.ordinal, r.kind, r.name,
                     r.value)
                )
        self.db.executemany(
            "INSERT INTO xrel_paths (doc_id, path_id, pathexp) "
            "VALUES (?, ?, ?)",
            [(doc_id, pid, exp) for exp, pid in path_ids.items()],
        )
        self.db.insert_rows(ELEMENT_TABLE, element_rows)
        self.db.insert_rows(ATTRIBUTE_TABLE, attribute_rows)
        self.db.insert_rows(TEXT_TABLE, text_rows)
        return {
            PATHS_TABLE.name: len(path_ids),
            ELEMENT_TABLE.name: len(element_rows),
            ATTRIBUTE_TABLE.name: len(attribute_rows),
            TEXT_TABLE.name: len(text_rows),
        }

    @staticmethod
    def _rows_to_records(rows) -> list[NodeRecord]:
        """Convert start-ordered region rows to records, recovering each
        node's parent from region nesting with a stack."""
        records: list[NodeRecord] = []
        stack: list[tuple[int, int]] = []  # (start, end)
        for start, end, ordinal, kind, name, value in rows:
            while stack and stack[-1][1] < start:
                stack.pop()
            parent_pre = stack[-1][0] if stack else 0
            is_element = kind == int(NodeKind.ELEMENT)
            records.append(
                NodeRecord(
                    pre=start,
                    post=0,
                    size=end - start,
                    level=len(stack) + 1,
                    kind=kind,
                    name=name,
                    # Element "value" column carried content; real elements
                    # rebuild their text from the xrel_text rows.
                    value=None if is_element else value,
                    parent_pre=parent_pre,
                    ordinal=ordinal,
                    dewey="",
                )
            )
            if is_element:
                stack.append((start, end))
        return records

    def _node_union_sql(self, condition: str) -> str:
        """The three-table node UNION with *condition* appended to every
        arm, ordered by region start (= pre, unique across tables)."""
        return f"""
            SELECT start, end, ordinal, {int(NodeKind.ELEMENT)} AS kind,
                   name, content AS value
            FROM xrel_element WHERE doc_id = ?{condition}
            UNION ALL
            SELECT start, end, ordinal, {int(NodeKind.ATTRIBUTE)}, name,
                   value FROM xrel_attribute WHERE doc_id = ?{condition}
            UNION ALL
            SELECT start, end, ordinal, kind, name, value
            FROM xrel_text WHERE doc_id = ?{condition}
            ORDER BY start
            """

    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        condition, params = "", [doc_id]
        if root_pre is not None:
            # The subtree root may live in any of the three node tables.
            root_end = (
                "COALESCE("
                "(SELECT end FROM xrel_element WHERE doc_id = ? AND start = ?), "
                "(SELECT end FROM xrel_attribute WHERE doc_id = ? AND start = ?), "
                "(SELECT end FROM xrel_text WHERE doc_id = ? AND start = ?))"
            )
            condition = f" AND start >= ? AND start <= {root_end}"
            params = [doc_id, root_pre] + [doc_id, root_pre] * 3
        rows = self.db.query(self._node_union_sql(condition), params * 3)
        # Parents are recovered from region nesting with a stack.
        return self._rows_to_records(rows)

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        # Two statements per batch: resolve the root regions (a root may
        # live in any node table), then fetch every subtree row with one
        # OR-of-ranges union and carve per-root slices out of the
        # start-ordered result (regions are contiguous start blocks).
        groups: dict[int, list[NodeRecord]] = {}
        for batch in iter_batches(pres):
            marks = ", ".join("?" for _ in batch)
            region_rows = self.db.query(
                f"SELECT start, end FROM xrel_element "
                f"WHERE doc_id = ? AND start IN ({marks}) "
                "UNION ALL "
                f"SELECT start, end FROM xrel_attribute "
                f"WHERE doc_id = ? AND start IN ({marks}) "
                "UNION ALL "
                f"SELECT start, end FROM xrel_text "
                f"WHERE doc_id = ? AND start IN ({marks})",
                [doc_id, *batch] * 3,
            )
            spans = sorted(region_rows)
            if not spans:
                continue
            ors = " OR ".join(
                "(start >= ? AND start <= ?)" for _ in spans
            )
            arm_params = [doc_id]
            for span in spans:
                arm_params.extend(span)
            rows = self.db.query(
                self._node_union_sql(f" AND ({ors})"), arm_params * 3
            )
            starts = [row[0] for row in rows]
            for root_start, root_end in spans:
                lo = bisect_left(starts, root_start)
                hi = bisect_right(starts, root_end)
                records = self._rows_to_records(rows[lo:hi])
                if records:
                    groups[root_start] = records
        return groups

    def _delete_rows(self, doc_id: int) -> None:
        for table in ("xrel_paths", "xrel_element", "xrel_attribute",
                      "xrel_text"):
            self.db.execute(
                f"DELETE FROM {table} WHERE doc_id = ?", (doc_id,)
            )

    def _audit_document(self, doc_id, record, report, records) -> None:
        path_ids = {
            pid
            for (pid,) in self.db.query(
                "SELECT path_id FROM xrel_paths WHERE doc_id = ?",
                (doc_id,),
            )
        }
        report.ran("xrel-paths")
        report.ran("xrel-regions")
        for table in ("xrel_element", "xrel_attribute", "xrel_text"):
            rows = self.db.query(
                f"SELECT path_id, start, end FROM {table} "
                "WHERE doc_id = ?",
                (doc_id,),
            )
            for path_id, start, end in rows:
                if path_id not in path_ids:
                    report.add(
                        "xrel-paths",
                        f"{table} row at start={start} references "
                        f"path_id {path_id} absent from xrel_paths",
                    )
                if end < start:
                    report.add(
                        "xrel-regions",
                        f"{table} row has inverted region "
                        f"[{start}, {end}]",
                    )
        # Element regions must be well nested: in start order, each
        # region either nests inside the innermost open one or begins
        # after it closes — and attributes must sit inside an element.
        elements = self.db.query(
            "SELECT start, end FROM xrel_element "
            "WHERE doc_id = ? ORDER BY start",
            (doc_id,),
        )
        report.ran("xrel-nesting")
        stack: list[tuple[int, int]] = []
        for start, end in elements:
            while stack and stack[-1][1] < start:
                stack.pop()
            if stack and end > stack[-1][1]:
                report.add(
                    "xrel-nesting",
                    f"element region [{start}, {end}] crosses open "
                    f"region [{stack[-1][0]}, {stack[-1][1]}]",
                )
                continue
            stack.append((start, end))
        report.ran("xrel-attribute-containment")
        attributes = self.db.query(
            "SELECT start, end FROM xrel_attribute "
            "WHERE doc_id = ? ORDER BY start",
            (doc_id,),
        )
        # One merged sweep in start order: elements (which open first at
        # equal starts) push regions, attributes check the innermost.
        events = sorted(
            [(s, 0, e) for s, e in elements]
            + [(s, 1, e) for s, e in attributes]
        )
        stack = []
        for start, is_attr, end in events:
            while stack and stack[-1] < start:
                stack.pop()
            if is_attr:
                if not stack or end > stack[-1]:
                    report.add(
                        "xrel-attribute-containment",
                        f"attribute region [{start}, {end}] lies in no "
                        "element region",
                    )
            else:
                stack.append(end)

    def translator(self):
        from repro.query.translate_xrel import XRelTranslator

        return XRelTranslator(self)
