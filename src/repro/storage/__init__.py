"""Storage schemes: the XML→relational shredders.

Every scheme implements the :class:`~repro.storage.base.MappingScheme`
interface; the registry in :mod:`repro.core.registry` exposes them by name:

========== ===========================================================
``edge``     Edge table (Florescu & Kossmann, 1999)
``binary``   Label-partitioned edge tables (ibid.)
``universal``Universal table (denormalized strawman)
``interval`` Pre/post/size/level region encoding (Grust's accelerator)
``dewey``    Dewey order path labels (Tatarinov et al., 2002)
``xrel``     Path + region mapping (Yoshikawa et al., 2001)
``inlining`` DTD-driven shared inlining (Shanmugasundaram et al., 1999)
========== ===========================================================
"""

from repro.storage.base import BulkSession, MappingScheme, ShredResult
from repro.storage.numbering import NodeRecord, number_document

__all__ = [
    "BulkSession",
    "MappingScheme",
    "NodeRecord",
    "ShredResult",
    "number_document",
]
