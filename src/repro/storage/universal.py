"""Universal-table mapping: the fully denormalized strawman.

One wide relation holds one row per *root-to-leaf path instance*; for
every distinct label ``l`` the table has a column triple
``(n<i>_ord, n<i>_id, n<i>_val)`` assigned through the ``universal_labels``
catalog.  A row fills the triples of the labels on its path and leaves
every other column NULL — the full-outer-join shape of Florescu &
Kossmann's Universal relation.  Each row also carries a ``path_id`` into
``universal_paths`` (the label sequence), which disambiguates rows whose
non-NULL label *sets* coincide but whose paths differ.

Published behaviour reproduced here:

* linear path queries are single-table scans — no joins at all (E3/E8),
* storage explodes with document size and fanout — ancestors are repeated
  once per leaf below them (E1),
* recursive documents (a label repeating along one path) cannot be
  represented at all — storing one raises
  :class:`~repro.errors.SchemaMappingError`,
* anything beyond linear paths (wildcards, positions) is untranslatable.

Attribute labels are stored with an ``@`` prefix; text, comment and PI
nodes use the same reserved labels as the edge mapping.
"""

from __future__ import annotations

from repro.errors import SchemaMappingError, StorageError
from repro.relational.schema import Column, INTEGER, Table, TEXT
from repro.storage.base import BufferedStreamInserter, MappingScheme
from repro.storage.interval import element_content
from repro.storage.numbering import NodeRecord
from repro.xml.dom import Document, NodeKind

LABELS_TABLE = Table(
    name="universal_labels",
    columns=[
        Column("label", TEXT, primary_key=True),
        Column("col_index", INTEGER, nullable=False),
    ],
)

PATHS_TABLE = Table(
    name="universal_paths",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("path_id", INTEGER, nullable=False),
        Column("pathexp", TEXT, nullable=False),
    ],
    primary_key=("doc_id", "path_id"),
)

UNIVERSAL = "universal"

# Separator inside pathexp strings: '#/label' per child step.
PATH_SEP = "#/"


def node_label(record: NodeRecord) -> str:
    """The universal-table label of a stored node."""
    kind = record.kind
    if kind == int(NodeKind.ELEMENT):
        return record.name or ""
    if kind == int(NodeKind.ATTRIBUTE):
        return f"@{record.name}"
    if kind == int(NodeKind.TEXT):
        return "#text"
    if kind == int(NodeKind.COMMENT):
        return "#comment"
    return f"#pi:{record.name}"


def label_kind(label: str) -> int:
    """Invert :func:`node_label` to the node kind."""
    if label.startswith("@"):
        return int(NodeKind.ATTRIBUTE)
    if label == "#text":
        return int(NodeKind.TEXT)
    if label == "#comment":
        return int(NodeKind.COMMENT)
    if label.startswith("#pi"):
        return int(NodeKind.PROCESSING_INSTRUCTION)
    return int(NodeKind.ELEMENT)


def label_name(label: str) -> str | None:
    """The node name encoded in *label* (None for text/comments)."""
    kind = label_kind(label)
    if kind == int(NodeKind.ATTRIBUTE):
        return label[1:]
    if kind == int(NodeKind.PROCESSING_INSTRUCTION):
        return label.split(":", 1)[1] if ":" in label else label
    if kind == int(NodeKind.ELEMENT):
        return label
    return None


class UniversalScheme(MappingScheme):
    """The single wide denormalized relation."""

    name = "universal"

    # Translation bakes in the known label columns (an unknown final
    # label compiles to an always-false plan), so cached plans must be
    # invalidated whenever a store/delete can change the label set.
    translation_depends_on_data = True

    def tables(self):
        return [LABELS_TABLE, PATHS_TABLE]

    def stream_inserter(self, doc_id):
        # The wide relation needs the whole record set (each tuple spans a
        # root-to-leaf chain), but not the DOM — buffer records only.
        return BufferedStreamInserter(self, doc_id, needs_document=False)

    def create_schema(self) -> None:
        super().create_schema()
        if not self.db.table_exists(UNIVERSAL):
            self.db.execute(
                f"CREATE TABLE {UNIVERSAL} ("
                "doc_id INTEGER NOT NULL, path_id INTEGER NOT NULL)"
            )

    # -- label columns ------------------------------------------------------------

    def label_columns(self) -> dict[str, int]:
        """Current label → column-index assignment."""
        return dict(
            self.db.query("SELECT label, col_index FROM universal_labels")
        )

    def column_triple(self, index: int) -> tuple[str, str, str]:
        """(ord, id, val) column names of label column *index*."""
        return f"n{index}_ord", f"n{index}_id", f"n{index}_val"

    def columns_for(self, label: str) -> tuple[str, str, str] | None:
        """Column triple of *label*, or None if the label is unknown."""
        index = self.label_columns().get(label)
        if index is None:
            return None
        return self.column_triple(index)

    def _ensure_label(self, label: str, known: dict[str, int]) -> int:
        if label in known:
            return known[label]
        index = len(known)
        known[label] = index
        self.db.execute(
            "INSERT INTO universal_labels (label, col_index) VALUES (?, ?)",
            (label, index),
        )
        ord_col, id_col, val_col = self.column_triple(index)
        for column, col_type in (
            (ord_col, "INTEGER"), (id_col, "INTEGER"), (val_col, "TEXT"),
        ):
            self.db.execute(
                f"ALTER TABLE {UNIVERSAL} ADD COLUMN {column} {col_type}"
            )
        return index

    def table_names(self) -> list[str]:
        return ["universal_labels", "universal_paths", UNIVERSAL]

    # -- shredding ---------------------------------------------------------------------

    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        contents = element_content(records)
        by_pre = {r.pre: r for r in records}
        children_of: dict[int, list[NodeRecord]] = {}
        for record in records:
            children_of.setdefault(record.parent_pre, []).append(record)
        known = self.label_columns()
        path_ids: dict[str, int] = {}
        rows: list[dict[str, object]] = []

        def value_of(record: NodeRecord) -> str | None:
            if record.kind == int(NodeKind.ELEMENT):
                return contents.get(record.pre)
            return record.value

        def emit(leaf: NodeRecord) -> None:
            chain: list[NodeRecord] = []
            current: NodeRecord | None = leaf
            while current is not None:
                chain.append(current)
                current = by_pre.get(current.parent_pre)
            chain.reverse()
            labels = [node_label(r) for r in chain]
            if len(set(labels)) != len(labels):
                raise SchemaMappingError(
                    "universal table cannot store recursive paths "
                    f"(label repeats along {PATH_SEP.join(labels)})"
                )
            pathexp = "".join(PATH_SEP + label for label in labels)
            if pathexp not in path_ids:
                path_ids[pathexp] = len(path_ids) + 1
            row: dict[str, object] = {
                "doc_id": doc_id,
                "path_id": path_ids[pathexp],
            }
            for record, label in zip(chain, labels):
                index = self._ensure_label(label, known)
                ord_col, id_col, val_col = self.column_triple(index)
                row[ord_col] = record.ordinal
                row[id_col] = record.pre
                row[val_col] = value_of(record)
            rows.append(row)

        known_before = len(known)
        for record in records:
            if not children_of.get(record.pre):
                emit(record)
        self.db.executemany(
            "INSERT INTO universal_paths (doc_id, path_id, pathexp) "
            "VALUES (?, ?, ?)",
            [
                (doc_id, path_id, pathexp)
                for pathexp, path_id in path_ids.items()
            ],
        )
        # Rows sharing a column signature (same path shape) insert as one
        # batch instead of one statement per row.
        by_shape: dict[tuple[str, ...], list[dict[str, object]]] = {}
        for row in rows:
            by_shape.setdefault(tuple(row), []).append(row)
        for columns, shaped_rows in by_shape.items():
            marks = ", ".join("?" for _ in columns)
            self.db.executemany(
                f"INSERT INTO {UNIVERSAL} ({', '.join(columns)}) "
                f"VALUES ({marks})",
                [[row[c] for c in columns] for row in shaped_rows],
            )
        return {
            UNIVERSAL: len(rows),
            PATHS_TABLE.name: len(path_ids),
            LABELS_TABLE.name: len(known) - known_before,
        }

    # -- retrieval -----------------------------------------------------------------------

    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        labels = self.label_columns()
        paths = dict(
            self.db.query(
                "SELECT path_id, pathexp FROM universal_paths "
                "WHERE doc_id = ?",
                (doc_id,),
            )
        )
        rows = self.db.query(
            f"SELECT * FROM {UNIVERSAL} WHERE doc_id = ?", (doc_id,)
        )
        column_names = [
            d[0] for d in self.db.execute(
                f"SELECT * FROM {UNIVERSAL} LIMIT 0"
            ).description
        ]
        by_pre: dict[int, NodeRecord] = {}
        col_of = {label: self.column_triple(i) for label, i in labels.items()}
        for row in rows:
            values = dict(zip(column_names, row))
            pathexp = paths[values["path_id"]]
            chain = [p for p in pathexp.split(PATH_SEP) if p]
            parent_pre = 0
            for depth, label in enumerate(chain, start=1):
                ord_col, id_col, val_col = col_of[label]
                pre = values[id_col]
                if pre is None:
                    raise StorageError(
                        f"universal row missing id for label {label!r}"
                    )
                kind = label_kind(label)
                if pre not in by_pre:
                    by_pre[pre] = NodeRecord(
                        pre=pre,
                        post=0,
                        size=0,
                        level=depth,
                        kind=kind,
                        name=label_name(label),
                        value=(
                            values[val_col]
                            if kind != int(NodeKind.ELEMENT)
                            else None
                        ),
                        parent_pre=parent_pre,
                        ordinal=values[ord_col] or 0,
                        dewey="",
                    )
                parent_pre = pre
        records = [by_pre[pre] for pre in sorted(by_pre)]
        if root_pre is not None:
            keep: set[int] = {root_pre}
            subtree = []
            for record in records:
                if record.pre == root_pre or record.parent_pre in keep:
                    keep.add(record.pre)
                    subtree.append(record)
            return subtree
        return records

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        # The universal table has no subtree handle cheaper than reading
        # the document's rows; one full fetch feeds every root's slice.
        if not pres:
            return {}
        return self._subtree_slices(self.fetch_records(doc_id), pres)

    def _delete_rows(self, doc_id: int) -> None:
        self.db.execute(
            f"DELETE FROM {UNIVERSAL} WHERE doc_id = ?", (doc_id,)
        )
        self.db.execute(
            "DELETE FROM universal_paths WHERE doc_id = ?", (doc_id,)
        )

    def _audit_document(self, doc_id, record, report, records) -> None:
        labels = self.label_columns()
        paths = dict(
            self.db.query(
                "SELECT path_id, pathexp FROM universal_paths "
                "WHERE doc_id = ?",
                (doc_id,),
            )
        )
        report.ran("universal-labels")
        for pathexp in paths.values():
            for label in pathexp.split(PATH_SEP):
                if label and label not in labels:
                    report.add(
                        "universal-labels",
                        f"path {pathexp!r} uses label {label!r} with no "
                        "column assignment in universal_labels",
                    )
        rows = self.db.query(
            f"SELECT * FROM {UNIVERSAL} WHERE doc_id = ?", (doc_id,)
        )
        column_names = [
            d[0] for d in self.db.execute(
                f"SELECT * FROM {UNIVERSAL} LIMIT 0"
            ).description
        ]
        report.ran("universal-paths")
        report.ran("universal-ids")
        for row in rows:
            values = dict(zip(column_names, row))
            path_id = values["path_id"]
            pathexp = paths.get(path_id)
            if pathexp is None:
                report.add(
                    "universal-paths",
                    f"row references path_id {path_id} absent from "
                    "universal_paths",
                )
                continue
            for label in pathexp.split(PATH_SEP):
                if not label or label not in labels:
                    continue
                id_col = self.column_triple(labels[label])[1]
                if id_col in values and values[id_col] is None:
                    report.add(
                        "universal-ids",
                        f"row on path {pathexp!r} has NULL id for "
                        f"label {label!r}",
                    )

    def translator(self):
        from repro.query.translate_universal import UniversalTranslator

        return UniversalTranslator(self)
