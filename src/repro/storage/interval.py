"""Interval (pre/post/size/level) mapping — the "XPath accelerator".

One relation holds every node with its region encoding (Grust 2002/2004;
also the XASR table of Kanne & Moerkotte and the tree encoding on tutorial
slide 132):

.. code-block:: text

    accel(doc_id, pre, post, size, level, kind, name, value, content,
          parent_pre, ordinal)

Every XPath axis is a *range predicate* in the (pre, post) plane — e.g.
``descendant(v) = { u : pre(u) > pre(v) AND pre(u) <= pre(v)+size(v) }`` —
so a k-step path is k self-joins with range conditions instead of the edge
mapping's transitive closures.  ``content`` caches the concatenated text
of text-only elements, giving value predicates a single-column compare.
"""

from __future__ import annotations

from repro.relational.schema import Column, INTEGER, Index, Table, TEXT
from repro.storage.base import (
    STREAM_BATCH,
    MappingScheme,
    StreamInserter,
    iter_batches,
)
from repro.storage.numbering import NodeRecord
from repro.xml.dom import Document, NodeKind

ACCEL_TABLE = Table(
    name="accel",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("pre", INTEGER, nullable=False),
        Column("post", INTEGER, nullable=False),
        Column("size", INTEGER, nullable=False),
        Column("level", INTEGER, nullable=False),
        Column("kind", INTEGER, nullable=False),
        Column("name", TEXT),
        Column("value", TEXT),
        Column("content", TEXT),
        Column("parent_pre", INTEGER, nullable=False),
        Column("ordinal", INTEGER, nullable=False),
    ],
    primary_key=("doc_id", "pre"),
    indexes=[
        Index("accel_name", "accel", ("doc_id", "name", "pre")),
        Index("accel_parent", "accel", ("doc_id", "parent_pre")),
        Index("accel_content", "accel", ("doc_id", "name", "content")),
        Index("accel_value", "accel", ("doc_id", "name", "value")),
    ],
)


def element_content(
    records: list[NodeRecord],
) -> dict[int, str]:
    """Map element pre → concatenated text, for *text-only* elements.

    An element whose non-attribute children are exclusively text nodes gets
    its concatenated text cached; every scheme uses this for single-column
    value predicates (the "inlined value" idea of the edge paper).
    """
    children: dict[int, list[NodeRecord]] = {}
    for record in records:
        if record.kind != NodeKind.ATTRIBUTE:
            children.setdefault(record.parent_pre, []).append(record)
    contents: dict[int, str] = {}
    for record in records:
        if record.kind != NodeKind.ELEMENT:
            continue
        kids = children.get(record.pre, [])
        if kids and all(k.kind == NodeKind.TEXT for k in kids):
            contents[record.pre] = "".join(k.value or "" for k in kids)
        elif not kids:
            contents[record.pre] = ""
    return contents


class _IntervalStreamInserter(StreamInserter):
    """Constant-memory row sink: every completed node is one accel row."""

    def __init__(self, scheme, doc_id):
        super().__init__(scheme, doc_id)
        self._rows: list[tuple] = []
        self._count = 0

    def add(self, r, content):
        self._rows.append(
            (self.doc_id, r.pre, r.post, r.size, r.level, r.kind,
             r.name, r.value, content, r.parent_pre, r.ordinal)
        )
        if len(self._rows) >= STREAM_BATCH:
            self._flush()

    def _flush(self):
        self.scheme.db.insert_rows(ACCEL_TABLE, self._rows)
        self._count += len(self._rows)
        self._rows.clear()

    def finish(self):
        self._flush()
        return {ACCEL_TABLE.name: self._count}


class IntervalScheme(MappingScheme):
    """The pre/post/size/level region mapping."""

    name = "interval"

    def tables(self):
        return [ACCEL_TABLE]

    def stream_inserter(self, doc_id):
        return _IntervalStreamInserter(self, doc_id)

    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        contents = element_content(records)
        rows = (
            (
                doc_id,
                r.pre,
                r.post,
                r.size,
                r.level,
                r.kind,
                r.name,
                r.value,
                contents.get(r.pre),
                r.parent_pre,
                r.ordinal,
            )
            for r in records
        )
        self.db.insert_rows(ACCEL_TABLE, rows)
        return {ACCEL_TABLE.name: len(records)}

    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        sql = (
            "SELECT pre, post, size, level, kind, name, value, "
            "parent_pre, ordinal FROM accel WHERE doc_id = ?"
        )
        params: list = [doc_id]
        if root_pre is not None:
            # One range scan: the whole subtree is a contiguous pre block.
            sql += (
                " AND pre >= ? AND pre <= "
                "(SELECT pre + size FROM accel WHERE doc_id = ? AND pre = ?)"
            )
            params += [root_pre, doc_id, root_pre]
        sql += " ORDER BY pre"
        rows = self.db.query(sql, params)
        return [
            NodeRecord(
                pre=pre,
                post=post,
                size=size,
                level=level,
                kind=kind,
                name=name,
                value=value,
                parent_pre=parent_pre,
                ordinal=ordinal,
                dewey="",
            )
            for (
                pre, post, size, level, kind, name, value, parent_pre, ordinal,
            ) in rows
        ]

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        # One self-join per batch: root rows (by pre) joined against the
        # contiguous pre-range of their region tag every subtree record
        # with its root — no per-root round-trips.
        groups: dict[int, list[NodeRecord]] = {}
        for batch in iter_batches(pres):
            marks = ", ".join("?" for _ in batch)
            rows = self.db.query(
                "SELECT r.pre, a.pre, a.post, a.size, a.level, a.kind, "
                "a.name, a.value, a.parent_pre, a.ordinal "
                "FROM accel AS r JOIN accel AS a ON a.doc_id = r.doc_id "
                "AND a.pre >= r.pre AND a.pre <= r.pre + r.size "
                f"WHERE r.doc_id = ? AND r.pre IN ({marks}) "
                "ORDER BY r.pre, a.pre",
                [doc_id, *batch],
            )
            for (
                root, pre, post, size, level, kind, name, value,
                parent_pre, ordinal,
            ) in rows:
                groups.setdefault(root, []).append(
                    NodeRecord(
                        pre=pre,
                        post=post,
                        size=size,
                        level=level,
                        kind=kind,
                        name=name,
                        value=value,
                        parent_pre=parent_pre,
                        ordinal=ordinal,
                        dewey="",
                    )
                )
        return groups

    def _delete_rows(self, doc_id: int) -> None:
        self.db.execute("DELETE FROM accel WHERE doc_id = ?", (doc_id,))

    def _audit_document(self, doc_id, record, report, records) -> None:
        rows = self.db.query(
            "SELECT pre, size, level, parent_pre FROM accel "
            "WHERE doc_id = ? ORDER BY pre",
            (doc_id,),
        )
        by_pre = {pre: (size, level, parent_pre)
                  for pre, size, level, parent_pre in rows}
        report.ran("interval-bounds")
        report.ran("interval-containment")
        report.ran("interval-levels")
        for pre, size, level, parent_pre in rows:
            if size < 0 or level < 1:
                report.add(
                    "interval-bounds",
                    f"node {pre} has size={size}, level={level}",
                )
                continue
            if parent_pre == 0:
                continue
            parent = by_pre.get(parent_pre)
            if parent is None:
                continue  # flagged by the generic parents-resolve check
            p_size, p_level, __ = parent
            # A child's region must nest strictly inside its parent's:
            # parent_pre < pre and pre + size <= parent_pre + p_size.
            if not (parent_pre < pre and pre + size <= parent_pre + p_size):
                report.add(
                    "interval-containment",
                    f"region [{pre}, {pre + size}] of node {pre} is not "
                    f"contained in parent [{parent_pre}, "
                    f"{parent_pre + p_size}]",
                )
            if level != p_level + 1:
                report.add(
                    "interval-levels",
                    f"node {pre} has level {level}; its parent "
                    f"{parent_pre} has level {p_level}",
                )
        # Sibling regions must not partially overlap (well-nestedness):
        # walking in pre order with a stack of open regions, every new
        # region either nests in the top or starts after it ends.
        report.ran("interval-nesting")
        stack: list[tuple[int, int]] = []  # (pre, end)
        for pre, size, level, parent_pre in rows:
            end = pre + size
            while stack and stack[-1][1] < pre:
                stack.pop()
            if stack and end > stack[-1][1]:
                report.add(
                    "interval-nesting",
                    f"region [{pre}, {end}] crosses open region "
                    f"[{stack[-1][0]}, {stack[-1][1]}]",
                )
                continue
            stack.append((pre, end))

    def translator(self):
        from repro.query.translate_interval import IntervalTranslator

        return IntervalTranslator(self)
