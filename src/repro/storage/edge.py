"""Edge mapping (Florescu & Kossmann, 1999) with inlined values.

The whole document becomes one *edge* relation, one row per node:

.. code-block:: text

    edge(doc_id, source, ordinal, label, kind, target, value, content)

``source``/``target`` are the parent's and the node's ``pre`` ids (source
0 for roots); ``label`` is the element tag or attribute name — text,
comment and PI nodes use the reserved labels ``#text``/``#comment``/
``#pi``.  ``value`` carries leaf data (attribute values, text) inline —
the paper's better-performing "edge with inlined values" variant; the
separate-value-table variant is exercised by the binary mapping instead.
``content`` caches text-only element content for value predicates.

A child step is one self-join on ``source = target``; a descendant step
needs the transitive closure (a recursive CTE here), which is this
mapping's published weakness and the subject of experiment E4.
"""

from __future__ import annotations

from repro.relational.schema import Column, INTEGER, Index, Table, TEXT
from repro.storage.base import (
    STREAM_BATCH,
    MappingScheme,
    StreamInserter,
    iter_batches,
)
from repro.storage.interval import element_content
from repro.storage.numbering import NodeRecord
from repro.xml.dom import Document, NodeKind

# Reserved labels for non-element, non-attribute nodes.
TEXT_LABEL = "#text"
COMMENT_LABEL = "#comment"
PI_LABEL = "#pi"

_KIND_LABELS = {
    int(NodeKind.TEXT): TEXT_LABEL,
    int(NodeKind.COMMENT): COMMENT_LABEL,
    int(NodeKind.PROCESSING_INSTRUCTION): PI_LABEL,
}

EDGE_TABLE = Table(
    name="edge",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("source", INTEGER, nullable=False),
        Column("ordinal", INTEGER, nullable=False),
        Column("label", TEXT, nullable=False),
        Column("kind", INTEGER, nullable=False),
        Column("target", INTEGER, nullable=False),
        Column("value", TEXT),
        Column("content", TEXT),
    ],
    primary_key=("doc_id", "target"),
    indexes=[
        Index("edge_source", "edge", ("doc_id", "source", "ordinal")),
        Index("edge_label", "edge", ("doc_id", "label", "source")),
        Index("edge_content", "edge", ("doc_id", "label", "content")),
        Index("edge_value", "edge", ("doc_id", "label", "value")),
    ],
)


def edge_label(record: NodeRecord) -> str:
    """The edge label of one stored node.

    Processing instructions keep their target inside the label
    (``#pi:target``) so reconstruction is lossless.
    """
    if record.kind in (int(NodeKind.ELEMENT), int(NodeKind.ATTRIBUTE)):
        return record.name or ""
    if record.kind == int(NodeKind.PROCESSING_INSTRUCTION):
        return f"{PI_LABEL}:{record.name}"
    return _KIND_LABELS[record.kind]


def label_to_name(label: str, kind: int) -> str | None:
    """Invert :func:`edge_label` back to the node's name."""
    if kind in (int(NodeKind.ELEMENT), int(NodeKind.ATTRIBUTE)):
        return label
    if kind == int(NodeKind.PROCESSING_INSTRUCTION):
        return label.split(":", 1)[1] if ":" in label else label
    return None


def order_edge_rows(
    rows: list[tuple], root_pre: int | None
) -> list[NodeRecord]:
    """Turn raw edge rows into records in *document* order.

    Node ids equal document order only until the first update; after
    inserts the true order is (parent, ordinal), so the rows are sorted
    by a DFS over the parent/ordinal structure — correct in both states.
    """
    children: dict[int, list[tuple]] = {}
    for row in rows:
        target, source, ordinal, label, kind, value = row
        children.setdefault(source, []).append(row)
    for siblings in children.values():
        siblings.sort(key=lambda row: (row[2], row[0]))  # (ordinal, id)
    records: list[NodeRecord] = []
    if root_pre is not None:
        roots = [row for row in rows if row[0] == root_pre]
    else:
        roots = children.get(0, [])
    stack = list(reversed(roots))
    while stack:
        target, source, ordinal, label, kind, value = stack.pop()
        records.append(
            NodeRecord(
                pre=target,
                post=0,
                size=0,
                level=0,
                kind=kind,
                name=label_to_name(label, kind),
                value=value,
                parent_pre=source,
                ordinal=ordinal,
                dewey="",
            )
        )
        stack.extend(reversed(children.get(target, [])))
    return records


def fetch_edge_subtrees(
    db, relation: str, doc_id: int, pres: list[int]
) -> dict[int, list[NodeRecord]]:
    """Batched subtree fetch over an edge-shaped *relation* (the ``edge``
    table, or binary's ``binary_edges`` view).

    One recursive CTE per batch, seeded by *all* roots at once; the seed
    tags each row with its root and the recursive arm propagates the tag,
    so the result groups per root without per-root round-trips.  A record
    under two nested roots comes back once per root — exactly what
    per-root fetches would return.
    """
    groups: dict[int, list[NodeRecord]] = {}
    for batch in iter_batches(pres):
        marks = ", ".join("?" for _ in batch)
        rows = db.query(
            f"""
            WITH RECURSIVE subtree(root, target, source, ordinal, label,
                                   kind, value) AS (
              SELECT target, target, source, ordinal, label, kind, value
              FROM {relation} WHERE doc_id = ? AND target IN ({marks})
              UNION ALL
              SELECT s.root, e.target, e.source, e.ordinal, e.label,
                     e.kind, e.value
              FROM {relation} e JOIN subtree s ON e.source = s.target
              WHERE e.doc_id = ?
            )
            SELECT root, target, source, ordinal, label, kind, value
            FROM subtree ORDER BY root, target
            """,
            [doc_id, *batch, doc_id],
        )
        per_root: dict[int, list[tuple]] = {}
        for root, *edge_row in rows:
            per_root.setdefault(root, []).append(tuple(edge_row))
        for root, edge_rows in per_root.items():
            groups[root] = order_edge_rows(edge_rows, root)
    return groups


class _EdgeStreamInserter(StreamInserter):
    """Constant-memory row sink: every completed node is one edge row."""

    def __init__(self, scheme, doc_id):
        super().__init__(scheme, doc_id)
        self._rows: list[tuple] = []
        self._count = 0

    def add(self, r, content):
        self._rows.append(
            (self.doc_id, r.parent_pre, r.ordinal, edge_label(r),
             r.kind, r.pre, r.value, content)
        )
        if len(self._rows) >= STREAM_BATCH:
            self._flush()

    def _flush(self):
        self.scheme.db.insert_rows(EDGE_TABLE, self._rows)
        self._count += len(self._rows)
        self._rows.clear()

    def finish(self):
        self._flush()
        return {EDGE_TABLE.name: self._count}


class EdgeScheme(MappingScheme):
    """The single-edge-table mapping."""

    name = "edge"

    def tables(self):
        return [EDGE_TABLE]

    def stream_inserter(self, doc_id):
        return _EdgeStreamInserter(self, doc_id)

    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        contents = element_content(records)
        rows = (
            (
                doc_id,
                r.parent_pre,
                r.ordinal,
                edge_label(r),
                r.kind,
                r.pre,
                r.value,
                contents.get(r.pre),
            )
            for r in records
        )
        self.db.insert_rows(EDGE_TABLE, rows)
        return {EDGE_TABLE.name: len(records)}

    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        if root_pre is None:
            rows = self.db.query(
                "SELECT target, source, ordinal, label, kind, value "
                "FROM edge WHERE doc_id = ? ORDER BY target",
                (doc_id,),
            )
        else:
            # No region encoding: the subtree must be collected by
            # repeated parent→child joins (a recursive CTE) — the
            # reconstruction cost experiment E6 measures exactly this.
            rows = self.db.query(
                """
                WITH RECURSIVE subtree(target, source, ordinal, label,
                                       kind, value) AS (
                  SELECT target, source, ordinal, label, kind, value
                  FROM edge WHERE doc_id = ? AND target = ?
                  UNION ALL
                  SELECT e.target, e.source, e.ordinal, e.label, e.kind,
                         e.value
                  FROM edge e JOIN subtree s ON e.source = s.target
                  WHERE e.doc_id = ?
                )
                SELECT * FROM subtree ORDER BY target
                """,
                (doc_id, root_pre, doc_id),
            )
        return order_edge_rows(rows, root_pre)

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        return fetch_edge_subtrees(self.db, "edge", doc_id, pres)

    def _delete_rows(self, doc_id: int) -> None:
        self.db.execute("DELETE FROM edge WHERE doc_id = ?", (doc_id,))

    def _audit_document(self, doc_id, record, report, records) -> None:
        rows = self.db.query(
            "SELECT source, target FROM edge WHERE doc_id = ?", (doc_id,)
        )
        audit_edge_structure(rows, report)

    def translator(self):
        from repro.query.translate_edge import EdgeTranslator

        return EdgeTranslator(self)


def audit_edge_structure(
    rows: list[tuple[int, int]], report
) -> None:
    """Shared edge/binary invariant: the (source → target) graph is a
    forest rooted at source 0 — connected (every row reachable from 0)
    and therefore acyclic, since target ids are unique."""
    report.ran("edge-connected")
    children: dict[int, list[int]] = {}
    targets = set()
    for source, target in rows:
        children.setdefault(source, []).append(target)
        targets.add(target)
    reached: set[int] = set()
    stack = list(children.get(0, []))
    while stack:
        node = stack.pop()
        if node in reached:
            continue
        reached.add(node)
        stack.extend(children.get(node, []))
    stranded = targets - reached
    if stranded:
        report.add(
            "edge-connected",
            f"{len(stranded)} row(s) unreachable from the document "
            f"root (cycle or dangling source): "
            f"{sorted(stranded)[:10]}",
        )
