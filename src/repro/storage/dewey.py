"""Dewey-order mapping (Tatarinov et al., SIGMOD 2002).

Every node is labelled with the path of sibling ordinals from the root
("1.3.2"), stored zero-padded so that

* lexicographic order on labels  ==  document order, and
* label prefix-of               ==  ancestor-of.

.. code-block:: text

    dewey(doc_id, label, parent_label, depth, kind, name, value, content,
          pre, ordinal)

A child step is an equality join on ``parent_label``; a descendant step is
an *index-friendly prefix scan* (``label > p AND label < p || ';'`` — the
standard string-range trick, since ``'.' < ';'`` in ASCII).  Updates only
relabel the inserted node's following siblings' subtrees, not the whole
document — the property experiment E7 measures against the interval
scheme's full renumbering.
"""

from __future__ import annotations

from repro.relational.schema import Column, INTEGER, Index, Table, TEXT
from repro.storage.base import (
    STREAM_BATCH,
    MappingScheme,
    StreamInserter,
    iter_batches,
)
from repro.storage.interval import element_content
from repro.storage.numbering import (
    DEWEY_SEPARATOR,
    NodeRecord,
    dewey_parent,
)
from repro.xml.dom import Document

# The smallest character strictly greater than the separator '.' — used to
# close prefix ranges: descendants of label p are in (p + '.', p + '/').
PREFIX_RANGE_END = chr(ord(DEWEY_SEPARATOR) + 1)

DEWEY_TABLE = Table(
    name="dewey",
    columns=[
        Column("doc_id", INTEGER, nullable=False),
        Column("label", TEXT, nullable=False),
        Column("parent_label", TEXT),
        Column("depth", INTEGER, nullable=False),
        Column("kind", INTEGER, nullable=False),
        Column("name", TEXT),
        Column("value", TEXT),
        Column("content", TEXT),
        Column("pre", INTEGER, nullable=False),
        Column("ordinal", INTEGER, nullable=False),
    ],
    primary_key=("doc_id", "label"),
    indexes=[
        Index("dewey_name", "dewey", ("doc_id", "name", "label")),
        Index("dewey_parent", "dewey", ("doc_id", "parent_label")),
        Index("dewey_pre", "dewey", ("doc_id", "pre")),
        Index("dewey_value", "dewey", ("doc_id", "name", "value")),
        Index("dewey_content", "dewey", ("doc_id", "name", "content")),
    ],
)


def prefix_range(label: str) -> tuple[str, str]:
    """The (lo, hi) label range containing exactly the descendants of
    *label*: ``lo < descendant.label < hi``."""
    return label + DEWEY_SEPARATOR, label + PREFIX_RANGE_END


class _DeweyStreamInserter(StreamInserter):
    """Constant-memory row sink: every completed node is one dewey row."""

    def __init__(self, scheme, doc_id):
        super().__init__(scheme, doc_id)
        self._rows: list[tuple] = []
        self._count = 0

    def add(self, r, content):
        self._rows.append(
            (self.doc_id, r.dewey, dewey_parent(r.dewey), r.level,
             r.kind, r.name, r.value, content, r.pre, r.ordinal)
        )
        if len(self._rows) >= STREAM_BATCH:
            self._flush()

    def _flush(self):
        self.scheme.db.insert_rows(DEWEY_TABLE, self._rows)
        self._count += len(self._rows)
        self._rows.clear()

    def finish(self):
        self._flush()
        return {DEWEY_TABLE.name: self._count}


class DeweyScheme(MappingScheme):
    """The Dewey order-label mapping."""

    name = "dewey"

    def tables(self):
        return [DEWEY_TABLE]

    def stream_inserter(self, doc_id):
        return _DeweyStreamInserter(self, doc_id)

    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        contents = element_content(records)
        rows = (
            (
                doc_id,
                r.dewey,
                dewey_parent(r.dewey),
                r.level,
                r.kind,
                r.name,
                r.value,
                contents.get(r.pre),
                r.pre,
                r.ordinal,
            )
            for r in records
        )
        self.db.insert_rows(DEWEY_TABLE, rows)
        return {DEWEY_TABLE.name: len(records)}

    @staticmethod
    def _rows_to_records(rows) -> list[NodeRecord]:
        """Convert label-ordered dewey rows to records, recovering each
        node's parent pre from the labels seen so far (a subtree root's
        parent is outside the fetched set and maps to 0)."""
        records = []
        parent_of: dict[str, int] = {}
        for pre, label, depth, kind, name, value, ordinal in rows:
            parent_label = dewey_parent(label)
            parent_pre = parent_of.get(parent_label or "", 0)
            parent_of[label] = pre
            records.append(
                NodeRecord(
                    pre=pre,
                    post=0,
                    size=0,
                    level=depth,
                    kind=kind,
                    name=name,
                    value=value,
                    parent_pre=parent_pre,
                    ordinal=ordinal,
                    dewey=label,
                )
            )
        return records

    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        if root_pre is None:
            rows = self.db.query(
                "SELECT pre, label, depth, kind, name, value, ordinal "
                "FROM dewey WHERE doc_id = ? ORDER BY label",
                (doc_id,),
            )
        else:
            root = self.db.query_one(
                "SELECT label FROM dewey WHERE doc_id = ? AND pre = ?",
                (doc_id, root_pre),
            )
            if root is None:
                return []
            (label,) = root
            lo, hi = prefix_range(label)
            # Self plus one prefix range scan over the ordered index.
            rows = self.db.query(
                "SELECT pre, label, depth, kind, name, value, ordinal "
                "FROM dewey WHERE doc_id = ? "
                "AND (label = ? OR (label > ? AND label < ?)) "
                "ORDER BY label",
                (doc_id, label, lo, hi),
            )
        return self._rows_to_records(rows)

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        # One self-join per batch: each root row's label opens its own
        # prefix range (self OR strict-prefix), tagging every fetched row
        # with the root's pre.  Parent recovery runs per root group, as
        # the per-root fetch would.
        groups: dict[int, list[NodeRecord]] = {}
        for batch in iter_batches(pres):
            marks = ", ".join("?" for _ in batch)
            rows = self.db.query(
                "SELECT r.pre, d.pre, d.label, d.depth, d.kind, d.name, "
                "d.value, d.ordinal "
                "FROM dewey AS r JOIN dewey AS d ON d.doc_id = r.doc_id "
                "AND (d.label = r.label OR (d.label > r.label || ? "
                "AND d.label < r.label || ?)) "
                f"WHERE r.doc_id = ? AND r.pre IN ({marks}) "
                "ORDER BY r.pre, d.label",
                [DEWEY_SEPARATOR, PREFIX_RANGE_END, doc_id, *batch],
            )
            per_root: dict[int, list[tuple]] = {}
            for root, *node_row in rows:
                per_root.setdefault(root, []).append(tuple(node_row))
            for root, node_rows in per_root.items():
                groups[root] = self._rows_to_records(node_rows)
        return groups

    def _delete_rows(self, doc_id: int) -> None:
        self.db.execute("DELETE FROM dewey WHERE doc_id = ?", (doc_id,))

    def _audit_document(self, doc_id, record, report, records) -> None:
        rows = self.db.query(
            "SELECT label, parent_label, depth FROM dewey "
            "WHERE doc_id = ? ORDER BY label",
            (doc_id,),
        )
        labels = {label for label, __, __ in rows}
        report.ran("dewey-prefix-closed")
        report.ran("dewey-depth")
        for label, parent_label, depth in rows:
            expected_parent = dewey_parent(label)
            if parent_label != expected_parent:
                report.add(
                    "dewey-prefix-closed",
                    f"label {label!r} records parent {parent_label!r}, "
                    f"expected {expected_parent!r}",
                )
            elif parent_label is not None and parent_label not in labels:
                report.add(
                    "dewey-prefix-closed",
                    f"label {label!r} has no stored ancestor "
                    f"{parent_label!r} (prefix closure broken)",
                )
            components = label.count(DEWEY_SEPARATOR) + 1
            if depth != components:
                report.add(
                    "dewey-depth",
                    f"label {label!r} has {components} component(s) "
                    f"but depth {depth}",
                )

    def translator(self):
        from repro.query.translate_dewey import DeweyTranslator

        return DeweyTranslator(self)
