"""Expansion of relation elements into concrete tables.

Each relation element becomes one table:

.. code-block:: text

    r_<element>(doc_id, pre, parent_pre, ordinal,
                [content, content_pre,]          -- PCDATA-capable only
                a_<attr>_val, a_<attr>_pre, ...  -- own attributes
                e_<path>_pre,                    -- each inlined element
                [e_<path>_val, e_<path>_val_pre,]
                a_<path>_<attr>_val/_pre, ...)   -- its attributes

``pre`` ids are the scheme-independent node ids; ``parent_pre`` is the
pre of the element's *immediate* parent element (which may itself be an
inlined position of another relation — the query translator knows which
column to join against).  Every inlined element also stores its node id,
so query answers remain comparable across schemes even for elements that
never got a table of their own.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

from repro.errors import SchemaMappingError
from repro.relational.schema import Column, INTEGER, Index, Table, TEXT
from repro.storage.inlining.graph import (
    DtdGraph,
    SHARED,
    decide_relations,
)
from repro.xml.contentmodel import SIMPLE_STAR
from repro.xml.dtd import Dtd

_SANITIZE_RE = re.compile(r"[^a-z0-9_]+")
_MAX_INLINE_DEPTH = 32


def _sanitize(name: str) -> str:
    return _SANITIZE_RE.sub("_", name.lower()).strip("_") or "x"


def relation_table_name(element: str) -> str:
    digest = hashlib.sha1(element.encode()).hexdigest()[:8]
    return f"r_{_sanitize(element)[:24]}_{digest}"


@dataclass
class InlinedPosition:
    """One element position inside a relation (path () = the root)."""

    relation_element: str
    path: tuple[str, ...]
    element: str
    quantifier: str                   # '1' for the root position
    pre_column: str                   # 'pre' at the root
    content_column: str | None = None
    content_pre_column: str | None = None
    attr_columns: dict[str, tuple[str, str]] = field(default_factory=dict)
    inlined_children: dict[str, tuple[str, ...]] = field(default_factory=dict)
    relation_children: dict[str, str] = field(default_factory=dict)
    # relation_children: child element -> quantifier

    @property
    def is_root(self) -> bool:
        return not self.path


@dataclass
class Relation:
    """One generated relation and its inlined positions."""

    element: str
    table: Table
    positions: dict[tuple[str, ...], InlinedPosition]

    @property
    def root(self) -> InlinedPosition:
        return self.positions[()]

    @property
    def column_count(self) -> int:
        return len(self.table.columns)


@dataclass
class Mapping:
    """The full relational mapping of one DTD under one strategy."""

    dtd: Dtd
    strategy: str
    graph: DtdGraph
    relations: dict[str, Relation]

    @property
    def relation_count(self) -> int:
        return len(self.relations)

    @property
    def total_columns(self) -> int:
        return sum(r.column_count for r in self.relations.values())

    def relation_of(self, element: str) -> Relation | None:
        return self.relations.get(element)

    def positions_of_element(
        self, element: str
    ) -> list[InlinedPosition]:
        """Every position (own relation or inlined) holding *element*."""
        found: list[InlinedPosition] = []
        for relation in self.relations.values():
            for position in relation.positions.values():
                if position.element == element:
                    found.append(position)
        return found

    def fragmented_elements(self) -> set[str]:
        """Elements stored as their own relations (require a join to
        reach from their parent) — the paper's fragmentation measure."""
        return set(self.relations)


def build_mapping(dtd: Dtd, strategy: str = SHARED) -> Mapping:
    """Run the inlining algorithm over *dtd* and return the mapping."""
    graph = DtdGraph.from_dtd(dtd)
    for element in graph.elements():
        if graph.is_mixed_with_elements(element):
            raise SchemaMappingError(
                f"element {element!r} has mixed content with element "
                "names — outside the inlining mapping's data-centric scope"
            )
    relation_elements = decide_relations(graph, strategy)
    relations: dict[str, Relation] = {}
    for element in graph.elements():
        if element in relation_elements:
            relations[element] = _expand_relation(
                element, graph, relation_elements
            )
    return Mapping(dtd, strategy, graph, relations)


def _expand_relation(
    element: str, graph: DtdGraph, relation_elements: set[str]
) -> Relation:
    columns: list[Column] = [
        Column("doc_id", INTEGER, nullable=False),
        Column("pre", INTEGER, nullable=False),
        Column("parent_pre", INTEGER, nullable=False),
        Column("ordinal", INTEGER, nullable=False),
    ]
    used_names = {c.name for c in columns}

    def claim(base: str) -> str:
        name = base
        counter = 2
        while name in used_names:
            name = f"{base}{counter}"
            counter += 1
        used_names.add(name)
        return name

    positions: dict[tuple[str, ...], InlinedPosition] = {}

    def expand(path: tuple[str, ...], name: str, quantifier: str) -> None:
        if len(path) > _MAX_INLINE_DEPTH:
            raise SchemaMappingError(
                f"inlining depth exceeded expanding {element!r}"
            )
        prefix = "_".join(_sanitize(p) for p in path)
        if path:
            pre_column = claim(f"e_{prefix}_pre")
        else:
            pre_column = "pre"
        position = InlinedPosition(
            relation_element=element,
            path=path,
            element=name,
            quantifier=quantifier,
            pre_column=pre_column,
        )
        if path:
            columns.append(Column(pre_column, INTEGER))
        if graph.is_pcdata_capable(name):
            base = f"e_{prefix}_val" if path else "content"
            position.content_column = claim(base)
            position.content_pre_column = claim(base + "_pre")
            columns.append(Column(position.content_column, TEXT))
            columns.append(Column(position.content_pre_column, INTEGER))
        for attr in graph.attributes_of(name):
            attr_base = (
                f"a_{prefix}_{_sanitize(attr.name)}"
                if path
                else f"a_{_sanitize(attr.name)}"
            )
            val_column = claim(attr_base + "_val")
            pre_column_attr = claim(attr_base + "_pre")
            position.attr_columns[attr.name] = (val_column, pre_column_attr)
            columns.append(Column(val_column, TEXT))
            columns.append(Column(pre_column_attr, INTEGER))
        positions[path] = position
        for child, child_quantifier in graph.fields.get(name, []):
            if child in relation_elements or child_quantifier == SIMPLE_STAR:
                position.relation_children[child] = child_quantifier
            else:
                child_path = path + (child,)
                position.inlined_children[child] = child_path
                expand(child_path, child, child_quantifier)

    expand((), element, "1")
    table_name = relation_table_name(element)
    table = Table(
        name=table_name,
        columns=columns,
        primary_key=("doc_id", "pre"),
        indexes=[
            Index(f"{table_name}_parent", table_name,
                  ("doc_id", "parent_pre")),
        ],
    )
    return Relation(element=element, table=table, positions=positions)
