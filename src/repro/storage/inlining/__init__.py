"""DTD-driven inlining mapping (Shanmugasundaram et al., VLDB 1999).

Pipeline:

1. :mod:`repro.storage.inlining.graph` — build the DTD graph from the
   simplified content models and decide, per strategy (``basic`` /
   ``shared`` / ``hybrid``), which elements get their own relations;
2. :mod:`repro.storage.inlining.mapping` — expand each relation element
   into a concrete table: inlined descendants become columns, set-valued
   or shared children become child relations linked by parent ids;
3. :mod:`repro.storage.inlining.scheme` — the
   :class:`~repro.storage.base.MappingScheme` that shreds DTD-conforming
   documents into those tables and reconstructs them.

``shared`` (the paper's recommended strategy) and ``hybrid`` are fully
storable and queryable; ``basic`` is exposed for the structural
comparison in experiment E9 only (the paper itself shows why it is
impractical to populate).
"""

from repro.storage.inlining.graph import (
    BASIC,
    DtdGraph,
    HYBRID,
    SHARED,
    decide_relations,
)
from repro.storage.inlining.mapping import Mapping, build_mapping
from repro.storage.inlining.scheme import InliningScheme

__all__ = [
    "BASIC",
    "DtdGraph",
    "HYBRID",
    "InliningScheme",
    "Mapping",
    "SHARED",
    "build_mapping",
    "decide_relations",
]
