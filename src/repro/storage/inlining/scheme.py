"""The inlining :class:`~repro.storage.base.MappingScheme`.

One scheme instance serves one DTD (persisted in ``inline_schema`` so a
reopened database rebuilds the identical mapping).  Stored documents must
conform to that DTD's data-centric subset: element or PCDATA content (no
mixed-with-elements models), no comments or processing instructions, and
child multiplicities within the simplified quantifiers.  Violations raise
:class:`~repro.errors.SchemaMappingError`/``StorageError`` at store time
rather than silently corrupting the mapping.
"""

from __future__ import annotations

from repro.errors import SchemaMappingError, StorageError
from repro.relational.database import Database
from repro.relational.schema import Column, INTEGER, Table, TEXT, quote_identifier
from repro.storage.base import MappingScheme
from repro.storage.inlining.graph import SHARED, STRATEGIES
from repro.storage.inlining.mapping import (
    InlinedPosition,
    Mapping,
    build_mapping,
)
from repro.storage.numbering import NodeRecord
from repro.xml.dom import (
    Comment,
    Document,
    Element,
    NodeKind,
    ProcessingInstruction,
    Text,
)
from repro.xml.dtd import Dtd, dtd_to_text, parse_dtd

SCHEMA_TABLE = Table(
    name="inline_schema",
    columns=[
        Column("schema_id", INTEGER, primary_key=True),
        Column("strategy", TEXT, nullable=False),
        Column("root_name", TEXT),
        Column("dtd_text", TEXT, nullable=False),
    ],
)


class InliningScheme(MappingScheme):
    """DTD-driven shared/hybrid inlining."""

    name = "inlining"

    #: Insignificant whitespace text is (legitimately) not stored, so
    #: fetched rows may undercount the catalog's node count.
    lossless_node_count = False

    def __init__(
        self,
        db: Database,
        dtd: Dtd | None = None,
        strategy: str = SHARED,
    ) -> None:
        if strategy not in STRATEGIES:
            raise SchemaMappingError(f"unknown inlining strategy: {strategy}")
        if strategy == "basic":
            raise SchemaMappingError(
                "the basic strategy is structural-comparison only "
                "(see experiment E9); store with 'shared' or 'hybrid'"
            )
        self._dtd = dtd
        self.strategy = strategy
        self.mapping: Mapping | None = None
        super().__init__(db)

    # -- schema ----------------------------------------------------------------

    def tables(self) -> list[Table]:
        tables = [SCHEMA_TABLE]
        if self.mapping is not None:
            tables += [r.table for r in self.mapping.relations.values()]
        return tables

    def create_schema(self) -> None:
        self.db.create_table(SCHEMA_TABLE)
        if self._dtd is None:
            self._load_persisted_schema()
        else:
            self._install_dtd(self._dtd)
        if self.mapping is not None:
            for relation in self.mapping.relations.values():
                self.db.create_table(relation.table)

    def _load_persisted_schema(self) -> None:
        row = self.db.query_one(
            "SELECT strategy, root_name, dtd_text FROM inline_schema "
            "ORDER BY schema_id LIMIT 1"
        )
        if row is None:
            return  # no DTD yet; store() will demand one
        strategy, root_name, dtd_text = row
        self.strategy = strategy
        dtd = parse_dtd(dtd_text, root_name=root_name)
        self._dtd = dtd
        self.mapping = build_mapping(dtd, strategy)

    def _install_dtd(self, dtd: Dtd) -> None:
        persisted = self.db.query_one(
            "SELECT strategy, root_name, dtd_text FROM inline_schema "
            "ORDER BY schema_id LIMIT 1"
        )
        if persisted is None:
            self.db.execute(
                "INSERT INTO inline_schema (strategy, root_name, dtd_text) "
                "VALUES (?, ?, ?)",
                (self.strategy, dtd.root_name, dtd_to_text(dtd)),
            )
        elif (persisted[0], persisted[2]) != (
            self.strategy, dtd_to_text(dtd)
        ):
            raise SchemaMappingError(
                "database already holds a different inlining schema"
            )
        self.mapping = build_mapping(dtd, self.strategy)

    def require_mapping(self) -> Mapping:
        if self.mapping is None:
            raise SchemaMappingError(
                "no DTD installed: construct InliningScheme with a dtd"
            )
        return self.mapping

    # -- shredding ------------------------------------------------------------------

    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        mapping = self.require_mapping()
        for node in document.iter():
            if isinstance(node, (Comment, ProcessingInstruction)):
                raise StorageError(
                    "inlining stores data-centric documents only "
                    "(no comments/processing instructions)"
                )
        ordinal_of = {r.pre: r.ordinal for r in records}
        root = document.root_element
        if mapping.relation_of(root.tag) is None:
            raise SchemaMappingError(
                f"document root {root.tag!r} has no relation in the mapping"
            )
        rows: dict[str, list[dict[str, object]]] = {}

        def store_instance(element: Element, parent_pre: int) -> None:
            relation = mapping.relations[element.tag]
            row: dict[str, object] = {
                "doc_id": doc_id,
                "parent_pre": parent_pre,
                "ordinal": ordinal_of[element.order_key],
            }
            fill_position(relation.root, element, row)
            rows.setdefault(relation.table.name, []).append(row)

        def fill_position(
            position: InlinedPosition, element: Element, row: dict
        ) -> None:
            pre = element.order_key
            row[position.pre_column] = pre
            self._fill_text(position, element, row)
            self._fill_attributes(position, element, row)
            for child in element.children:
                if isinstance(child, Text):
                    continue
                assert isinstance(child, Element)
                name = child.tag
                if name in position.inlined_children:
                    child_position = mapping.relations[
                        position.relation_element
                    ].positions[position.inlined_children[name]]
                    if row.get(child_position.pre_column) is not None:
                        raise StorageError(
                            f"element {element.tag!r} has multiple "
                            f"{name!r} children but the DTD allows one"
                        )
                    fill_position(child_position, child, row)
                elif name in position.relation_children:
                    store_instance(child, pre)
                elif mapping.relation_of(name) is not None and (
                    self._allows_any(position.element)
                ):
                    store_instance(child, pre)
                else:
                    raise SchemaMappingError(
                        f"child {name!r} of {position.element!r} is not "
                        "allowed by the installed DTD"
                    )

        store_instance(root, 0)
        row_counts: dict[str, int] = {}
        for table_name, table_rows in rows.items():
            relation = next(
                r for r in mapping.relations.values()
                if r.table.name == table_name
            )
            columns = relation.table.column_names
            self.db.executemany(
                f"INSERT INTO {quote_identifier(table_name)} "
                f"({', '.join(columns)}) VALUES "
                f"({', '.join('?' for _ in columns)})",
                [
                    tuple(row.get(column) for column in columns)
                    for row in table_rows
                ],
            )
            row_counts[table_name] = len(table_rows)
        return row_counts

    def _allows_any(self, element: str) -> bool:
        mapping = self.require_mapping()
        return mapping.dtd.elements[element].model.is_any

    def _fill_text(
        self, position: InlinedPosition, element: Element, row: dict
    ) -> None:
        texts = [c for c in element.children if isinstance(c, Text)]
        significant = [t for t in texts if not t.is_whitespace]
        if position.content_column is None:
            if significant:
                raise SchemaMappingError(
                    f"element {element.tag!r} carries text but its model "
                    f"({position.element}) has element content"
                )
            return
        if texts:
            row[position.content_column] = "".join(t.data for t in texts)
            row[position.content_pre_column] = texts[0].order_key

    def _fill_attributes(
        self, position: InlinedPosition, element: Element, row: dict
    ) -> None:
        for attribute in element.attributes:
            columns = position.attr_columns.get(attribute.name)
            if columns is None:
                raise SchemaMappingError(
                    f"attribute {attribute.name!r} of {element.tag!r} "
                    "is not declared in the installed DTD"
                )
            val_column, pre_column = columns
            row[val_column] = attribute.value
            row[pre_column] = attribute.order_key

    # -- retrieval --------------------------------------------------------------------

    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        mapping = self.require_mapping()
        records: list[NodeRecord] = []
        for relation in mapping.relations.values():
            columns = relation.table.column_names
            table_rows = self.db.query(
                f"SELECT {', '.join(columns)} "
                f"FROM {quote_identifier(relation.table.name)} "
                "WHERE doc_id = ?",
                (doc_id,),
            )
            for values in table_rows:
                row = dict(zip(columns, values))
                records += self._row_records(relation, row)
        records.sort(key=lambda r: r.pre)
        if root_pre is None:
            return records
        keep = {root_pre}
        subtree = []
        for record in records:
            if record.pre == root_pre or record.parent_pre in keep:
                keep.add(record.pre)
                subtree.append(record)
        return subtree

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        # Inlined rows have no subtree handle: reconstructing any node's
        # subtree already reads the document's relations, so one full
        # fetch feeds every root's slice.
        if not pres:
            return {}
        return self._subtree_slices(self.fetch_records(doc_id), pres)

    def _row_records(self, relation, row: dict) -> list[NodeRecord]:
        records: list[NodeRecord] = []
        for position in relation.positions.values():
            pre = row.get(position.pre_column)
            if pre is None:
                continue  # optional inlined element absent
            if position.is_root:
                parent_pre = row["parent_pre"]
                ordinal = row["ordinal"]
            else:
                parent_path = position.path[:-1]
                parent_position = relation.positions[parent_path]
                parent_pre = row[parent_position.pre_column]
                ordinal = 0  # order restored by pre sorting
            records.append(
                NodeRecord(
                    pre=pre,
                    post=0,
                    size=0,
                    level=0,
                    kind=int(NodeKind.ELEMENT),
                    name=position.element,
                    value=None,
                    parent_pre=parent_pre,
                    ordinal=ordinal,
                    dewey="",
                )
            )
            for attr_name, (val_col, pre_col) in position.attr_columns.items():
                attr_pre = row.get(pre_col)
                if attr_pre is None:
                    continue
                records.append(
                    NodeRecord(
                        pre=attr_pre, post=0, size=0, level=0,
                        kind=int(NodeKind.ATTRIBUTE), name=attr_name,
                        value=row.get(val_col), parent_pre=pre,
                        ordinal=0, dewey="",
                    )
                )
            if position.content_column is not None:
                text_pre = row.get(position.content_pre_column)
                if text_pre is not None:
                    records.append(
                        NodeRecord(
                            pre=text_pre, post=0, size=0, level=0,
                            kind=int(NodeKind.TEXT), name=None,
                            value=row.get(position.content_column),
                            parent_pre=pre, ordinal=0, dewey="",
                        )
                    )
        return records

    def _delete_rows(self, doc_id: int) -> None:
        mapping = self.require_mapping()
        for relation in mapping.relations.values():
            self.db.execute(
                f"DELETE FROM {quote_identifier(relation.table.name)} "
                "WHERE doc_id = ?",
                (doc_id,),
            )

    def _audit_document(self, doc_id, record, report, records) -> None:
        report.ran("inline-schema")
        if self.mapping is None:
            report.add("inline-schema", "no DTD mapping installed")
            return
        persisted = self.db.query_one(
            "SELECT strategy FROM inline_schema ORDER BY schema_id LIMIT 1"
        )
        if persisted is None:
            report.add(
                "inline-schema",
                "mapping in memory but no persisted inline_schema row",
            )
        # Every relation row must anchor to a known parent: parent_pre 0
        # (the root's holder) or the pre of a stored element.
        report.ran("inline-parents")
        known = {r.pre for r in records}
        for relation in self.mapping.relations.values():
            rows = self.db.query(
                f"SELECT {relation.root.pre_column}, parent_pre "
                f"FROM {quote_identifier(relation.table.name)} "
                "WHERE doc_id = ?",
                (doc_id,),
            )
            for pre, parent_pre in rows:
                if parent_pre and parent_pre not in known:
                    report.add(
                        "inline-parents",
                        f"row {pre} of {relation.table.name} references "
                        f"missing parent {parent_pre}",
                    )

    def translator(self):
        from repro.query.translate_inlining import InliningTranslator

        return InliningTranslator(self)
