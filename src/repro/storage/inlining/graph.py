"""The DTD graph and the relation-selection strategies.

Nodes are element names; there is an edge ``p → c`` with quantifier ``q``
for every field ``(c, q)`` of ``p``'s *simplified* content model (the
normalization of :func:`repro.xml.contentmodel.simplify`).  On this graph
the three inlining strategies of the paper choose which elements become
relations:

``basic``
    every element gets a relation (each inlining everything reachable) —
    the strawman whose relation count explodes;
``shared``
    a relation for: root/unreferenced elements, elements with in-degree
    ≥ 2 (shared), elements reached by a ``*`` edge (set-valued), and
    recursive elements — everything else is inlined into its single
    parent;
``hybrid``
    like shared, but elements that are merely *shared* (in-degree ≥ 2,
    not set-valued, not recursive) are inlined into every parent instead
    — fewer joins, duplicated columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import SchemaMappingError
from repro.xml.contentmodel import SIMPLE_STAR
from repro.xml.dtd import AttributeDecl, Dtd

BASIC = "basic"
SHARED = "shared"
HYBRID = "hybrid"

STRATEGIES = (BASIC, SHARED, HYBRID)


@dataclass
class DtdGraph:
    """Element graph of one DTD."""

    dtd: Dtd
    fields: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    digraph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @classmethod
    def from_dtd(cls, dtd: Dtd) -> "DtdGraph":
        undeclared = dtd.undeclared_references()
        if undeclared:
            raise SchemaMappingError(
                "content models reference undeclared elements: "
                + ", ".join(sorted(undeclared))
            )
        graph = cls(dtd)
        for name, decl in dtd.elements.items():
            graph.fields[name] = decl.simplified()
            graph.digraph.add_node(name)
        for parent, fields in graph.fields.items():
            for child, quantifier in fields:
                graph.digraph.add_edge(parent, child, quantifier=quantifier)
        return graph

    # -- node classifications -------------------------------------------------

    def elements(self) -> list[str]:
        return list(self.dtd.elements)

    def attributes_of(self, element: str) -> list[AttributeDecl]:
        return self.dtd.attributes_of(element)

    def in_degree(self, element: str) -> int:
        """Number of distinct parents referencing *element*."""
        return self.digraph.in_degree(element)

    def set_valued(self) -> set[str]:
        """Elements reached by at least one ``*`` edge."""
        return {
            child
            for __, child, data in self.digraph.edges(data=True)
            if data["quantifier"] == SIMPLE_STAR
        }

    def recursive(self) -> set[str]:
        """Elements on a cycle (including self-loops)."""
        result: set[str] = set()
        for component in nx.strongly_connected_components(self.digraph):
            if len(component) > 1:
                result |= component
        result |= {
            node for node in self.digraph.nodes
            if self.digraph.has_edge(node, node)
        }
        return result

    def roots(self) -> set[str]:
        """Unreferenced elements (potential document roots)."""
        return {
            node for node in self.digraph.nodes if self.in_degree(node) == 0
        }

    def quantifier(self, parent: str, child: str) -> str | None:
        data = self.digraph.get_edge_data(parent, child)
        return data["quantifier"] if data else None

    def is_pcdata_capable(self, element: str) -> bool:
        """True if *element* may directly contain text."""
        model = self.dtd.elements[element].model
        return model.is_mixed or model.is_any

    def is_mixed_with_elements(self, element: str) -> bool:
        """Mixed content with element names — unstorable by inlining."""
        model = self.dtd.elements[element].model
        return model.is_mixed and bool(model.mixed_names)


def decide_relations(graph: DtdGraph, strategy: str = SHARED) -> set[str]:
    """The element names that get their own relation under *strategy*."""
    if strategy not in STRATEGIES:
        raise SchemaMappingError(f"unknown inlining strategy: {strategy}")
    if strategy == BASIC:
        return set(graph.elements())
    relations = graph.roots() | graph.set_valued() | graph.recursive()
    if graph.dtd.root_name and graph.dtd.root_name in graph.fields:
        relations.add(graph.dtd.root_name)
    if strategy == SHARED:
        relations |= {
            node for node in graph.digraph.nodes if graph.in_degree(node) >= 2
        }
    if not relations:
        # Degenerate single-element DTDs and pure chains: the root set is
        # non-empty whenever the DTD is acyclic, but a fully cyclic DTD
        # with no root would land here.
        relations = set(graph.elements()[:1])
    return relations
