"""The storage-scheme interface all mappings implement.

A :class:`MappingScheme` owns a set of relations inside one
:class:`~repro.relational.database.Database` and knows how to:

* ``store`` a document (shred it into rows),
* ``reconstruct`` a document or any subtree (publishing),
* ``delete`` a stored document,
* translate the XPath subset to SQL over its relations (via
  :meth:`translator`), returning matching nodes as their ``pre`` numbers
  — the scheme-independent node ids from
  :mod:`repro.storage.numbering`.

The shared ``pre`` ids are what make differential testing and the
benchmark suite scheme-agnostic: every scheme answers the same query with
the same set of integers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import StorageError, UnsupportedQueryError
from repro.relational.catalog import Catalog, DocumentRecord
from repro.relational.database import Database
from repro.relational.schema import Table
from repro.reliability.audit import IntegrityReport
from repro.storage.numbering import (
    NodeRecord,
    build_document,
    build_subtree,
    number_document,
)
from repro.xml.dom import Document, Node


@dataclass(frozen=True)
class ShredResult:
    """Outcome of storing one document."""

    doc_id: int
    node_count: int
    row_counts: dict[str, int]

    @property
    def total_rows(self) -> int:
        return sum(self.row_counts.values())


class MappingScheme(abc.ABC):
    """Abstract base of all XML→relational mappings."""

    #: Registry name of the scheme (e.g. ``"edge"``).
    name: ClassVar[str] = ""

    #: Whether the scheme stores every numbered node (the audit then
    #: demands an exact catalog count match).  Inlining legitimately
    #: drops insignificant whitespace text, so it stores fewer rows
    #: than the catalog's node count and sets this False.
    lossless_node_count: ClassVar[bool] = True

    def __init__(self, db: Database) -> None:
        self.db = db
        self.catalog = Catalog(db)
        self.create_schema()

    # -- schema ----------------------------------------------------------------

    @abc.abstractmethod
    def tables(self) -> list[Table]:
        """The relations of this mapping (static part; some schemes add
        per-label or per-DTD tables dynamically)."""

    def create_schema(self) -> None:
        """Create all (static) relations and their indexes."""
        for table in self.tables():
            self.db.create_table(table)

    def table_names(self) -> list[str]:
        """Names of this scheme's tables that currently exist."""
        return [
            t.name for t in self.tables() if self.db.table_exists(t.name)
        ]

    # -- storing ----------------------------------------------------------------

    def store(self, document: Document, name: str = "document") -> ShredResult:
        """Shred *document* into rows; returns ids and row accounting."""
        tracer = self.db.tracer
        with tracer.span("store") as span:
            if span:
                span.set(scheme=self.name, document=name)
            with tracer.span("shred") as shred_span:
                records = number_document(document)
                if shred_span:
                    shred_span.set(nodes=len(records))
            if not records:
                raise StorageError("refusing to store an empty document")
            root_tag = next(
                (
                    r.name
                    for r in records
                    if r.is_element and r.parent_pre == 0
                ),
                "",
            )
            # The catalog row and the shredded rows commit (or roll
            # back) together: a fault mid-shred must never leave a
            # catalog entry pointing at a partial document.
            with tracer.span("insert"):
                with self.db.transaction():
                    doc_id = self.catalog.register(
                        name, self.name, root_tag or "", len(records)
                    )
                    self._insert_records(doc_id, records, document)
            # Refresh planner statistics: several translations (XRel's
            # path-table-driven plans in particular) rely on the
            # optimizer knowing the relative table sizes.
            with tracer.span("analyze"):
                self.db.analyze()
            row_counts = {
                table: self._doc_row_count(table, doc_id)
                for table in self.table_names()
                if table != "xmlrel_documents"
            }
            if span:
                span.set(doc_id=doc_id, rows=sum(row_counts.values()))
                tracer.metrics.counter("store.documents").inc()
                tracer.metrics.counter("store.nodes_shredded").inc(
                    len(records)
                )
            return ShredResult(doc_id, len(records), row_counts)

    def _doc_row_count(self, table: str, doc_id: int) -> int:
        try:
            return int(
                self.db.scalar(
                    f"SELECT COUNT(*) FROM {table} WHERE doc_id = ?",
                    (doc_id,),
                )
            )
        except StorageError:
            # Table without a doc_id column (e.g. a shared dictionary).
            return int(self.db.row_count(table))

    @abc.abstractmethod
    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> None:
        """Insert the rows for one document (inside a transaction)."""

    # -- retrieval -----------------------------------------------------------------

    @abc.abstractmethod
    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        """Fetch stored node records in pre order.

        With *root_pre*, only the subtree rooted there (inclusive).
        Derived numbering fields a scheme does not store may be zeroed —
        reconstruction only relies on pre/parent_pre/kind/name/value.
        """

    def reconstruct(self, doc_id: int) -> Document:
        """Rebuild the full document from its rows."""
        self.catalog.get(doc_id)  # raises DocumentNotFoundError if absent
        records = self.fetch_records(doc_id)
        if not records:
            raise StorageError(f"document {doc_id} has no stored rows")
        return build_document(records)

    def reconstruct_subtree(self, doc_id: int, pre: int) -> Node:
        """Rebuild the subtree rooted at node *pre*."""
        records = self.fetch_records(doc_id, root_pre=pre)
        if not records:
            raise StorageError(
                f"no stored node with pre={pre} in document {doc_id}"
            )
        return build_subtree(records)

    # -- deletion -----------------------------------------------------------------------

    def delete_document(self, doc_id: int) -> None:
        """Remove all rows of *doc_id* and its catalog entry —
        atomically, so a fault mid-delete leaves the document fully
        present (rows *and* catalog entry)."""
        self.catalog.get(doc_id)
        with self.db.transaction():
            self._delete_rows(doc_id)
            self.catalog.remove(doc_id)

    @abc.abstractmethod
    def _delete_rows(self, doc_id: int) -> None:
        """Delete the scheme's rows for one document."""

    # -- querying ------------------------------------------------------------------------

    @abc.abstractmethod
    def translator(self):
        """The XPath→SQL translator for this scheme
        (:class:`repro.query.translator.BaseTranslator`)."""

    def query_pres(self, doc_id: int, xpath: str) -> list[int]:
        """Run an XPath query via SQL; return matching ``pre`` ids sorted
        in document order."""
        return self.translator().query_pres(doc_id, xpath)

    def query_nodes(self, doc_id: int, xpath: str) -> list[Node]:
        """Run an XPath query via SQL and reconstruct each result node."""
        tracer = self.db.tracer
        with tracer.span("query.nodes") as span:
            pres = self.query_pres(doc_id, xpath)
            with tracer.span("reconstruct") as reconstruct_span:
                nodes = [
                    self.reconstruct_subtree(doc_id, pre) for pre in pres
                ]
                if reconstruct_span:
                    reconstruct_span.set(nodes=len(nodes))
            if span:
                span.set(scheme=self.name, rows=len(nodes))
            return nodes

    # -- integrity audit --------------------------------------------------------------------

    def verify_document(self, doc_id: int) -> IntegrityReport:
        """Audit the stored invariants of document *doc_id*.

        The shredded-XML analogue of ``PRAGMA integrity_check``: the
        generic checks below (catalog consistency, unique/resolvable
        node ids, reconstructability) run for every scheme, then
        :meth:`_audit_document` adds the mapping-specific invariants
        (interval containment, Dewey prefix closure, edge connectivity,
        path referential integrity, ...).  Returns a structured
        :class:`~repro.reliability.audit.IntegrityReport`; auditing a
        corrupted document reports issues instead of raising.
        """
        record = self.catalog.get(doc_id)
        report = IntegrityReport(doc_id=doc_id, scheme=self.name)
        records = self._generic_audit(record, report)
        self._audit_document(doc_id, record, report, records)
        return report

    def _generic_audit(
        self, record: DocumentRecord, report: IntegrityReport
    ) -> list[NodeRecord]:
        doc_id = record.doc_id
        report.ran("fetch")
        try:
            records = self.fetch_records(doc_id)
        except Exception as error:  # corrupt rows may break any layer
            report.add("fetch", f"fetching stored records failed: {error}")
            return []
        report.ran("catalog-count")
        mismatch = (
            len(records) != record.node_count
            if self.lossless_node_count
            else len(records) > record.node_count
        )
        if mismatch:
            report.add(
                "catalog-count",
                f"catalog records {record.node_count} nodes but "
                f"{len(records)} rows were fetched",
            )
        report.ran("unique-ids")
        pres = [r.pre for r in records]
        if len(set(pres)) != len(pres):
            seen: set[int] = set()
            duplicates = {p for p in pres if p in seen or seen.add(p)}
            report.add(
                "unique-ids",
                f"duplicate node ids: {sorted(duplicates)[:10]}",
            )
        report.ran("parents-resolve")
        known = set(pres)
        for r in records:
            if r.parent_pre and r.parent_pre not in known:
                report.add(
                    "parents-resolve",
                    f"node {r.pre} references missing parent "
                    f"{r.parent_pre}",
                )
        report.ran("reconstruct")
        if records and not report.failed("parents-resolve"):
            try:
                build_document(records)
            except Exception as error:  # corrupt rows may break any layer
                report.add(
                    "reconstruct",
                    f"document does not rebuild from its rows: {error}",
                )
        elif not records:
            report.add("reconstruct", "document has no stored rows")
        return records

    def _audit_document(
        self,
        doc_id: int,
        record: DocumentRecord,
        report: IntegrityReport,
        records: list[NodeRecord],
    ) -> None:
        """Scheme-specific invariant checks (override per mapping)."""

    # -- accounting -----------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Logical bytes across this scheme's tables (experiment E1)."""
        return self.db.database_bytes(
            name for name in self.table_names() if name != "xmlrel_documents"
        )

    def storage_cells(self) -> int:
        """Total row×column slots — the width/denormalization measure
        (experiment E1's second metric)."""
        return self.db.database_cells(
            name for name in self.table_names() if name != "xmlrel_documents"
        )

    def unsupported(self, feature: str) -> UnsupportedQueryError:
        """Build a scheme-tagged unsupported-feature error."""
        return UnsupportedQueryError(feature, scheme=self.name)
