"""The storage-scheme interface all mappings implement.

A :class:`MappingScheme` owns a set of relations inside one
:class:`~repro.relational.database.Database` and knows how to:

* ``store`` a document (shred it into rows),
* ``reconstruct`` a document or any subtree (publishing),
* ``delete`` a stored document,
* translate the XPath subset to SQL over its relations (via
  :meth:`translator`), returning matching nodes as their ``pre`` numbers
  — the scheme-independent node ids from
  :mod:`repro.storage.numbering`.

The shared ``pre`` ids are what make differential testing and the
benchmark suite scheme-agnostic: every scheme answers the same query with
the same set of integers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import StorageError, UnsupportedQueryError
from repro.relational.catalog import Catalog, DocumentRecord
from repro.relational.database import Database
from repro.relational.schema import Table
from repro.reliability.audit import IntegrityReport
from repro.storage.numbering import (
    NodeRecord,
    build_document,
    build_subtree,
    number_document,
    shred_into,
)
from repro.xml.dom import Document, Node


#: Batched-fetch statements bind a handful of parameters per subtree
#: root; chunking at this many roots keeps every statement comfortably
#: under SQLite's bind-variable limit.
ROOT_BATCH = 100


def iter_batches(items: list, size: int = ROOT_BATCH):
    """Yield *items* in order as chunks of at most *size*."""
    for start in range(0, len(items), size):
        yield items[start:start + size]


@dataclass(frozen=True)
class ShredResult:
    """Outcome of storing one document."""

    doc_id: int
    node_count: int
    row_counts: dict[str, int]

    @property
    def total_rows(self) -> int:
        return sum(self.row_counts.values())


#: Rows buffered per streaming-insert flush (one ``executemany`` each).
STREAM_BATCH = 2048


class StreamInserter:
    """Per-scheme sink for :func:`~repro.storage.numbering.shred_stream`.

    ``store_stream`` drives one of these per document: :meth:`enter` at
    every element start tag (pre order — the hook order-sensitive side
    tables need), :meth:`add` at every node completion, :meth:`finish`
    once the stream is exhausted.  True-streaming schemes buffer at most
    :data:`STREAM_BATCH` rows; schemes whose row layout needs the whole
    document (universal's leaf chains, inlining's DTD walk) use the
    :class:`BufferedStreamInserter` fallback instead.
    """

    #: True for inserters whose :meth:`enter` does real work (binary's
    #: partition registry, XRel's path dictionary).  ``store_stream``
    #: skips the call entirely when False — one fewer no-op method call
    #: per element on the hot path.
    needs_enter = False

    def __init__(self, scheme: "MappingScheme", doc_id: int) -> None:
        self.scheme = scheme
        self.doc_id = doc_id

    def enter(self, pre: int, name: str, parent_pre: int) -> None:
        """An element opened (called in pre order, before its rows)."""

    def add(self, record: NodeRecord, content: str | None) -> None:
        """One completed node (elements arrive in post order)."""
        raise NotImplementedError

    def finish(self) -> dict[str, int]:
        """Flush remaining rows; return per-table inserted-row counts."""
        raise NotImplementedError


class BufferedStreamInserter(StreamInserter):
    """Fallback inserter: collect every record, then run the scheme's
    ordinary :meth:`MappingScheme._insert_records`.

    Memory is O(document) — the price of schemes that genuinely need
    global context.  ``needs_document`` additionally rebuilds the DOM
    for schemes whose insert path walks it (inlining); universal's
    insert ignores the document, so it skips that copy.
    """

    def __init__(
        self, scheme: "MappingScheme", doc_id: int,
        needs_document: bool = False,
    ) -> None:
        super().__init__(scheme, doc_id)
        self.needs_document = needs_document
        self._records: list[NodeRecord] = []

    def add(self, record: NodeRecord, content: str | None) -> None:
        self._records.append(record)

    def finish(self) -> dict[str, int]:
        self._records.sort(key=lambda r: r.pre)
        document = (
            build_document(self._records) if self.needs_document else None
        )
        return self.scheme._insert_records(
            self.doc_id, self._records, document
        )


class MappingScheme(abc.ABC):
    """Abstract base of all XML→relational mappings."""

    #: Registry name of the scheme (e.g. ``"edge"``).
    name: ClassVar[str] = ""

    #: Whether the scheme stores every numbered node (the audit then
    #: demands an exact catalog count match).  Inlining legitimately
    #: drops insignificant whitespace text, so it stores fewer rows
    #: than the catalog's node count and sets this False.
    lossless_node_count: ClassVar[bool] = True

    #: Whether XPath→SQL translation consults *stored data* (universal's
    #: label columns, binary's partition tables) rather than being a pure
    #: function of the XPath.  Such schemes must invalidate cached plans
    #: whenever a store/delete/update can change that data — see
    #: :meth:`invalidate_plans`.
    translation_depends_on_data: ClassVar[bool] = False

    def __init__(self, db: Database) -> None:
        self.db = db
        self.catalog = Catalog(db)
        #: Generation counter mixed into every plan-cache key.  Bumping
        #: it (see :meth:`invalidate_plans`) makes all older cached
        #: translations for this scheme unreachable.
        self.plan_epoch = 0
        #: Set by :class:`BulkSession` so corpus loads pay one ANALYZE
        #: at session close instead of one per document.
        self._defer_analyze = False
        #: Optional :class:`~repro.analysis.xpathlint.XPathAnalyzer`
        #: consulted by the translator for unsatisfiable-query pruning
        #: and ``//``-expansion (see :meth:`attach_analyzer`).
        self.analyzer = None
        self.create_schema()

    # -- schema ----------------------------------------------------------------

    @abc.abstractmethod
    def tables(self) -> list[Table]:
        """The relations of this mapping (static part; some schemes add
        per-label or per-DTD tables dynamically)."""

    def create_schema(self) -> None:
        """Create all (static) relations and their indexes."""
        for table in self.tables():
            self.db.create_table(table)

    def table_names(self) -> list[str]:
        """Names of this scheme's tables that currently exist."""
        return [
            t.name for t in self.tables() if self.db.table_exists(t.name)
        ]

    # -- storing ----------------------------------------------------------------

    def store(self, document: Document, name: str = "document") -> ShredResult:
        """Shred *document* into rows; returns ids and row accounting."""
        tracer = self.db.tracer
        with tracer.span("store") as span:
            if span:
                span.set(scheme=self.name, document=name)
            with tracer.span("shred") as shred_span:
                records = number_document(document)
                if shred_span:
                    shred_span.set(nodes=len(records))
            if not records:
                raise StorageError("refusing to store an empty document")
            root_tag = next(
                (
                    r.name
                    for r in records
                    if r.is_element and r.parent_pre == 0
                ),
                "",
            )
            # The catalog row and the shredded rows commit (or roll
            # back) together: a fault mid-shred must never leave a
            # catalog entry pointing at a partial document.
            with tracer.span("insert"):
                with self.db.transaction():
                    doc_id = self.catalog.register(
                        name, self.name, root_tag or "", len(records)
                    )
                    # Row accounting comes from the insert side itself —
                    # no per-table COUNT(*) rescans after every store.
                    row_counts = self._insert_records(
                        doc_id, records, document
                    )
            if self.translation_depends_on_data:
                self.invalidate_plans()
            # Refresh planner statistics: several translations (XRel's
            # path-table-driven plans in particular) rely on the
            # optimizer knowing the relative table sizes.  A bulk-load
            # session defers this to its close.
            if not self._defer_analyze:
                with tracer.span("analyze"):
                    self.db.analyze()
            if span:
                span.set(doc_id=doc_id, rows=sum(row_counts.values()))
                tracer.metrics.counter("store.documents").inc()
                tracer.metrics.counter("store.nodes_shredded").inc(
                    len(records)
                )
            return ShredResult(doc_id, len(records), row_counts)

    @abc.abstractmethod
    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        """Insert the rows for one document (inside a transaction) and
        return per-table inserted-row counts — the accounting that feeds
        :class:`ShredResult` without rescanning any table."""

    def stream_inserter(self, doc_id: int) -> StreamInserter:
        """The streaming row sink for one document.

        Schemes with a one-record-one-row layout override this with a
        constant-memory inserter; the default buffers and replays
        through :meth:`_insert_records` (still one pass over the input,
        just not memory-bounded).
        """
        return BufferedStreamInserter(self, doc_id, needs_document=True)

    def store_stream(
        self, events, name: str = "document"
    ) -> ShredResult:
        """Shred an event stream into rows as it is parsed.

        *events* is any :class:`~repro.xml.events.Event` iterable —
        usually :func:`repro.xml.events.parse_events` over text or a
        file, in which case parsing, numbering and insertion all
        interleave and (for schemes with a streaming inserter) peak
        memory is O(depth) + one row batch, independent of document
        size.  Same atomicity as :meth:`store`: the catalog row
        registers first and commits or rolls back with the node rows.
        """
        tracer = self.db.tracer
        with tracer.span("store") as span:
            if span:
                span.set(scheme=self.name, document=name, streaming=True)
            with tracer.span("stream_shred"):
                with self.db.transaction():
                    doc_id = self.catalog.register(name, self.name, "", 0)
                    inserter = self.stream_inserter(doc_id)
                    node_count, root_tag = shred_into(
                        events,
                        inserter.add,
                        inserter.enter if inserter.needs_enter else None,
                    )
                    if node_count == 0:
                        raise StorageError(
                            "refusing to store an empty document"
                        )
                    row_counts = inserter.finish()
                    self.catalog.finalize(doc_id, root_tag, node_count)
            if self.translation_depends_on_data:
                self.invalidate_plans()
            if not self._defer_analyze:
                with tracer.span("analyze"):
                    self.db.analyze()
            if span:
                span.set(
                    doc_id=doc_id, nodes=node_count,
                    rows=sum(row_counts.values()),
                )
                tracer.metrics.counter("store.documents").inc()
                tracer.metrics.counter("store.nodes_shredded").inc(
                    node_count
                )
            return ShredResult(doc_id, node_count, row_counts)

    # -- retrieval -----------------------------------------------------------------

    @abc.abstractmethod
    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        """Fetch stored node records in pre order.

        With *root_pre*, only the subtree rooted there (inclusive).
        Derived numbering fields a scheme does not store may be zeroed —
        reconstruction only relies on pre/parent_pre/kind/name/value.
        """

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        """Fetch the subtree records of many roots at once.

        Returns ``{root_pre: records}`` where each record list is in pre
        order and starts with the root itself (the
        :func:`~repro.storage.numbering.build_subtree` contract).  Roots
        with no stored node are simply absent from the result.  Roots
        may nest — a record then appears in every enclosing root's list,
        exactly as per-root :meth:`fetch_records` calls would return it.

        Schemes override this with a set-oriented implementation (one
        range-scan union, one shared recursive CTE, ...) so that
        :meth:`query_nodes` issues O(1) SQL statements for N results
        instead of N+1.  This base fallback just loops.
        """
        groups: dict[int, list[NodeRecord]] = {}
        for pre in pres:
            records = self.fetch_records(doc_id, root_pre=pre)
            if records:
                groups[pre] = records
        return groups

    @staticmethod
    def _subtree_slices(
        records: list[NodeRecord], pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        """Carve per-root subtree record lists out of one full-document
        fetch by parent closure — the batched path for schemes whose
        storage has no range/prefix subtree handle (universal, inlining).
        """
        children: dict[int, list[NodeRecord]] = {}
        by_pre: dict[int, NodeRecord] = {}
        for record in records:
            by_pre[record.pre] = record
            children.setdefault(record.parent_pre, []).append(record)
        groups: dict[int, list[NodeRecord]] = {}
        for root in pres:
            root_record = by_pre.get(root)
            if root_record is None:
                continue
            subtree = [root_record]
            stack = [root]
            while stack:
                for child in children.get(stack.pop(), ()):
                    subtree.append(child)
                    stack.append(child.pre)
            subtree.sort(key=lambda r: r.pre)
            groups[root] = subtree
        return groups

    def reconstruct(self, doc_id: int) -> Document:
        """Rebuild the full document from its rows."""
        self.catalog.get(doc_id)  # raises DocumentNotFoundError if absent
        records = self.fetch_records(doc_id)
        if not records:
            raise StorageError(f"document {doc_id} has no stored rows")
        return build_document(records)

    def reconstruct_subtree(self, doc_id: int, pre: int) -> Node:
        """Rebuild the subtree rooted at node *pre*."""
        records = self.fetch_records(doc_id, root_pre=pre)
        if not records:
            raise StorageError(
                f"no stored node with pre={pre} in document {doc_id}"
            )
        return build_subtree(records)

    def reconstruct_subtrees(
        self, doc_id: int, pres: list[int]
    ) -> list[Node]:
        """Rebuild many subtrees through one batched fetch.

        Equivalent to ``[reconstruct_subtree(doc_id, p) for p in pres]``
        (same nodes, same order, same error on a missing root) but goes
        through :meth:`fetch_records_many`, so the round-trip count does
        not grow with ``len(pres)``.
        """
        unique = list(dict.fromkeys(pres))
        groups = (
            self.fetch_records_many(doc_id, unique) if unique else {}
        )
        nodes: dict[int, Node] = {}
        for pre in unique:
            records = groups.get(pre)
            if not records:
                raise StorageError(
                    f"no stored node with pre={pre} in document {doc_id}"
                )
            nodes[pre] = build_subtree(records)
        return [nodes[pre] for pre in pres]

    # -- deletion -----------------------------------------------------------------------

    def delete_document(self, doc_id: int) -> None:
        """Remove all rows of *doc_id* and its catalog entry —
        atomically, so a fault mid-delete leaves the document fully
        present (rows *and* catalog entry)."""
        self.catalog.get(doc_id)
        with self.db.transaction():
            self._delete_rows(doc_id)
            self.catalog.remove(doc_id)
        if self.translation_depends_on_data:
            self.invalidate_plans()

    @abc.abstractmethod
    def _delete_rows(self, doc_id: int) -> None:
        """Delete the scheme's rows for one document."""

    # -- querying ------------------------------------------------------------------------

    @abc.abstractmethod
    def translator(self):
        """The XPath→SQL translator for this scheme
        (:class:`repro.query.translator.BaseTranslator`)."""

    def attach_analyzer(self, analyzer) -> None:
        """Attach an XPath static analyzer to this scheme.

        Once attached, :meth:`query_pres` short-circuits queries the
        analyzer proves unsatisfiable (zero SQL statements executed) and
        — when the analyzer was built with ``expand=True`` and a DTD —
        rewrites ``//`` steps into explicit child chains.  Expanded
        plans cache under a separate key, so the epoch bump here keeps
        previously cached un-expanded translations from shadowing them.
        """
        self.analyzer = analyzer
        self.invalidate_plans()

    def invalidate_plans(self) -> None:
        """Make every cached translation for this scheme unreachable.

        Bumps :attr:`plan_epoch`, which is part of every plan-cache key;
        the LRU bound ages the stale entries out.  Called automatically
        on stores/deletes/updates when :attr:`translation_depends_on_data`
        is set — universal translations bake in the known label columns
        and binary translations the known partition tables, so a cached
        plan could otherwise miss data added after it was rendered.
        """
        self.plan_epoch += 1

    def query_pres(self, doc_id: int, xpath: str) -> list[int]:
        """Run an XPath query via SQL; return matching ``pre`` ids sorted
        in document order."""
        return self.translator().query_pres(doc_id, xpath)

    def query_nodes(self, doc_id: int, xpath: str) -> list[Node]:
        """Run an XPath query via SQL and reconstruct each result node.

        Reconstruction is set-oriented: one batched fetch for all result
        subtrees (:meth:`fetch_records_many`) instead of one round-trip
        per node.
        """
        tracer = self.db.tracer
        with tracer.span("query.nodes") as span:
            pres = self.query_pres(doc_id, xpath)
            with tracer.span("reconstruct") as reconstruct_span:
                nodes = self.reconstruct_subtrees(doc_id, pres)
                if reconstruct_span:
                    reconstruct_span.set(nodes=len(nodes), batched=True)
            if span:
                span.set(scheme=self.name, rows=len(nodes))
            return nodes

    # -- integrity audit --------------------------------------------------------------------

    def verify_document(self, doc_id: int) -> IntegrityReport:
        """Audit the stored invariants of document *doc_id*.

        The shredded-XML analogue of ``PRAGMA integrity_check``: the
        generic checks below (catalog consistency, unique/resolvable
        node ids, reconstructability) run for every scheme, then
        :meth:`_audit_document` adds the mapping-specific invariants
        (interval containment, Dewey prefix closure, edge connectivity,
        path referential integrity, ...).  Returns a structured
        :class:`~repro.reliability.audit.IntegrityReport`; auditing a
        corrupted document reports issues instead of raising.
        """
        record = self.catalog.get(doc_id)
        report = IntegrityReport(doc_id=doc_id, scheme=self.name)
        records = self._generic_audit(record, report)
        self._audit_document(doc_id, record, report, records)
        return report

    def _generic_audit(
        self, record: DocumentRecord, report: IntegrityReport
    ) -> list[NodeRecord]:
        doc_id = record.doc_id
        report.ran("fetch")
        try:
            records = self.fetch_records(doc_id)
        except Exception as error:  # corrupt rows may break any layer
            report.add("fetch", f"fetching stored records failed: {error}")
            return []
        report.ran("catalog-count")
        mismatch = (
            len(records) != record.node_count
            if self.lossless_node_count
            else len(records) > record.node_count
        )
        if mismatch:
            report.add(
                "catalog-count",
                f"catalog records {record.node_count} nodes but "
                f"{len(records)} rows were fetched",
            )
        report.ran("unique-ids")
        pres = [r.pre for r in records]
        if len(set(pres)) != len(pres):
            seen: set[int] = set()
            duplicates = {p for p in pres if p in seen or seen.add(p)}
            report.add(
                "unique-ids",
                f"duplicate node ids: {sorted(duplicates)[:10]}",
            )
        report.ran("parents-resolve")
        known = set(pres)
        for r in records:
            if r.parent_pre and r.parent_pre not in known:
                report.add(
                    "parents-resolve",
                    f"node {r.pre} references missing parent "
                    f"{r.parent_pre}",
                )
        report.ran("reconstruct")
        if records and not report.failed("parents-resolve"):
            try:
                build_document(records)
            except Exception as error:  # corrupt rows may break any layer
                report.add(
                    "reconstruct",
                    f"document does not rebuild from its rows: {error}",
                )
        elif not records:
            report.add("reconstruct", "document has no stored rows")
        return records

    def _audit_document(
        self,
        doc_id: int,
        record: DocumentRecord,
        report: IntegrityReport,
        records: list[NodeRecord],
    ) -> None:
        """Scheme-specific invariant checks (override per mapping)."""

    # -- accounting -----------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Logical bytes across this scheme's tables (experiment E1)."""
        return self.db.database_bytes(
            name for name in self.table_names() if name != "xmlrel_documents"
        )

    def storage_cells(self) -> int:
        """Total row×column slots — the width/denormalization measure
        (experiment E1's second metric)."""
        return self.db.database_cells(
            name for name in self.table_names() if name != "xmlrel_documents"
        )

    def unsupported(self, feature: str) -> UnsupportedQueryError:
        """Build a scheme-tagged unsupported-feature error."""
        return UnsupportedQueryError(feature, scheme=self.name)


class BulkSession:
    """A corpus-load fast lane: many stores, one transaction, one ANALYZE.

    Per-document :meth:`MappingScheme.store` pays a COMMIT and an
    ``ANALYZE`` per document — fine for single documents, quadratic-feeling
    for corpus loads.  A bulk session wraps every store in one enclosing
    transaction (each store still gets its own savepoint) and defers the
    planner-statistics refresh to session close:

    .. code-block:: python

        with BulkSession(scheme) as session:
            for document in corpus:
                session.store(document, name)
        doc_ids = session.doc_ids

    The load is atomic: an exception inside the ``with`` block rolls back
    *every* document of the session (and the catalog rows with them).
    Row accounting comes from the insert side (see
    :meth:`MappingScheme._insert_records`), so closing a session never
    rescans any table.

    Secondary indexes are dropped for the session's duration and rebuilt
    in one pass at close — incremental b-tree maintenance per inserted
    row is the dominant cost of a bulk load, and a single post-load
    ``CREATE INDEX`` scan is far cheaper (it is also one long C call,
    so concurrent per-shard sessions overlap instead of trading the
    interpreter lock row by row).  Both the drop and the rebuild happen
    inside the session transaction, so a crash or error at any point
    rolls back to the fully-indexed pre-session state.
    """

    def __init__(self, scheme: MappingScheme) -> None:
        self.scheme = scheme
        self.results: list[ShredResult] = []
        self._txn = None
        self._deferred_indexes = []

    @property
    def doc_ids(self) -> list[int]:
        """Ids of the documents stored so far, in store order."""
        return [result.doc_id for result in self.results]

    def __enter__(self) -> "BulkSession":
        if self._txn is not None:
            raise StorageError("bulk session already active")
        self.scheme._defer_analyze = True
        self._txn = self.scheme.db.transaction()
        self._txn.__enter__()
        self._deferred_indexes = [
            index
            for table in self.scheme.tables()
            for index in table.indexes
            if not index.unique
        ]
        for index in self._deferred_indexes:
            self.scheme.db.execute(
                f'DROP INDEX IF EXISTS "{index.name}"'
            )
        return self

    def store(
        self, document: Document, name: str = "document"
    ) -> ShredResult:
        """Store one document inside the session's transaction."""
        if self._txn is None:
            raise StorageError(
                "bulk session is not active (use it as a context manager)"
            )
        result = self.scheme.store(document, name)
        self.results.append(result)
        return result

    def store_stream(self, events, name: str = "document") -> ShredResult:
        """Stream-shred one document inside the session's transaction
        (the per-shard corpus loader's write path: the store's inner
        transaction nests as a savepoint, ANALYZE stays deferred)."""
        if self._txn is None:
            raise StorageError(
                "bulk session is not active (use it as a context manager)"
            )
        result = self.scheme.store_stream(events, name)
        self.results.append(result)
        return result

    def __exit__(self, exc_type, exc, tb):
        txn, self._txn = self._txn, None
        self.scheme._defer_analyze = False
        if exc_type is None:
            tracer = self.scheme.db.tracer
            try:
                with tracer.span("index_rebuild"):
                    for index in self._deferred_indexes:
                        self.scheme.db.execute(index.ddl())
            except BaseException as rebuild_error:
                # A failed rebuild (e.g. injected crash) must still
                # roll the session back to the fully-indexed state.
                txn.__exit__(
                    type(rebuild_error), rebuild_error,
                    rebuild_error.__traceback__,
                )
                raise
        handled = txn.__exit__(exc_type, exc, tb)
        if exc_type is None:
            tracer = self.scheme.db.tracer
            with tracer.span("analyze"):
                self.scheme.db.analyze()
            if tracer.enabled:
                tracer.metrics.counter("bulk.sessions").inc()
                tracer.metrics.counter("bulk.documents").inc(
                    len(self.results)
                )
        return handled
