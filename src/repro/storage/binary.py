"""Binary mapping: the edge table partitioned by label.

Florescu & Kossmann's second mapping stores one table per distinct label
(element tag / attribute name / the reserved ``#text``/``#comment``/
``#pi`` labels):

.. code-block:: text

    b_<label>(doc_id, source, ordinal, label, kind, target, value, content)

plus a catalog relation ``binary_labels`` mapping labels to their
partition tables and a ``binary_edges`` view (the UNION ALL of all
partitions) for the operations that cannot be pruned to one partition —
wildcard steps and descendant closures.  The ``label`` column is kept in
every partition (redundantly) so the view has a uniform shape.

The published trade-off this reproduces: label-selective child steps only
touch one small partition (beating the edge table), while ``//`` and
wildcards must union every partition (losing to the interval mapping).
"""

from __future__ import annotations

import hashlib
import re

from repro.relational.schema import (
    Column,
    INTEGER,
    Index,
    Table,
    TEXT,
    quote_identifier,
)
from repro.storage.base import STREAM_BATCH, MappingScheme, StreamInserter
from repro.storage.edge import (
    edge_label,
    fetch_edge_subtrees,
    order_edge_rows,
)
from repro.storage.interval import element_content
from repro.storage.numbering import NodeRecord
from repro.xml.dom import Document

LABELS_TABLE = Table(
    name="binary_labels",
    columns=[
        Column("label", TEXT, primary_key=True),
        Column("table_name", TEXT, nullable=False),
    ],
)

EDGES_VIEW = "binary_edges"

_SANITIZE_RE = re.compile(r"[^a-z0-9_]+")


def partition_table_name(label: str) -> str:
    """Deterministic partition table name for *label*.

    A readable sanitized prefix plus a short hash for uniqueness (labels
    differing only in case or punctuation must not collide).
    """
    stem = _SANITIZE_RE.sub("_", label.lower()).strip("_") or "x"
    digest = hashlib.sha1(label.encode()).hexdigest()[:8]
    return f"b_{stem[:24]}_{digest}"


def partition_table(label: str) -> Table:
    """The :class:`Table` descriptor of one partition."""
    name = partition_table_name(label)
    return Table(
        name=name,
        columns=[
            Column("doc_id", INTEGER, nullable=False),
            Column("source", INTEGER, nullable=False),
            Column("ordinal", INTEGER, nullable=False),
            Column("label", TEXT, nullable=False),
            Column("kind", INTEGER, nullable=False),
            Column("target", INTEGER, nullable=False),
            Column("value", TEXT),
            Column("content", TEXT),
        ],
        primary_key=("doc_id", "target"),
        indexes=[
            Index(f"{name}_source", name, ("doc_id", "source")),
            Index(f"{name}_content", name, ("doc_id", "content")),
            Index(f"{name}_value", name, ("doc_id", "value")),
        ],
    )


class _BinaryStreamInserter(StreamInserter):
    """Streaming sink with per-partition row buffers.

    Partitions are created at the *first sighting* of each label —
    element labels at the start tag (:meth:`enter`), other labels at
    their node's completion, which for non-elements is their document
    position — so the ``binary_labels`` registry fills in exactly the
    pre-order first-seen sequence the DOM insert path produces.  Memory
    is bounded by labels × one row batch.
    """

    def __init__(self, scheme, doc_id):
        super().__init__(scheme, doc_id)
        self._tables: dict[str, str] = {}   # label -> partition table
        self._rows: dict[str, list[tuple]] = {}
        self._counts: dict[str, int] = {}

    def _table_for(self, label: str) -> str:
        table = self._tables.get(label)
        if table is None:
            table = self.scheme._ensure_partition(label)
            self._tables[label] = table
        return table

    needs_enter = True

    def enter(self, pre, name, parent_pre):
        self._table_for(name or "")

    def add(self, r, content):
        label = edge_label(r)
        table = self._table_for(label)
        bucket = self._rows.setdefault(label, [])
        bucket.append(
            (self.doc_id, r.parent_pre, r.ordinal, label, r.kind,
             r.pre, r.value, content)
        )
        if len(bucket) >= STREAM_BATCH:
            self._flush(label, table, bucket)

    def _flush(self, label, table, bucket):
        self.scheme.db.executemany(
            f"INSERT INTO {quote_identifier(table)} "
            "(doc_id, source, ordinal, label, kind, target, value, "
            "content) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            bucket,
        )
        self._counts[table] = self._counts.get(table, 0) + len(bucket)
        bucket.clear()

    def finish(self):
        for label, bucket in self._rows.items():
            if bucket:
                self._flush(label, self._tables[label], bucket)
        return self._counts


class BinaryScheme(MappingScheme):
    """The label-partitioned edge mapping."""

    name = "binary"

    # Translation consults the partition catalog (label-selective steps
    # compile to their partition table; unknown labels fall back to the
    # view), so cached plans go stale when a store/update adds a
    # partition.
    translation_depends_on_data = True

    def tables(self):
        return [LABELS_TABLE]

    # -- partition management ---------------------------------------------------

    def partitions(self) -> dict[str, str]:
        """Current label → partition-table mapping."""
        return dict(
            self.db.query("SELECT label, table_name FROM binary_labels")
        )

    def partition_for(self, label: str) -> str | None:
        """The partition table of *label*, or None if never seen."""
        row = self.db.query_one(
            "SELECT table_name FROM binary_labels WHERE label = ?", (label,)
        )
        return row[0] if row else None

    def _ensure_partition(self, label: str) -> str:
        existing = self.partition_for(label)
        if existing is not None:
            return existing
        table = partition_table(label)
        self.db.create_table(table)
        self.db.execute(
            "INSERT INTO binary_labels (label, table_name) VALUES (?, ?)",
            (label, table.name),
        )
        self._rebuild_view()
        return table.name

    def _rebuild_view(self) -> None:
        """Recreate the all-edges view over the current partitions."""
        self.db.execute(f"DROP VIEW IF EXISTS {EDGES_VIEW}")
        partitions = sorted(self.partitions().values())
        if not partitions:
            return
        arms = " UNION ALL ".join(
            f"SELECT doc_id, source, ordinal, label, kind, target, value, "
            f"content FROM {quote_identifier(p)}"
            for p in partitions
        )
        self.db.execute(f"CREATE VIEW {EDGES_VIEW} AS {arms}")

    def table_names(self) -> list[str]:
        return ["binary_labels"] + sorted(self.partitions().values())

    def stream_inserter(self, doc_id):
        return _BinaryStreamInserter(self, doc_id)

    # -- shred / fetch / delete ------------------------------------------------------

    def _insert_records(
        self, doc_id: int, records: list[NodeRecord], document: Document
    ) -> dict[str, int]:
        contents = element_content(records)
        by_label: dict[str, list[tuple]] = {}
        for r in records:
            label = edge_label(r)
            by_label.setdefault(label, []).append(
                (
                    doc_id,
                    r.parent_pre,
                    r.ordinal,
                    label,
                    r.kind,
                    r.pre,
                    r.value,
                    contents.get(r.pre),
                )
            )
        row_counts: dict[str, int] = {}
        for label, rows in by_label.items():
            table_name = self._ensure_partition(label)
            self.db.executemany(
                f"INSERT INTO {quote_identifier(table_name)} "
                "(doc_id, source, ordinal, label, kind, target, value, "
                "content) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            row_counts[table_name] = (
                row_counts.get(table_name, 0) + len(rows)
            )
        return row_counts

    def fetch_records(
        self, doc_id: int, root_pre: int | None = None
    ) -> list[NodeRecord]:
        if not self.partitions():
            return []
        if root_pre is None:
            rows = self.db.query(
                f"SELECT target, source, ordinal, label, kind, value "
                f"FROM {EDGES_VIEW} WHERE doc_id = ? ORDER BY target",
                (doc_id,),
            )
        else:
            rows = self.db.query(
                f"""
                WITH RECURSIVE subtree(target, source, ordinal, label,
                                       kind, value) AS (
                  SELECT target, source, ordinal, label, kind, value
                  FROM {EDGES_VIEW} WHERE doc_id = ? AND target = ?
                  UNION ALL
                  SELECT e.target, e.source, e.ordinal, e.label, e.kind,
                         e.value
                  FROM {EDGES_VIEW} e JOIN subtree s ON e.source = s.target
                  WHERE e.doc_id = ?
                )
                SELECT * FROM subtree ORDER BY target
                """,
                (doc_id, root_pre, doc_id),
            )
        return order_edge_rows(rows, root_pre)

    def fetch_records_many(
        self, doc_id: int, pres: list[int]
    ) -> dict[int, list[NodeRecord]]:
        if not self.partitions():
            return {}
        return fetch_edge_subtrees(self.db, EDGES_VIEW, doc_id, pres)

    def _delete_rows(self, doc_id: int) -> None:
        for table_name in self.partitions().values():
            self.db.execute(
                f"DELETE FROM {quote_identifier(table_name)} "
                "WHERE doc_id = ?",
                (doc_id,),
            )

    def _audit_document(self, doc_id, record, report, records) -> None:
        from repro.storage.edge import audit_edge_structure

        report.ran("binary-catalog")
        for label, table_name in self.partitions().items():
            if not self.db.table_exists(table_name):
                report.add(
                    "binary-catalog",
                    f"partition {table_name!r} of label {label!r} is "
                    "registered but the table does not exist",
                )
                continue
            mismatched = self.db.scalar(
                f"SELECT COUNT(*) FROM {quote_identifier(table_name)} "
                "WHERE doc_id = ? AND label != ?",
                (doc_id, label),
            )
            if mismatched:
                report.add(
                    "binary-catalog",
                    f"{mismatched} row(s) in partition {table_name!r} "
                    f"carry a label other than {label!r}",
                )
        if self.partitions():
            rows = self.db.query(
                f"SELECT source, target FROM {EDGES_VIEW} "
                "WHERE doc_id = ?",
                (doc_id,),
            )
            audit_edge_structure(rows, report)

    def translator(self):
        from repro.query.translate_binary import BinaryTranslator

        return BinaryTranslator(self)
