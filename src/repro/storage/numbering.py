"""Node numbering: the order encodings every storage scheme draws from.

One traversal of a document computes, for every *stored* node (elements,
attributes, text, comments, processing instructions — everything except
the document node itself):

``pre``
    Document-order position (matches ``Node.order_key``; the document node
    holds 0, so stored nodes start at 1).  This is the node id shared by
    all schemes, which is what makes cross-scheme differential testing a
    set comparison.
``post``
    Post-order position.  ``pre``/``post`` together define the classic
    plane in which the XPath axes are rectangular windows (Grust, 2002).
``size``
    Number of stored nodes in the subtree below (attributes included), so
    ``descendant(a) = { d : pre(a) < pre(d) <= pre(a)+size(a) }``.
``level``
    Depth (root element is level 1; its attributes level 2).
``ordinal``
    1-based position among the parent's stored children, attributes first
    (their document-order slot).
``dewey``
    The Dewey order label: the ``ordinal`` components along the path from
    the root, zero-padded so that *lexicographic order equals document
    order* and prefix-of equals ancestor-of.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.xml.dom import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    NodeKind,
    ProcessingInstruction,
    Text,
    _Container,
)

# Width of one zero-padded Dewey component; 6 digits supports up to
# 999 999 siblings, far beyond any generated workload.
DEWEY_WIDTH = 6
DEWEY_SEPARATOR = "."


def dewey_component(ordinal: int) -> str:
    """Zero-padded component for one sibling ordinal."""
    if ordinal <= 0 or ordinal >= 10 ** DEWEY_WIDTH:
        raise StorageError(f"dewey ordinal out of range: {ordinal}")
    return str(ordinal).zfill(DEWEY_WIDTH)


def dewey_parent(label: str) -> str | None:
    """The parent's label, or None for a root-level label."""
    if DEWEY_SEPARATOR not in label:
        return None
    return label.rsplit(DEWEY_SEPARATOR, 1)[0]


def dewey_depth(label: str) -> int:
    """Number of components in *label*."""
    return label.count(DEWEY_SEPARATOR) + 1


def dewey_is_ancestor(ancestor: str, descendant: str) -> bool:
    """Prefix test: is *ancestor* a proper Dewey ancestor of *descendant*?"""
    return descendant.startswith(ancestor + DEWEY_SEPARATOR)


@dataclass(frozen=True)
class NodeRecord:
    """The numbering facts of one stored node."""

    pre: int
    post: int
    size: int
    level: int
    kind: int                # NodeKind value
    name: str | None         # element tag / attribute name / PI target
    value: str | None        # attribute value / text / comment / PI data
    parent_pre: int          # 0 when the parent is the document node
    ordinal: int             # 1-based among the parent's stored children
    dewey: str

    @property
    def is_element(self) -> bool:
        return self.kind == NodeKind.ELEMENT

    @property
    def is_attribute(self) -> bool:
        return self.kind == NodeKind.ATTRIBUTE


def number_document(document: Document) -> list[NodeRecord]:
    """Compute :class:`NodeRecord` facts for every stored node, in
    document (pre) order."""
    document.assign_order()
    records: list[NodeRecord] = []
    post_counter = 0

    def visit(
        node: Node, level: int, parent_pre: int, ordinal: int, dewey: str
    ) -> int:
        """Append records for *node*'s subtree; return its stored size."""
        nonlocal post_counter
        pre = node.order_key
        size = 0
        child_records_start = len(records)
        records.append(None)  # placeholder; filled after children
        if isinstance(node, Element):
            next_ordinal = 1
            for attr in node.attributes:
                size += visit(attr, level + 1, pre, next_ordinal,
                              dewey + DEWEY_SEPARATOR
                              + dewey_component(next_ordinal))
                next_ordinal += 1
            for child in node.children:
                size += visit(child, level + 1, pre, next_ordinal,
                              dewey + DEWEY_SEPARATOR
                              + dewey_component(next_ordinal))
                next_ordinal += 1
        post_counter += 1
        records[child_records_start] = NodeRecord(
            pre=pre,
            post=post_counter,
            size=size,
            level=level,
            kind=int(node.kind),
            name=_node_name(node),
            value=_node_value(node),
            parent_pre=parent_pre,
            ordinal=ordinal,
            dewey=dewey,
        )
        return size + 1

    ordinal = 1
    for child in document.children:
        visit(child, 1, 0, ordinal, dewey_component(ordinal))
        ordinal += 1
    return records


def _node_name(node: Node) -> str | None:
    if isinstance(node, Element):
        return node.tag
    if isinstance(node, Attribute):
        return node.name
    if isinstance(node, ProcessingInstruction):
        return node.target
    return None


def _node_value(node: Node) -> str | None:
    if isinstance(node, Attribute):
        return node.value
    if isinstance(node, (Text, Comment)):
        return node.data
    if isinstance(node, ProcessingInstruction):
        return node.data
    return None


def build_subtree(records: list[NodeRecord]) -> Node:
    """Rebuild a tree from subtree records sorted by ``pre``.

    The first record is the subtree root; children are attached via
    ``parent_pre``.  Used by every scheme's ``reconstruct``: the scheme
    fetches its rows (differently — that is what E6 measures) and this
    shared assembler turns them back into DOM nodes.
    """
    if not records:
        raise StorageError("cannot rebuild an empty record set")
    by_pre: dict[int, Node] = {}
    root_node: Node | None = None
    for record in records:
        node = _make_node(record)
        by_pre[record.pre] = node
        if root_node is None:
            root_node = node
            continue
        parent = by_pre.get(record.parent_pre)
        if parent is None:
            raise StorageError(
                f"record {record.pre} references missing parent "
                f"{record.parent_pre}"
            )
        if isinstance(node, Attribute):
            if not isinstance(parent, Element):
                raise StorageError("attribute record under a non-element")
            node.parent = parent
            parent.attributes.append(node)
        else:
            if not isinstance(parent, _Container):
                raise StorageError(
                    f"record {record.pre} under non-container parent"
                )
            parent.children.append(node)
            node.parent = parent
    assert root_node is not None
    return root_node


def build_document(records: list[NodeRecord]) -> Document:
    """Rebuild a whole document from its full record list (pre order)."""
    document = Document()
    by_pre: dict[int, Node] = {}
    for record in records:
        node = _make_node(record)
        by_pre[record.pre] = node
        if record.parent_pre == 0:
            document.children.append(node)
            node.parent = document
            continue
        parent = by_pre.get(record.parent_pre)
        if parent is None:
            raise StorageError(
                f"record {record.pre} references missing parent "
                f"{record.parent_pre}"
            )
        if isinstance(node, Attribute):
            if not isinstance(parent, Element):
                raise StorageError("attribute record under a non-element")
            node.parent = parent
            parent.attributes.append(node)
        else:
            if not isinstance(parent, _Container):
                raise StorageError(
                    f"record {record.pre} under non-container parent"
                )
            parent.children.append(node)
            node.parent = parent
    return document


def _make_node(record: NodeRecord) -> Node:
    kind = record.kind
    if kind == NodeKind.ELEMENT:
        return Element(record.name or "", validate=False)
    if kind == NodeKind.ATTRIBUTE:
        return Attribute(record.name or "", record.value or "",
                         validate=False)
    if kind == NodeKind.TEXT:
        return Text(record.value or "")
    if kind == NodeKind.COMMENT:
        return Comment(record.value or "")
    if kind == NodeKind.PROCESSING_INSTRUCTION:
        return ProcessingInstruction(record.name or "x", record.value or "")
    raise StorageError(f"cannot rebuild node of kind {kind}")
