"""Node numbering: the order encodings every storage scheme draws from.

One traversal of a document computes, for every *stored* node (elements,
attributes, text, comments, processing instructions — everything except
the document node itself):

``pre``
    Document-order position (matches ``Node.order_key``; the document node
    holds 0, so stored nodes start at 1).  This is the node id shared by
    all schemes, which is what makes cross-scheme differential testing a
    set comparison.
``post``
    Post-order position.  ``pre``/``post`` together define the classic
    plane in which the XPath axes are rectangular windows (Grust, 2002).
``size``
    Number of stored nodes in the subtree below (attributes included), so
    ``descendant(a) = { d : pre(a) < pre(d) <= pre(a)+size(a) }``.
``level``
    Depth (root element is level 1; its attributes level 2).
``ordinal``
    1-based position among the parent's stored children, attributes first
    (their document-order slot).
``dewey``
    The Dewey order label: the ``ordinal`` components along the path from
    the root, zero-padded so that *lexicographic order equals document
    order* and prefix-of equals ancestor-of.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import StorageError
from repro.xml.dom import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    NodeKind,
    ProcessingInstruction,
    Text,
    _Container,
)

# Width of one zero-padded Dewey component; 6 digits supports up to
# 999 999 siblings, far beyond any generated workload.
DEWEY_WIDTH = 6
DEWEY_SEPARATOR = "."


def dewey_component(ordinal: int) -> str:
    """Zero-padded component for one sibling ordinal."""
    if ordinal <= 0 or ordinal >= 10 ** DEWEY_WIDTH:
        raise StorageError(f"dewey ordinal out of range: {ordinal}")
    return str(ordinal).zfill(DEWEY_WIDTH)


# Small-ordinal components, precomputed: sibling ordinals are almost
# always tiny and the streaming shredder needs one per stored node.
_DEWEY_CACHE = tuple(
    str(i).zfill(DEWEY_WIDTH) for i in range(1024)
)


def dewey_parent(label: str) -> str | None:
    """The parent's label, or None for a root-level label."""
    if DEWEY_SEPARATOR not in label:
        return None
    return label.rsplit(DEWEY_SEPARATOR, 1)[0]


def dewey_depth(label: str) -> int:
    """Number of components in *label*."""
    return label.count(DEWEY_SEPARATOR) + 1


def dewey_is_ancestor(ancestor: str, descendant: str) -> bool:
    """Prefix test: is *ancestor* a proper Dewey ancestor of *descendant*?"""
    return descendant.startswith(ancestor + DEWEY_SEPARATOR)


class NodeRecord(NamedTuple):
    """The numbering facts of one stored node.

    A named tuple rather than a dataclass: shredding builds one record
    per stored node, so construction cost is on the ingest hot path and
    tuple construction is several times cheaper.
    """

    pre: int
    post: int
    size: int
    level: int
    kind: int                # NodeKind value
    name: str | None         # element tag / attribute name / PI target
    value: str | None        # attribute value / text / comment / PI data
    parent_pre: int          # 0 when the parent is the document node
    ordinal: int             # 1-based among the parent's stored children
    dewey: str

    @property
    def is_element(self) -> bool:
        return self.kind == NodeKind.ELEMENT

    @property
    def is_attribute(self) -> bool:
        return self.kind == NodeKind.ATTRIBUTE


def number_document(document: Document) -> list[NodeRecord]:
    """Compute :class:`NodeRecord` facts for every stored node, in
    document (pre) order."""
    document.assign_order()
    records: list[NodeRecord] = []
    post_counter = 0

    def visit(
        node: Node, level: int, parent_pre: int, ordinal: int, dewey: str
    ) -> int:
        """Append records for *node*'s subtree; return its stored size."""
        nonlocal post_counter
        pre = node.order_key
        size = 0
        child_records_start = len(records)
        records.append(None)  # placeholder; filled after children
        if isinstance(node, Element):
            next_ordinal = 1
            for attr in node.attributes:
                size += visit(attr, level + 1, pre, next_ordinal,
                              dewey + DEWEY_SEPARATOR
                              + dewey_component(next_ordinal))
                next_ordinal += 1
            for child in node.children:
                size += visit(child, level + 1, pre, next_ordinal,
                              dewey + DEWEY_SEPARATOR
                              + dewey_component(next_ordinal))
                next_ordinal += 1
        post_counter += 1
        records[child_records_start] = NodeRecord(
            pre=pre,
            post=post_counter,
            size=size,
            level=level,
            kind=int(node.kind),
            name=_node_name(node),
            value=_node_value(node),
            parent_pre=parent_pre,
            ordinal=ordinal,
            dewey=dewey,
        )
        return size + 1

    ordinal = 1
    for child in document.children:
        visit(child, 1, 0, ordinal, dewey_component(ordinal))
        ordinal += 1
    return records


class _StreamFrame:
    """Numbering state of one open element (the O(depth) working set)."""

    __slots__ = (
        "pre", "name", "level", "ordinal", "dewey", "parent_pre",
        "size", "next_ordinal", "kid_count", "all_text", "text_parts",
    )

    def __init__(
        self, pre: int, name: str, level: int, ordinal: int,
        dewey: str, parent_pre: int,
    ) -> None:
        self.pre = pre
        self.name = name
        self.level = level
        self.ordinal = ordinal
        self.dewey = dewey
        self.parent_pre = parent_pre
        self.size = 0            # stored nodes below (attrs included)
        self.next_ordinal = 1    # next child's sibling position
        self.kid_count = 0       # non-attribute children so far
        self.all_text = True     # every non-attribute child was TEXT
        self.text_parts: list[str] = []


def shred_stream(events):
    """Number an event stream incrementally — the streaming analogue of
    :func:`number_document` with O(depth) memory.

    Yields two item kinds, in parse order:

    ``("enter", pre, name, parent_pre)``
        An element just opened.  These arrive in **pre order** and let
        order-sensitive side tables (binary's partition registry,
        XRel's path dictionary) be populated first-seen exactly as a
        pre-order walk over :func:`number_document` records would.

    ``("node", record, content)``
        A node is complete: its full :class:`NodeRecord` plus the
        text-only-element ``content`` cache (the
        :func:`~repro.storage.interval.element_content` value — ``""``
        for childless elements, the concatenated text for text-only
        elements, ``None`` otherwise; always ``None`` for non-elements).
        Attributes/text/comments/PIs complete at their own position, so
        the subsequence of non-element nodes is also in pre order;
        elements complete at their end tag — **post order** — which is
        the earliest moment ``post`` and ``size`` exist.

    This close-time emission *is* the "two-pass / patch-up" numbering
    the interval, Dewey and XRel-region schemes need: instead of
    inserting half-numbered element rows at the start tag and patching
    ``post``/``size`` with SQL UPDATEs afterwards (twice the statements
    and a non-monotonic write pattern), the element's row is simply
    withheld for the lifetime of its subtree — bounded by depth, not
    document size — and emitted complete.
    """
    from repro.xml.events import EventKind

    pre_counter = 0
    post_counter = 0
    doc_ordinal = 1
    stack: list[_StreamFrame] = []

    attribute_kind = int(NodeKind.ATTRIBUTE)
    element_kind = int(NodeKind.ELEMENT)
    text_kind = int(NodeKind.TEXT)
    comment_kind = int(NodeKind.COMMENT)
    pi_kind = int(NodeKind.PROCESSING_INSTRUCTION)

    # Hot-loop locals: one enum attribute lookup per event kind instead
    # of one per event, and the cached small-ordinal Dewey components.
    kind_start = EventKind.START_ELEMENT
    kind_end = EventKind.END_ELEMENT
    kind_attribute = EventKind.ATTRIBUTE
    kind_text_event = EventKind.TEXT
    dewey_cache = _DEWEY_CACHE
    cache_size = len(dewey_cache)

    for kind, ev_name, ev_value in events:
        if kind is kind_start:
            pre_counter += 1
            if stack:
                parent = stack[-1]
                ordinal = parent.next_ordinal
                parent.next_ordinal = ordinal + 1
                parent.kid_count += 1
                if parent.all_text:
                    parent.all_text = False
                    parent.text_parts.clear()
                frame = _StreamFrame(
                    pre_counter, ev_name or "", parent.level + 1,
                    ordinal,
                    parent.dewey + DEWEY_SEPARATOR
                    + (dewey_cache[ordinal] if ordinal < cache_size
                       else dewey_component(ordinal)),
                    parent.pre,
                )
            else:
                ordinal = doc_ordinal
                doc_ordinal += 1
                frame = _StreamFrame(
                    pre_counter, ev_name or "", 1, ordinal,
                    dewey_component(ordinal), 0,
                )
            stack.append(frame)
            yield ("enter", frame.pre, frame.name, frame.parent_pre)
        elif kind is kind_end:
            frame = stack.pop()
            post_counter += 1
            if frame.kid_count == 0:
                content = ""
            elif frame.all_text:
                content = "".join(frame.text_parts)
            else:
                content = None
            record = NodeRecord(
                frame.pre,
                post_counter,
                frame.size,
                frame.level,
                element_kind,
                frame.name,
                None,
                frame.parent_pre,
                frame.ordinal,
                frame.dewey,
            )
            if stack:
                stack[-1].size += frame.size + 1
            yield ("node", record, content)
        elif kind is kind_attribute:
            if not stack:
                raise StorageError("attribute event outside an element")
            parent = stack[-1]
            pre_counter += 1
            post_counter += 1
            ordinal = parent.next_ordinal
            parent.next_ordinal = ordinal + 1
            parent.size += 1
            record = NodeRecord(
                pre_counter,
                post_counter,
                0,
                parent.level + 1,
                attribute_kind,
                ev_name,
                ev_value,
                parent.pre,
                ordinal,
                parent.dewey + DEWEY_SEPARATOR
                + (dewey_cache[ordinal] if ordinal < cache_size
                   else dewey_component(ordinal)),
            )
            yield ("node", record, None)
        elif kind is kind_text_event:
            if not stack:
                raise StorageError("text event at document level")
            parent = stack[-1]
            pre_counter += 1
            post_counter += 1
            ordinal = parent.next_ordinal
            parent.next_ordinal = ordinal + 1
            parent.size += 1
            parent.kid_count += 1
            if parent.all_text:
                parent.text_parts.append(ev_value or "")
            record = NodeRecord(
                pre_counter,
                post_counter,
                0,
                parent.level + 1,
                text_kind,
                None,
                ev_value,
                parent.pre,
                ordinal,
                parent.dewey + DEWEY_SEPARATOR
                + (dewey_cache[ordinal] if ordinal < cache_size
                   else dewey_component(ordinal)),
            )
            yield ("node", record, None)
        elif kind in (
            EventKind.COMMENT, EventKind.PROCESSING_INSTRUCTION
        ):
            pre_counter += 1
            post_counter += 1
            node_kind = (
                comment_kind if kind is EventKind.COMMENT else pi_kind
            )
            if stack:
                parent = stack[-1]
                ordinal = parent.next_ordinal
                parent.next_ordinal += 1
                parent.size += 1
                parent.kid_count += 1
                if parent.all_text:
                    parent.all_text = False
                    parent.text_parts.clear()
                level = parent.level + 1
                parent_pre = parent.pre
                dewey = (
                    parent.dewey + DEWEY_SEPARATOR
                    + dewey_component(ordinal)
                )
            else:
                ordinal = doc_ordinal
                doc_ordinal += 1
                level = 1
                parent_pre = 0
                dewey = dewey_component(ordinal)
            record = NodeRecord(
                pre=pre_counter,
                post=post_counter,
                size=0,
                level=level,
                kind=node_kind,
                name=ev_name if node_kind == pi_kind else None,
                value=ev_value,
                parent_pre=parent_pre,
                ordinal=ordinal,
                dewey=dewey,
            )
            yield ("node", record, None)
        # START_DOCUMENT / END_DOCUMENT carry no stored node.
    if stack:
        raise StorageError(
            f"event stream ended with {len(stack)} open element(s)"
        )


def shred_into(events, add, enter=None) -> tuple[int, str]:
    """Fused twin of :func:`shred_stream`: same numbering, delivered by
    direct callback instead of a generator.

    *add(record, content)* receives every completed node; *enter(pre,
    name, parent_pre)*, when given, receives element opens in pre order
    (the :meth:`StreamInserter.enter` hook).  Returns ``(node_count,
    root_tag)``.  Semantically identical to driving
    :func:`shred_stream` — the generator stays as the readable
    reference and the differential tests hold the two to byte-identical
    output — but the bulk-ingest path calls this one: dropping the
    per-node item tuple, the yield/resume hop and the consumer-side
    dispatch is a measurable win at millions of nodes.
    """
    from repro.xml.events import EventKind

    pre_counter = 0
    post_counter = 0
    doc_ordinal = 1
    node_count = 0
    root_tag = ""
    stack: list[_StreamFrame] = []

    attribute_kind = int(NodeKind.ATTRIBUTE)
    element_kind = int(NodeKind.ELEMENT)
    text_kind = int(NodeKind.TEXT)
    comment_kind = int(NodeKind.COMMENT)
    pi_kind = int(NodeKind.PROCESSING_INSTRUCTION)

    kind_start = EventKind.START_ELEMENT
    kind_end = EventKind.END_ELEMENT
    kind_attribute = EventKind.ATTRIBUTE
    kind_text_event = EventKind.TEXT
    dewey_cache = _DEWEY_CACHE
    cache_size = len(dewey_cache)
    frame_cls = _StreamFrame

    for kind, ev_name, ev_value in events:
        if kind is kind_start:
            pre_counter += 1
            if stack:
                parent = stack[-1]
                ordinal = parent.next_ordinal
                parent.next_ordinal = ordinal + 1
                parent.kid_count += 1
                if parent.all_text:
                    parent.all_text = False
                    parent.text_parts.clear()
                frame = frame_cls(
                    pre_counter, ev_name or "", parent.level + 1,
                    ordinal,
                    parent.dewey + DEWEY_SEPARATOR
                    + (dewey_cache[ordinal] if ordinal < cache_size
                       else dewey_component(ordinal)),
                    parent.pre,
                )
            else:
                ordinal = doc_ordinal
                doc_ordinal += 1
                frame = frame_cls(
                    pre_counter, ev_name or "", 1, ordinal,
                    dewey_component(ordinal), 0,
                )
                if not root_tag:
                    root_tag = frame.name
            stack.append(frame)
            if enter is not None:
                enter(frame.pre, frame.name, frame.parent_pre)
        elif kind is kind_end:
            frame = stack.pop()
            post_counter += 1
            if frame.kid_count == 0:
                content = ""
            elif frame.all_text:
                content = "".join(frame.text_parts)
            else:
                content = None
            if stack:
                stack[-1].size += frame.size + 1
            node_count += 1
            add(
                NodeRecord(
                    frame.pre,
                    post_counter,
                    frame.size,
                    frame.level,
                    element_kind,
                    frame.name,
                    None,
                    frame.parent_pre,
                    frame.ordinal,
                    frame.dewey,
                ),
                content,
            )
        elif kind is kind_attribute:
            if not stack:
                raise StorageError("attribute event outside an element")
            parent = stack[-1]
            pre_counter += 1
            post_counter += 1
            ordinal = parent.next_ordinal
            parent.next_ordinal = ordinal + 1
            parent.size += 1
            node_count += 1
            add(
                NodeRecord(
                    pre_counter,
                    post_counter,
                    0,
                    parent.level + 1,
                    attribute_kind,
                    ev_name,
                    ev_value,
                    parent.pre,
                    ordinal,
                    parent.dewey + DEWEY_SEPARATOR
                    + (dewey_cache[ordinal] if ordinal < cache_size
                       else dewey_component(ordinal)),
                ),
                None,
            )
        elif kind is kind_text_event:
            if not stack:
                raise StorageError("text event at document level")
            parent = stack[-1]
            pre_counter += 1
            post_counter += 1
            ordinal = parent.next_ordinal
            parent.next_ordinal = ordinal + 1
            parent.size += 1
            parent.kid_count += 1
            if parent.all_text:
                parent.text_parts.append(ev_value or "")
            node_count += 1
            add(
                NodeRecord(
                    pre_counter,
                    post_counter,
                    0,
                    parent.level + 1,
                    text_kind,
                    None,
                    ev_value,
                    parent.pre,
                    ordinal,
                    parent.dewey + DEWEY_SEPARATOR
                    + (dewey_cache[ordinal] if ordinal < cache_size
                       else dewey_component(ordinal)),
                ),
                None,
            )
        elif kind in (
            EventKind.COMMENT, EventKind.PROCESSING_INSTRUCTION
        ):
            pre_counter += 1
            post_counter += 1
            node_kind = (
                comment_kind if kind is EventKind.COMMENT else pi_kind
            )
            if stack:
                parent = stack[-1]
                ordinal = parent.next_ordinal
                parent.next_ordinal += 1
                parent.size += 1
                parent.kid_count += 1
                if parent.all_text:
                    parent.all_text = False
                    parent.text_parts.clear()
                level = parent.level + 1
                parent_pre = parent.pre
                dewey = (
                    parent.dewey + DEWEY_SEPARATOR
                    + dewey_component(ordinal)
                )
            else:
                ordinal = doc_ordinal
                doc_ordinal += 1
                level = 1
                parent_pre = 0
                dewey = dewey_component(ordinal)
            node_count += 1
            add(
                NodeRecord(
                    pre_counter,
                    post_counter,
                    0,
                    level,
                    node_kind,
                    ev_name if node_kind == pi_kind else None,
                    ev_value,
                    parent_pre,
                    ordinal,
                    dewey,
                ),
                None,
            )
        # START_DOCUMENT / END_DOCUMENT carry no stored node.
    if stack:
        raise StorageError(
            f"event stream ended with {len(stack)} open element(s)"
        )
    return node_count, root_tag


def stream_records(events) -> list[NodeRecord]:
    """Materialize :func:`shred_stream` output as records in pre order —
    the exact :func:`number_document` list, computed from events.  (A
    convenience for tests and buffered fallbacks; it is O(document), so
    the memory-bounded path consumes :func:`shred_stream` directly.)
    """
    records = [item[1] for item in shred_stream(events)
               if item[0] == "node"]
    records.sort(key=lambda r: r.pre)
    return records


def _node_name(node: Node) -> str | None:
    if isinstance(node, Element):
        return node.tag
    if isinstance(node, Attribute):
        return node.name
    if isinstance(node, ProcessingInstruction):
        return node.target
    return None


def _node_value(node: Node) -> str | None:
    if isinstance(node, Attribute):
        return node.value
    if isinstance(node, (Text, Comment)):
        return node.data
    if isinstance(node, ProcessingInstruction):
        return node.data
    return None


def build_subtree(records: list[NodeRecord]) -> Node:
    """Rebuild a tree from subtree records sorted by ``pre``.

    The first record is the subtree root; children are attached via
    ``parent_pre``.  Used by every scheme's ``reconstruct``: the scheme
    fetches its rows (differently — that is what E6 measures) and this
    shared assembler turns them back into DOM nodes.
    """
    if not records:
        raise StorageError("cannot rebuild an empty record set")
    by_pre: dict[int, Node] = {}
    root_node: Node | None = None
    for record in records:
        node = _make_node(record)
        by_pre[record.pre] = node
        if root_node is None:
            root_node = node
            continue
        parent = by_pre.get(record.parent_pre)
        if parent is None:
            raise StorageError(
                f"record {record.pre} references missing parent "
                f"{record.parent_pre}"
            )
        if isinstance(node, Attribute):
            if not isinstance(parent, Element):
                raise StorageError("attribute record under a non-element")
            node.parent = parent
            parent.attributes.append(node)
        else:
            if not isinstance(parent, _Container):
                raise StorageError(
                    f"record {record.pre} under non-container parent"
                )
            parent.children.append(node)
            node.parent = parent
    assert root_node is not None
    return root_node


def build_document(records: list[NodeRecord]) -> Document:
    """Rebuild a whole document from its full record list (pre order)."""
    document = Document()
    by_pre: dict[int, Node] = {}
    for record in records:
        node = _make_node(record)
        by_pre[record.pre] = node
        if record.parent_pre == 0:
            document.children.append(node)
            node.parent = document
            continue
        parent = by_pre.get(record.parent_pre)
        if parent is None:
            raise StorageError(
                f"record {record.pre} references missing parent "
                f"{record.parent_pre}"
            )
        if isinstance(node, Attribute):
            if not isinstance(parent, Element):
                raise StorageError("attribute record under a non-element")
            node.parent = parent
            parent.attributes.append(node)
        else:
            if not isinstance(parent, _Container):
                raise StorageError(
                    f"record {record.pre} under non-container parent"
                )
            parent.children.append(node)
            node.parent = parent
    return document


def _make_node(record: NodeRecord) -> Node:
    kind = record.kind
    if kind == NodeKind.ELEMENT:
        return Element(record.name or "", validate=False)
    if kind == NodeKind.ATTRIBUTE:
        return Attribute(record.name or "", record.value or "",
                         validate=False)
    if kind == NodeKind.TEXT:
        return Text(record.value or "")
    if kind == NodeKind.COMMENT:
        return Comment(record.value or "")
    if kind == NodeKind.PROCESSING_INSTRUCTION:
        return ProcessingInstruction(record.name or "x", record.value or "")
    raise StorageError(f"cannot rebuild node of kind {kind}")
