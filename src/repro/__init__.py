"""xmlrel — storage and retrieval of XML data using relational databases.

A from-scratch reproduction of the ICDE 2003 tutorial's subject matter:
every major XML→relational mapping (edge, binary, universal, interval,
Dewey, XRel, DTD inlining), an XPath subset translated to SQL over each,
and the apparatus to compare them.

Quickstart::

    from repro import XmlRelStore

    with XmlRelStore.open(scheme="interval") as store:
        doc_id = store.store_text("<bib><book year='2000'>"
                                  "<title>Data on the Web</title>"
                                  "</book></bib>")
        print(store.query_xml(doc_id, "/bib/book[@year = '2000']/title"))
"""

from repro.analysis import Diagnostic, XPathAnalyzer
from repro.core.compare import compare_schemes
from repro.core.registry import available_schemes, create_scheme
from repro.core.store import XmlRelStore, open_store
from repro.obs import (
    Explanation,
    MetricsRegistry,
    QueryReport,
    Tracer,
    format_span_tree,
)
from repro.errors import (
    HTTP_STATUS,
    DeadlineExceeded,
    Overloaded,
    PlanLintError,
    ProtocolError,
    ServingError,
    ShardError,
    StorageError,
    TransientStorageError,
    UnsupportedQueryError,
    XmlRelError,
    XmlSyntaxError,
    XPathSyntaxError,
    error_payload,
    http_status,
)
from repro.relational.database import DURABILITY_PROFILES, Database
from repro.relational.retry import RetryPolicy
from repro.reliability.audit import IntegrityIssue, IntegrityReport
from repro.serve import (
    ConnectionPool,
    QueryExecutor,
    ScatterResult,
    ShardedStore,
    open_sharded,
)
from repro.xml.dom import deep_equal
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.serialize import serialize, serialize_pretty
from repro.xpath.evaluator import evaluate, evaluate_nodes
from repro.xpath.parser import parse_xpath

__version__ = "1.0.0"

__all__ = [
    "DURABILITY_PROFILES",
    "HTTP_STATUS",
    "ConnectionPool",
    "Database",
    "DeadlineExceeded",
    "Diagnostic",
    "Explanation",
    "IntegrityIssue",
    "IntegrityReport",
    "MetricsRegistry",
    "Overloaded",
    "PlanLintError",
    "ProtocolError",
    "QueryExecutor",
    "QueryReport",
    "RetryPolicy",
    "ScatterResult",
    "ServingError",
    "ShardError",
    "ShardedStore",
    "StorageError",
    "Tracer",
    "TransientStorageError",
    "UnsupportedQueryError",
    "XPathAnalyzer",
    "XPathSyntaxError",
    "XmlRelError",
    "XmlRelStore",
    "XmlSyntaxError",
    "available_schemes",
    "compare_schemes",
    "create_scheme",
    "deep_equal",
    "error_payload",
    "evaluate",
    "evaluate_nodes",
    "format_span_tree",
    "http_status",
    "open_sharded",
    "open_store",
    "parse_document",
    "parse_fragment",
    "parse_xpath",
    "serialize",
    "serialize_pretty",
]
