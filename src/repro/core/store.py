"""``XmlRelStore`` — the one-stop facade.

.. code-block:: python

    from repro import XmlRelStore

    with XmlRelStore.open("catalog.db", scheme="interval") as store:
        doc_id = store.store_text("<bib>...</bib>")
        for title in store.query(doc_id, "/bib/book/title"):
            print(store.serialize_node(title))

A store wraps one sqlite database and one storage scheme.  Queries go
through the scheme's XPath→SQL translator; results come back either as
``pre`` ids (:meth:`query_pres`), reconstructed DOM nodes
(:meth:`query`), or serialized XML strings (:meth:`query_xml`).
"""

from __future__ import annotations

import time

from repro.core.registry import create_scheme
from repro.errors import XmlRelError
from repro.obs.report import Explanation, QueryReport
from repro.obs.trace import Tracer
from repro.relational.catalog import DocumentRecord
from repro.relational.database import Database
from repro.relational.retry import RetryPolicy
from repro.relational.sql import bind_doc_id
from repro.reliability.audit import IntegrityReport
from repro.storage.base import BulkSession, MappingScheme, ShredResult
from repro.xml.dom import Document, Node
from repro.xml.events import parse_events
from repro.xml.parser import ParseOptions, parse_document
from repro.xml.serialize import serialize


def build_query_report(
    db: Database,
    scheme: MappingScheme,
    doc_id: int,
    xpath: str,
    **extra,
) -> QueryReport:
    """Run *xpath* against one document and assemble the full per-query
    cost record.  Shared by :meth:`XmlRelStore.query_report` and the
    sharded store (which runs it on a pooled read session and adds
    routing/staleness fields through ``extra``)."""
    translator = scheme.translator()
    started = time.perf_counter()
    plan_entry, cache_hit = translator.cached_translation(doc_id, xpath)
    translate_seconds = time.perf_counter() - started
    params = bind_doc_id(plan_entry.params, doc_id)
    plan = db.explain_plan(plan_entry.sql, params)
    started = time.perf_counter()
    rows = db.query(plan_entry.sql, params)
    execute_seconds = time.perf_counter() - started
    pres = tuple(row[0] for row in rows)
    cache_stats = db.plan_cache.stats()
    return QueryReport(
        xpath=str(xpath),
        scheme=scheme.name,
        sql=plan_entry.sql,
        params=tuple(params),
        join_count=plan_entry.join_count,
        plan=tuple(plan),
        translate_seconds=translate_seconds,
        execute_seconds=execute_seconds,
        row_count=len(pres),
        pres=pres,
        cache_hit=cache_hit,
        cache_hits=cache_stats["hits"],
        cache_misses=cache_stats["misses"],
        analysis=tuple(plan_entry.diagnostics),
        **extra,
    )


class XmlRelStore:
    """An XML document store over a relational database."""

    def __init__(self, db: Database, scheme: MappingScheme) -> None:
        self.db = db
        self.scheme = scheme

    @classmethod
    def open(
        cls,
        path: str = ":memory:",
        scheme: str = "interval",
        profile: str = "bulk_load",
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        lint: str = "default",
        **kwargs,
    ) -> "XmlRelStore":
        """Open (creating if needed) a store at *path* using *scheme*.

        *profile* selects the durability profile (``bulk_load`` /
        ``durable`` / ``paranoid`` — see
        :data:`repro.relational.database.DURABILITY_PROFILES`), *retry*
        an optional :class:`~repro.relational.retry.RetryPolicy` for
        transient busy/locked errors, *tracer* an optional
        :class:`~repro.obs.trace.Tracer` that records spans, statement
        events, and metrics for everything this store does (tracing is
        off without one), *lint* the plan-lint mode (``off`` /
        ``default`` / ``strict`` — see
        :data:`repro.relational.database.LINT_MODES`; ``strict`` raises
        :class:`~repro.errors.PlanLintError` on error-severity
        diagnostics).  ``kwargs`` pass through to the scheme (e.g.
        ``dtd=``/``strategy=`` for ``inlining``).
        """
        db = Database(
            path, profile=profile, retry=retry, tracer=tracer, lint=lint
        )
        return cls(db, create_scheme(scheme, db, **kwargs))

    @property
    def tracer(self) -> Tracer:
        """The observability sink this store reports into (the shared
        disabled tracer unless one was passed to :meth:`open`)."""
        return self.db.tracer

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "XmlRelStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- storing ----------------------------------------------------------------

    def store(self, document: Document, name: str = "document") -> int:
        """Shred a parsed document; returns its doc_id."""
        return self.scheme.store(document, name).doc_id

    def store_detailed(
        self, document: Document, name: str = "document"
    ) -> ShredResult:
        """Like :meth:`store` but returns full row accounting."""
        return self.scheme.store(document, name)

    def store_text(
        self,
        text: str,
        name: str = "document",
        keep_whitespace: bool = True,
    ) -> int:
        """Parse and store XML *text*."""
        with self.tracer.span("parse") as span:
            document = parse_document(
                text, ParseOptions(keep_whitespace=keep_whitespace)
            )
            if span:
                span.set(chars=len(text), document=name)
        return self.store(document, name)

    def store_stream(
        self,
        source,
        name: str = "document",
        keep_whitespace: bool = True,
    ) -> int:
        """Shred *source* (XML text, an open file object, or a path)
        without ever building a DOM: the pull parser feeds the scheme's
        streaming inserter, so memory stays O(document depth) plus one
        row batch regardless of document size."""
        events = parse_events(
            source, ParseOptions(keep_whitespace=keep_whitespace)
        )
        return self.scheme.store_stream(events, name).doc_id

    def store_file(self, path: str, name: str | None = None) -> int:
        """Shred the XML file at *path*, streaming straight from the
        file handle — the file is never read into memory whole.

        I/O failures (missing file, bad encoding) are wrapped in
        :class:`~repro.errors.XmlRelError` so callers keep the single
        ``except XmlRelError`` clause the library promises; decode
        errors surface lazily from the streaming reads and land in the
        same clause.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                return self.store_stream(handle, name or path)
        except (OSError, UnicodeDecodeError) as error:
            raise XmlRelError(
                f"cannot read XML file {path!r}: {error}"
            ) from error

    # -- bulk loading -------------------------------------------------------------

    def bulk_session(self) -> BulkSession:
        """A context manager batching many stores into one transaction.

        .. code-block:: python

            with store.bulk_session() as session:
                for document in corpus:
                    session.store(document)
            doc_ids = session.doc_ids

        All documents commit atomically on exit; ``ANALYZE`` runs once at
        session close instead of once per document.  An exception rolls
        back the entire batch.
        """
        return BulkSession(self.scheme)

    def store_many(
        self,
        documents: list[Document],
        names: list[str] | None = None,
    ) -> list[int]:
        """Store *documents* through one :meth:`bulk_session`; returns
        their doc_ids in order."""
        if names is not None and len(names) != len(documents):
            raise XmlRelError(
                f"{len(documents)} document(s) but {len(names)} name(s)"
            )
        with self.bulk_session() as session:
            for position, document in enumerate(documents):
                name = (
                    names[position] if names is not None
                    else f"document-{position}"
                )
                session.store(document, name)
        return session.doc_ids

    # -- catalog ------------------------------------------------------------------

    def documents(self) -> list[DocumentRecord]:
        """Catalog rows of every stored document."""
        return self.scheme.catalog.list(scheme=self.scheme.name)

    def delete(self, doc_id: int) -> None:
        """Remove a stored document."""
        self.scheme.delete_document(doc_id)

    # -- integrity ----------------------------------------------------------------

    def verify(self, doc_id: int) -> IntegrityReport:
        """Audit the stored invariants of one document — the
        shredded-XML analogue of ``PRAGMA integrity_check``.  Returns a
        structured :class:`~repro.reliability.audit.IntegrityReport`
        (``report.ok`` / ``report.issues``)."""
        return self.scheme.verify_document(doc_id)

    def verify_all(self) -> list[IntegrityReport]:
        """Audit every document stored under this store's scheme."""
        return [
            self.verify(record.doc_id) for record in self.documents()
        ]

    # -- querying ------------------------------------------------------------------

    def query_pres(self, doc_id: int, xpath: str) -> list[int]:
        """Matching node ids (pre order positions), via SQL."""
        return self.scheme.query_pres(doc_id, xpath)

    def query(self, doc_id: int, xpath: str) -> list[Node]:
        """Matching nodes, reconstructed from the database."""
        return self.scheme.query_nodes(doc_id, xpath)

    def query_xml(self, doc_id: int, xpath: str) -> list[str]:
        """Matching nodes as serialized XML fragments."""
        return [serialize(node) for node in self.query(doc_id, xpath)]

    def sql_for(self, doc_id: int, xpath: str) -> tuple[str, list]:
        """The generated SQL (and parameters) for *xpath* — inspection and
        the plan-complexity experiment."""
        return self.scheme.translator().sql_for(doc_id, xpath)

    # -- static analysis -----------------------------------------------------------

    def enable_analysis(
        self,
        dtd=None,
        summary=None,
        doc_id: int | None = None,
        expand: bool = False,
    ):
        """Attach an XPath static analyzer to this store's scheme.

        Exactly one structural source is needed: a parsed
        :class:`~repro.xml.dtd.Dtd`, a pre-built
        :class:`~repro.stats.pathsummary.PathSummary`, or a *doc_id*
        whose stored document the summary is built from.  Once enabled,
        queries the analyzer proves unsatisfiable short-circuit with
        zero SQL statements executed, and — with ``expand=True`` and a
        DTD — non-recursive ``//`` steps are rewritten into explicit
        child chains.  Returns the attached
        :class:`~repro.analysis.xpathlint.XPathAnalyzer`.
        """
        from repro.analysis.xpathlint import XPathAnalyzer

        if summary is None and doc_id is not None:
            from repro.stats.pathsummary import build_summary

            summary = build_summary(self.reconstruct(doc_id))
        analyzer = XPathAnalyzer(dtd=dtd, summary=summary, expand=expand)
        self.scheme.attach_analyzer(analyzer)
        return analyzer

    def clear_plan_cache(self) -> None:
        """Drop every cached translation (cold-start measurements and
        the analysis benchmarks; cumulative hit/miss counters are kept)."""
        self.db.plan_cache.clear()

    # -- introspection -------------------------------------------------------------

    def explain(self, doc_id: int, xpath: str) -> Explanation:
        """Translate *xpath* and ask the engine how it would run it.

        Returns the generated SQL plus the ``EXPLAIN QUERY PLAN`` detail
        lines — index usage (experiment E11) without touching scheme
        internals and without executing the query.  Top-level unions are
        not explainable (each arm runs as its own statement); explain an
        arm instead.
        """
        sql, params = self.sql_for(doc_id, xpath)
        plan = self.db.explain_plan(sql, params)
        return Explanation(
            xpath=str(xpath),
            scheme=self.scheme.name,
            sql=sql,
            params=tuple(params),
            plan=tuple(plan),
        )

    def query_report(self, doc_id: int, xpath: str) -> QueryReport:
        """Run *xpath* and return the full per-query cost record:
        translation time, SQL length, structural join count, plan lines,
        execution time, plan-cache state, and the matching ids."""
        return build_query_report(self.db, self.scheme, doc_id, xpath)

    # -- retrieval -----------------------------------------------------------------

    def reconstruct(self, doc_id: int) -> Document:
        """Rebuild the whole document from its rows."""
        return self.scheme.reconstruct(doc_id)

    def reconstruct_xml(self, doc_id: int) -> str:
        """Rebuild and serialize the whole document."""
        return serialize(self.reconstruct(doc_id))

    def reconstruct_subtree(self, doc_id: int, pre: int) -> Node:
        """Rebuild one subtree by its node id."""
        return self.scheme.reconstruct_subtree(doc_id, pre)

    @staticmethod
    def serialize_node(node: Node) -> str:
        """Serialize one reconstructed node."""
        return serialize(node)

    # -- accounting -----------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Logical bytes used by the scheme's relations."""
        return self.scheme.storage_bytes()

    def table_names(self) -> list[str]:
        """The scheme's relations currently present."""
        return self.scheme.table_names()


def open_store(
    path: str = ":memory:", scheme: str = "interval", **kwargs
) -> XmlRelStore:
    """Module-level convenience alias of :meth:`XmlRelStore.open`."""
    if not isinstance(path, str):
        raise XmlRelError("path must be a string (use ':memory:' for RAM)")
    return XmlRelStore.open(path, scheme, **kwargs)
