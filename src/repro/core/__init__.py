"""The headline public API: open a store, pick a mapping, query it."""

from repro.core.registry import available_schemes, create_scheme
from repro.core.store import XmlRelStore
from repro.core.compare import SchemeComparison, compare_schemes

__all__ = [
    "SchemeComparison",
    "XmlRelStore",
    "available_schemes",
    "compare_schemes",
    "create_scheme",
]
