"""Registry of storage schemes by name."""

from __future__ import annotations

from repro.errors import XmlRelError
from repro.relational.database import Database
from repro.storage.base import MappingScheme
from repro.storage.binary import BinaryScheme
from repro.storage.dewey import DeweyScheme
from repro.storage.edge import EdgeScheme
from repro.storage.inlining import InliningScheme
from repro.storage.interval import IntervalScheme
from repro.storage.universal import UniversalScheme
from repro.storage.xrel import XRelScheme

_SCHEMES: dict[str, type[MappingScheme]] = {
    cls.name: cls
    for cls in (
        EdgeScheme,
        BinaryScheme,
        UniversalScheme,
        IntervalScheme,
        DeweyScheme,
        XRelScheme,
        InliningScheme,
    )
}


def available_schemes() -> list[str]:
    """Names of all registered storage schemes."""
    return list(_SCHEMES)


def scheme_class(name: str) -> type[MappingScheme]:
    """The scheme class registered under *name*."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise XmlRelError(
            f"unknown scheme {name!r}; available: "
            + ", ".join(available_schemes())
        ) from None


def create_scheme(name: str, db: Database, **kwargs) -> MappingScheme:
    """Instantiate scheme *name* over *db*.

    ``kwargs`` are scheme-specific (the inlining scheme takes ``dtd`` and
    ``strategy``).
    """
    return scheme_class(name)(db, **kwargs)
