"""Multi-scheme comparison driver (used by examples and benchmarks).

Runs the same document + query workload through several schemes side by
side, timing store/query/reconstruct and checking that every scheme's
answers agree — the end-to-end apparatus behind experiment E12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.registry import available_schemes, create_scheme
from repro.errors import UnsupportedQueryError, XmlRelError
from repro.relational.database import Database
from repro.xml.dom import Document


@dataclass
class QueryOutcome:
    """One scheme's result for one query."""

    supported: bool
    seconds: float = 0.0
    result_count: int = 0
    pres: tuple[int, ...] = ()
    reason: str = ""


@dataclass
class SchemeComparison:
    """All measurements for one scheme over one workload."""

    scheme: str
    store_seconds: float
    storage_bytes: int
    table_count: int
    total_rows: int
    outcomes: dict[str, QueryOutcome] = field(default_factory=dict)

    def supported_queries(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.supported)


def compare_schemes(
    document: Document,
    queries: list[str],
    schemes: list[str] | None = None,
    scheme_kwargs: dict[str, dict] | None = None,
    repetitions: int = 1,
) -> dict[str, SchemeComparison]:
    """Run *document* and *queries* through each scheme; verify agreement.

    Returns per-scheme measurements.  Schemes that cannot translate a
    query record an unsupported outcome instead of failing the run.
    Raises :class:`XmlRelError` if two schemes that both support a query
    disagree on its answer — the comparison is also a correctness check.
    """
    names = schemes or available_schemes()
    scheme_kwargs = scheme_kwargs or {}
    results: dict[str, SchemeComparison] = {}
    answers: dict[str, tuple[int, ...]] = {}
    for name in names:
        db = Database()
        scheme = create_scheme(name, db, **scheme_kwargs.get(name, {}))
        started = time.perf_counter()
        shred = scheme.store(document, "compare")
        store_seconds = time.perf_counter() - started
        comparison = SchemeComparison(
            scheme=name,
            store_seconds=store_seconds,
            storage_bytes=scheme.storage_bytes(),
            table_count=len(scheme.table_names()),
            total_rows=shred.total_rows,
        )
        for query in queries:
            comparison.outcomes[query] = _run_query(
                scheme, shred.doc_id, query, repetitions
            )
        db.close()
        results[name] = comparison
        for query, outcome in comparison.outcomes.items():
            if not outcome.supported:
                continue
            if query in answers and answers[query] != outcome.pres:
                raise XmlRelError(
                    f"schemes disagree on {query!r}: "
                    f"{outcome.pres} vs {answers[query]}"
                )
            answers.setdefault(query, outcome.pres)
    return results


def _run_query(
    scheme, doc_id: int, query: str, repetitions: int
) -> QueryOutcome:
    try:
        pres = scheme.query_pres(doc_id, query)  # warm-up: plan + caches
        started = time.perf_counter()
        for _ in range(repetitions):
            pres = scheme.query_pres(doc_id, query)
        seconds = (time.perf_counter() - started) / repetitions
    except UnsupportedQueryError as error:
        return QueryOutcome(supported=False, reason=str(error))
    return QueryOutcome(
        supported=True,
        seconds=seconds,
        result_count=len(pres),
        pres=tuple(pres),
    )
