"""Rendering of experiment results as paper-style markdown tables.

Reporting goes through one :func:`emit` function instead of bare
``print()``: every emitted record is a JSON-able dict handed to any
registered sinks (the benchmark harness registers one to fold reports
into the session trace — see ``benchmarks/conftest.py``), and the
rendered text still lands on stdout unless :func:`set_stdout` turned it
off.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.bench.harness import ExperimentResult, format_value

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                           "benchmarks", "results")

#: Registered report sinks: each is called as ``sink(record)`` with a
#: JSON-able dict carrying at least ``kind`` and ``text``.
_SINKS: list[Callable[[dict], None]] = []

#: Whether :func:`emit` also prints the record's text to stdout.
_STDOUT = True


def add_sink(sink: Callable[[dict], None]) -> Callable[[dict], None]:
    """Register *sink* to receive every emitted report record; returns
    it (so callers can keep the handle for :func:`remove_sink`)."""
    _SINKS.append(sink)
    return sink


def remove_sink(sink: Callable[[dict], None]) -> None:
    """Unregister a sink previously added with :func:`add_sink`."""
    if sink in _SINKS:
        _SINKS.remove(sink)


def set_stdout(enabled: bool) -> None:
    """Toggle stdout rendering (sinks still receive every record)."""
    global _STDOUT
    _STDOUT = enabled


def emit(record: dict) -> None:
    """Route one report record to every sink, then render its ``text``
    to stdout (the pre-observability behaviour)."""
    for sink in list(_SINKS):
        sink(record)
    if _STDOUT and record.get("text"):
        print()
        print(record["text"])


def format_table(result: ExperimentResult) -> str:
    """Render one experiment as a markdown document."""
    lines = [
        f"# {result.experiment}: {result.title}",
        "",
        f"*Workload:* {result.workload}",
        "",
        f"*Expected shape (from the literature):* {result.expectation}",
        "",
    ]
    columns = result.all_columns()
    header = [""] + columns
    widths = [
        max(
            len(header[0]),
            *(len(row.label) for row in result.rows),
        )
    ] + [
        max(
            len(column),
            *(
                len(format_value(row.values.get(column)))
                for row in result.rows
            ),
        )
        for column in columns
    ]
    lines.append(_format_row(header, widths))
    lines.append(
        "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    )
    for row in result.rows:
        cells = [row.label] + [
            format_value(row.values.get(column))
            for column in columns
        ]
        lines.append(_format_row(cells, widths))
    lines.append("")
    return "\n".join(lines)


def _format_row(cells: list[str], widths: list[int]) -> str:
    padded = [cell.ljust(width) for cell, width in zip(cells, widths)]
    return "| " + " | ".join(padded) + " |"


def write_report(result: ExperimentResult, directory: str | None = None) -> str:
    """Write the experiment's table to ``benchmarks/results/`` and emit
    it (stdout rendering plus any registered sinks)."""
    rendered = format_table(result)
    target_dir = directory or os.path.abspath(RESULTS_DIR)
    os.makedirs(target_dir, exist_ok=True)
    path = os.path.join(
        target_dir, f"{result.experiment.lower().replace(' ', '_')}.md"
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    emit(
        {
            "kind": "experiment-report",
            "experiment": result.experiment,
            "title": result.title,
            "workload": result.workload,
            "path": path,
            "rows": len(result.rows),
            "text": rendered,
        }
    )
    return path
