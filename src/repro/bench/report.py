"""Rendering of experiment results as paper-style markdown tables."""

from __future__ import annotations

import os

from repro.bench.harness import ExperimentResult, format_value

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                           "benchmarks", "results")


def format_table(result: ExperimentResult) -> str:
    """Render one experiment as a markdown document."""
    lines = [
        f"# {result.experiment}: {result.title}",
        "",
        f"*Workload:* {result.workload}",
        "",
        f"*Expected shape (from the literature):* {result.expectation}",
        "",
    ]
    columns = result.all_columns()
    header = [""] + columns
    widths = [
        max(
            len(header[0]),
            *(len(row.label) for row in result.rows),
        )
    ] + [
        max(
            len(column),
            *(
                len(format_value(row.values.get(column)))
                for row in result.rows
            ),
        )
        for column in columns
    ]
    lines.append(_format_row(header, widths))
    lines.append(
        "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    )
    for row in result.rows:
        cells = [row.label] + [
            format_value(row.values.get(column))
            for column in columns
        ]
        lines.append(_format_row(cells, widths))
    lines.append("")
    return "\n".join(lines)


def _format_row(cells: list[str], widths: list[int]) -> str:
    padded = [cell.ljust(width) for cell, width in zip(cells, widths)]
    return "| " + " | ".join(padded) + " |"


def write_report(result: ExperimentResult, directory: str | None = None) -> str:
    """Write the experiment's table to ``benchmarks/results/``; also
    echo it to stdout (visible with ``pytest -s`` and in logs)."""
    rendered = format_table(result)
    target_dir = directory or os.path.abspath(RESULTS_DIR)
    os.makedirs(target_dir, exist_ok=True)
    path = os.path.join(
        target_dir, f"{result.experiment.lower().replace(' ', '_')}.md"
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    print()
    print(rendered)
    return path
