"""Benchmark harness: timing, result records, paper-style tables."""

from repro.bench.harness import (
    ExperimentResult,
    Row,
    time_call,
)
from repro.bench.report import format_table, write_report

__all__ = [
    "ExperimentResult",
    "Row",
    "format_table",
    "time_call",
    "write_report",
]
